//! Minimal in-workspace shim of `serde_json`: JSON text encoding and decoding
//! over the serde shim's owned [`Value`] tree.
//!
//! Numbers round-trip exactly: integers are printed as integers, and floats
//! use Rust's shortest-precise `Display` formatting (with a trailing `.0`
//! added to integral floats so they parse back as floats).

use serde::json::Number;
pub use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};

/// `serde_json::Result`, aliased like the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(json: &str) -> Result<T> {
    let value = parse(json)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out)?,
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_number(n: Number, out: &mut String) -> Result<()> {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            let text = format!("{v}");
            out.push_str(&text);
            // Keep float-ness explicit so the value parses back as a float.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`].
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON document"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::new("invalid float"))?,
            )
        } else if text.starts_with('-') {
            Number::I64(
                text.parse::<i64>()
                    .map_err(|_| Error::new("invalid integer"))?,
            )
        } else {
            Number::U64(
                text.parse::<u64>()
                    .map_err(|_| Error::new("invalid integer"))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&120.0f64).unwrap(), "120.0");
        assert_eq!(from_str::<f64>("120.0").unwrap(), 120.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));

        let mut map = std::collections::HashMap::new();
        map.insert("k".to_string(), (1.25f64, 2u32));
        let json = to_string(&map).unwrap();
        assert_eq!(json, "{\"k\":[1.25,2]}");
        let back: std::collections::HashMap<String, (f64, u32)> = from_str(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn integer_keyed_maps_round_trip() {
        let mut map = std::collections::HashMap::new();
        map.insert(64u32, 9.5f64);
        let json = to_string(&map).unwrap();
        assert_eq!(json, "{\"64\":9.5}");
        let back: std::collections::HashMap<u32, f64> = from_str(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn float_precision_survives_round_trip() {
        for &x in &[0.1, 1.0 / 3.0, 1e-12, 123456.789012345, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<String>("\"oops").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}

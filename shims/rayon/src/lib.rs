//! Minimal in-workspace shim of `rayon`.
//!
//! Provides order-preserving parallel `map`/`for_each` over slices using
//! `std::thread::scope` with one chunk per available core.  This is the API
//! surface the kairos sweeps use (`slice.par_iter().map(f).collect()`); it
//! degrades gracefully to a sequential loop on single-core machines or tiny
//! inputs.

use std::thread;

/// Number of worker threads used for fan-outs.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over a slice.
///
/// The heart of the shim: splits `items` into one contiguous chunk per
/// worker, maps each chunk on its own scoped thread, and concatenates the
/// results in order.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let workers = current_num_threads();
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Lazily mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_map(self.items, &|item| f(item));
    }
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Executes the parallel map and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// Types that expose a by-reference parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// The parallel iterator.
    type Iter;

    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The rayon prelude, bringing the parallel-iterator traits into scope.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, input[i] * 2);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn for_each_visits_every_element() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        items.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }
}

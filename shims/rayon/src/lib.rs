//! Minimal in-workspace shim of `rayon`.
//!
//! Provides order-preserving parallel `map`/`for_each` over slices using
//! `std::thread::scope` with one chunk per available core.  This is the API
//! surface the kairos sweeps use (`slice.par_iter().map(f).collect()`); it
//! degrades gracefully to a sequential loop on single-core machines or tiny
//! inputs.

use std::cell::Cell;
use std::thread;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] on the
    /// calling thread.  Chunking decisions are made on the calling thread
    /// (see [`parallel_map`]), so scoping the override thread-locally is
    /// enough to make `pool.install(|| ...)` deterministic per pool size.
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads used for fan-outs: the installed
/// [`ThreadPool`]'s size inside [`ThreadPool::install`], the machine's
/// available parallelism otherwise.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(|c| c.get()) {
        return n;
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error building a [`ThreadPool`] (the shim never fails; the type exists
/// for API compatibility with rayon's fallible builder).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon-shim thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicitly sized [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-sized) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` keeps the machine default, as in rayon.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.  Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            } else {
                self.num_threads
            },
        })
    }
}

/// An explicitly sized worker pool.  The shim spawns scoped threads per
/// fan-out rather than keeping workers alive, so the pool only carries the
/// worker *count*; [`Self::install`] scopes it over a closure exactly like
/// rayon's `ThreadPool::install`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's worker count governing every parallel
    /// iterator invoked (directly) inside it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let result = f();
        POOL_THREADS.with(|c| c.set(previous));
        result
    }
}

/// Worker count actually used for a fan-out: the requested pool size
/// clamped to the machine's available parallelism.  The shim's fan-outs
/// are CPU-bound, so spawning more runnable threads than cores buys no
/// concurrency — it only adds timeslice churn and cache refills — and the
/// mapped results are chunking-invariant either way.  This is what makes
/// oversized pools "degrade gracefully to a sequential loop on
/// single-core machines" as documented above.
fn effective_workers() -> usize {
    current_num_threads().min(
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

/// Order-preserving parallel map over a slice.
///
/// The heart of the shim: splits `items` into one contiguous chunk per
/// worker, maps each chunk on its own scoped thread, and concatenates the
/// results in order.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let workers = effective_workers();
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// Order-preserving parallel map over a mutable slice (the `&mut`
/// counterpart of [`parallel_map`]): one contiguous chunk per worker via
/// `chunks_mut`, results concatenated in order.
fn parallel_map_mut<'a, T, R, F>(items: &'a mut [T], f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&'a mut T) -> R + Sync,
{
    let workers = effective_workers();
    if workers <= 1 || items.len() <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    let total = items.len();
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(total);
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

/// Lazily mapped mutable parallel iterator.
pub struct ParMapMut<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        R: Send,
        F: Fn(&'a mut T) -> R + Sync,
    {
        ParMapMut {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        parallel_map_mut(self.items, &|item| f(item));
    }
}

impl<'a, T, R, F> ParMapMut<'a, T, F>
where
    T: Send,
    R: Send,
    F: Fn(&'a mut T) -> R + Sync,
{
    /// Executes the parallel map and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_mut(self.items, &self.f).into_iter().collect()
    }
}

/// Lazily mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_map(self.items, &|item| f(item));
    }
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Executes the parallel map and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// Types that expose a by-reference parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// The parallel iterator.
    type Iter;

    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Types that expose a by-mutable-reference parallel iterator
/// (`.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// The parallel iterator.
    type Iter;

    /// Returns a parallel iterator over mutable references.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The rayon prelude, bringing the parallel-iterator traits into scope.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, input[i] * 2);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn for_each_visits_every_element() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        items.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn par_iter_mut_mutates_in_place_and_preserves_order() {
        let mut items: Vec<u64> = (0..5_000).collect();
        items.par_iter_mut().for_each(|x| *x += 1);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
        let squares: Vec<u64> = items.par_iter_mut().map(|x| *x * *x).collect();
        assert_eq!(squares[10], 11 * 11);
    }

    #[test]
    fn thread_pool_install_scopes_the_worker_count() {
        use crate::{current_num_threads, ThreadPoolBuilder};
        let outside = current_num_threads();
        for n in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            assert_eq!(pool.current_num_threads(), n);
            let (inside, mapped) = pool.install(|| {
                let items: Vec<u64> = (0..1_000).collect();
                let mapped: Vec<u64> = items.par_iter().map(|&x| x * 3).collect();
                (current_num_threads(), mapped)
            });
            assert_eq!(inside, n);
            assert_eq!(mapped[999], 999 * 3);
            assert_eq!(current_num_threads(), outside);
        }
        // num_threads(0) keeps the machine default, as in rayon.
        let default_pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert_eq!(default_pool.current_num_threads(), outside);
    }
}

//! Minimal in-workspace shim of the `rand_distr` crate: the [`Distribution`]
//! trait plus the [`Exp`], [`Normal`] and [`LogNormal`] distributions the
//! kairos workload generators use.

use rand::Rng;

/// Error returned when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// A probability distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform draw in `(0, 1]` — safe input for `ln`.
#[inline]
fn open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    // Map [0, 1) to (0, 1].
    1.0 - u
}

/// Exponential distribution with rate `lambda` (mean `1 / lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; the rate must be positive and finite.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Self { lambda })
        } else {
            Err(ParamError("Exp rate must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln() / self.lambda
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; the standard deviation must be non-negative
    /// and finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Self { mean, std_dev })
        } else {
            Err(ParamError("Normal parameters must be finite, std_dev >= 0"))
        }
    }

    /// One standard-normal draw via the Box–Muller transform.
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1 = open01(rng);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution<f64> for Normal {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Self::standard(rng)
    }
}

/// Log-normal distribution parameterized by the mean and standard deviation
/// of the underlying normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Creates the distribution from the underlying normal's `mu` / `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(Self {
            inner: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn exponential_mean_is_one_over_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let exp = Exp::new(4.0).unwrap();
        let samples: Vec<f64> = (0..50_000).map(|_| exp.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        assert!((mean_of(&samples) - 0.25).abs() < 0.01);
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = Normal::new(10.0, 3.0).unwrap();
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = mean_of(&samples);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        let var = mean_of(
            &samples
                .iter()
                .map(|x| (x - mean) * (x - mean))
                .collect::<Vec<_>>(),
        );
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LogNormal::new(120f64.ln(), 1.0).unwrap();
        let mut samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 120.0).abs() < 6.0, "median {median}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
    }
}

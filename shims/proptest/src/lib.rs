//! Minimal in-workspace shim of `proptest`.
//!
//! Supports the subset the kairos property tests use: the [`proptest!`]
//! macro, range and collection strategies, `prop_map` / `prop_flat_map`
//! combinators, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! [`ProptestConfig::with_cases`].  Failing cases are reported with the
//! case's RNG seed; there is **no shrinking** — rerun with the printed seed
//! to reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Outcome of one generated test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Creates a rejection (assumption not met).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Base RNG seed; case `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            seed: 0x9a1c_05f1,
        }
    }
}

impl ProptestConfig {
    /// Configuration running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Drives the generated test cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner.
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// Runs `case` for every configured seed, panicking on the first failure.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut rejected = 0u32;
        for i in 0..self.config.cases {
            let seed = self.config.seed.wrapping_add(u64::from(i));
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject) => rejected += 1,
                Err(TestCaseError::Fail(message)) => {
                    panic!("proptest case failed (seed {seed}): {message}")
                }
            }
        }
        if rejected == self.config.cases && self.config.cases > 0 {
            panic!("proptest rejected every generated case; loosen prop_assume!");
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<R, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, R, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;

    fn generate(&self, rng: &mut StdRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u32, u64, usize, i64, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection sizes accepted by [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        Self {
            min: *range.start(),
            max_exclusive: range.end() + 1,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `Vec` strategy; `size` may be an exact `usize` or a range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` namespace (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests.  Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($config);
            runner.run(|__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)*
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// `prop_assume!(cond)` — skips the case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRunner;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.5f64..1.5, n in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0u32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_composes(m in (1usize..=3, 1usize..=3).prop_flat_map(|(r, c)| {
            prop::collection::vec(0f64..1.0, r * c).prop_map(move |data| (r, c, data))
        })) {
            let (r, c, data) = m;
            prop_assert_eq!(data.len(), r * c);
        }

        #[test]
        fn assume_skips_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_seed() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        runner.run(|_| Err(TestCaseError::fail("forced")));
    }
}

//! Minimal in-workspace shim of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the exact API surface the kairos workspace uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] (a xoshiro256++ generator seeded through SplitMix64) and
//! [`seq::SliceRandom`].  The generator is deterministic per seed, which is
//! all the simulator needs; it is *not* the same stream as the real
//! `rand::rngs::StdRng` (ChaCha12), so seeds are reproducible only within
//! this workspace.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the generator's "standard"
/// distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

// Integer ranges use plain modulo reduction: the bias is ~span / 2^64 —
// immaterial for the simulator's small ranges, but note it differs from the
// real rand crate's rejection sampling, so distributions are not expected to
// match upstream bit-for-bit if the shims are ever swapped back.
macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_impl!(u32, u64, usize, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// The user-facing random number generator interface.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (e.g. `f64` in
    /// `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(5usize..8);
            assert!((5..8).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.25).abs() < 0.02, "p {p}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}

//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the in-workspace serde shim.
//!
//! The macros parse the item declaration directly from the token stream (no
//! `syn` dependency is available in this offline build) and support the
//! shapes the kairos workspace uses:
//!
//! * structs with named fields (including private fields),
//! * enums with unit variants, struct variants and single-field tuple
//!   (newtype) variants.
//!
//! Generics, tuple structs and multi-field tuple variants are rejected with
//! a compile-time panic naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: (variant name, variant shape).
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

/// Splits an item declaration into (name, shape).
fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();
    let mut is_enum = false;
    let mut name = None;

    // Scan for `struct NAME` or `enum NAME`, skipping attributes/visibility.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" | "crate" => {
                        // `pub(crate)` / `pub(in ...)`: skip the modifier group.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => {
                        is_enum = s == "enum";
                        match tokens.next() {
                            Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                            other => panic!("expected item name after `{s}`, got {other:?}"),
                        }
                        break;
                    }
                    other => panic!("unexpected token `{other}` before struct/enum keyword"),
                }
            }
            other => panic!("unexpected token {other:?} before struct/enum keyword"),
        }
    }
    let name = name.expect("derive input must declare a struct or enum");

    // Find the body group; reject generics on the way.
    let mut body = None;
    for tt in tokens.by_ref() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde shim derive does not support generics (on `{name}`)")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive does not support tuple structs (on `{name}`)")
            }
            _ => {}
        }
    }
    let body = body.unwrap_or_else(|| panic!("no braced body found for `{name}`"));

    let shape = if is_enum {
        Shape::Enum(parse_variants(body, &name))
    } else {
        Shape::Struct(parse_named_fields(body))
    };
    (name, shape)
}

/// Parses `field: Type, ...` bodies, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    } else {
                        break s;
                    }
                }
                Some(other) => panic!("unexpected token {other:?} in field list"),
            }
        };
        fields.push(field);
        // Expect `:`, then consume the type up to a top-level comma.
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
}

/// Parses enum variant declarations.
fn parse_variants(body: TokenStream, enum_name: &str) -> Vec<(String, VariantShape)> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Variant name (skipping attributes).
        let variant = loop {
            match tokens.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => panic!("unexpected token {other:?} in enum body"),
            }
        };
        // Optional payload.
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let mut angle_depth = 0i32;
                let mut arity = 1usize;
                for tt in g.stream() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            arity += 1;
                        }
                        _ => {}
                    }
                }
                if arity != 1 {
                    panic!(
                        "serde shim derive supports only single-field tuple variants \
                         ({enum_name}::{variant} has {arity})"
                    );
                }
                tokens.next();
                VariantShape::Newtype
            }
            _ => VariantShape::Unit,
        };
        variants.push((variant, shape));
        // Skip optional discriminant / trailing comma.
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
}

/// `#[derive(Serialize)]`
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "entries.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut entries: Vec<(String, ::serde::json::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::json::Value::Object(entries)"
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, vs) in variants {
                match vs {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::json::Value::String(\"{v}\".to_string()),\n"
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{v}(inner) => ::serde::json::Value::Object(vec![(\
                         \"{v}\".to_string(), ::serde::Serialize::to_value(inner))]),\n"
                    )),
                    VariantShape::Struct(fields) => {
                        let bindings = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bindings} }} => {{\n\
                             let mut inner: Vec<(String, ::serde::json::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::json::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::json::Value::Object(inner))])\n}},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{f}: ::serde::de_field(entries, \"{f}\")?,\n"));
            }
            format!(
                "let entries = value.as_object().ok_or_else(|| \
                 ::serde::json::Error::new(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, vs) in variants {
                match vs {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => return Ok({name}::{v}),\n"
                    )),
                    VariantShape::Newtype => tagged_arms.push_str(&format!(
                        "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::de_field(entries, \"{f}\")?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let entries = inner.as_object().ok_or_else(|| \
                             ::serde::json::Error::new(\"expected object for {name}::{v}\"))?;\n\
                             return Ok({name}::{v} {{\n{inits}}});\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::json::Value::String(tag) = value {{\n\
                 match tag.as_str() {{\n{unit_arms}\
                 _ => return Err(::serde::json::Error::new(\
                 format!(\"unknown {name} variant `{{tag}}`\"))),\n}}\n}}\n\
                 if let Some(entries) = value.as_object() {{\n\
                 if entries.len() == 1 {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 _ => return Err(::serde::json::Error::new(\
                 format!(\"unknown {name} variant `{{tag}}`\"))),\n}}\n}}\n}}\n\
                 Err(::serde::json::Error::new(\"expected {name} variant\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::json::Value) -> \
         Result<Self, ::serde::json::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

//! Minimal in-workspace shim of `criterion`.
//!
//! Implements the subset the kairos benches use — [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], benchmark groups,
//! [`BenchmarkId`] and `Bencher::iter` — with a simple
//! warmup-then-measure timer instead of criterion's statistical machinery.
//!
//! Results are printed as aligned rows.  When the `CRITERION_JSON`
//! environment variable names a file, one JSON object per benchmark is
//! appended to it (`{"name": ..., "mean_ns": ..., "iters": ...}`), which is
//! how the repository records `BENCH_*.json` baselines.
//!
//! Set `CRITERION_SAMPLE_MS` (default 300) to control per-benchmark
//! measurement time.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher<'a> {
    result: &'a mut Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    iters: u64,
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

impl Bencher<'_> {
    /// Times `routine`: a short calibration pass sizes the batch, then the
    /// routine runs for the sample budget and the mean per-iteration time is
    /// recorded.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: one run to size the measurement loop.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let budget = sample_budget();
        let target_iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        let total = start.elapsed();
        *self.result = Some(Measurement {
            mean_ns: total.as_nanos() as f64 / target_iters as f64,
            iters: target_iters,
        });
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn record(name: &str, m: Measurement) {
    println!(
        "bench  {name:<56} {:>12}  ({} iters)",
        human(m.mean_ns),
        m.iters
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"{name}\",\"mean_ns\":{:.1},\"iters\":{}}}",
                m.mean_ns, m.iters
            );
        }
    }
}

/// Positional CLI arguments act as substring filters on benchmark names,
/// mirroring criterion's `cargo bench -- <filter>` behaviour (flags such as
/// `--bench`, which cargo appends, are ignored).
fn name_filters() -> &'static [String] {
    static FILTERS: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
    FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    })
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(name: &str, mut f: F) {
    let filters = name_filters();
    if !filters.is_empty() && !filters.iter().any(|fl| name.contains(fl.as_str())) {
        return;
    }
    let mut result = None;
    f(&mut Bencher {
        result: &mut result,
    });
    match result {
        Some(m) => record(name, m),
        None => println!("bench  {name:<56} (no measurement recorded)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(name, f);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_SAMPLE_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("KAIROS").to_string(), "KAIROS");
    }
}

//! Minimal in-workspace shim of `serde`.
//!
//! Instead of serde's zero-copy visitor architecture, this shim converts
//! values through an owned JSON-like tree ([`json::Value`]).  The public
//! surface mirrors what the kairos workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits, the derive macros re-exported from
//! `serde_derive`, and implementations for the std types that appear in the
//! derived structures (integers, floats, bool, String, Vec, VecDeque,
//! Option, HashMap, small tuples).
//!
//! Enum representation matches serde's default externally-tagged form:
//! a unit variant serializes as `"Variant"`, a struct/newtype variant as
//! `{"Variant": ...}`.  `HashMap` keys serialize through their `Serialize`
//! impl and must produce a string or integer value (the same restriction
//! `serde_json` imposes).

pub use serde_derive::{Deserialize, Serialize};

/// The owned value tree every (de)serialization goes through.
pub mod json {
    /// Parsed JSON number, preserving integer-ness for exact round trips.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        /// Unsigned integer.
        U64(u64),
        /// Negative integer.
        I64(i64),
        /// Floating-point number.
        F64(f64),
    }

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number.
        Number(Number),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; insertion order is preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Borrows the value as an object's entry list, if it is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(entries) => Some(entries),
                _ => None,
            }
        }

        /// Borrows the value as an array, if it is one.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// Borrows the value as a string, if it is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    /// (De)serialization error: a human-readable message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Creates an error from a message.
        pub fn new(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}
}

use json::{Error, Number, Value};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code.
// ---------------------------------------------------------------------------

/// Looks up and deserializes a struct field from an object's entries.
pub fn de_field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::new(format!("field `{name}`: {e}"))),
        None => Err(Error::new(format!("missing field `{name}`"))),
    }
}

/// Serializes a map key: the key's value form must be a string or integer.
pub fn key_to_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.to_value() {
        Value::String(s) => Ok(s),
        Value::Number(Number::U64(n)) => Ok(n.to_string()),
        Value::Number(Number::I64(n)) => Ok(n.to_string()),
        _ => Err(Error::new("map key must serialize to a string or integer")),
    }
}

/// Deserializes a map key from its string form: tried as a string first,
/// then as an integer (mirroring serde_json's integer-keyed maps).
pub fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::U64(n))) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::I64(n))) {
            return Ok(k);
        }
    }
    Err(Error::new(format!(
        "cannot deserialize map key from `{key}`"
    )))
}

// ---------------------------------------------------------------------------
// Primitive implementations.
// ---------------------------------------------------------------------------

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(Number::U64(n)) => *n,
                    Value::Number(Number::I64(n)) if *n >= 0 => *n as u64,
                    Value::Number(Number::F64(f))
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
                    {
                        *f as u64
                    }
                    _ => return Err(Error::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(concat!("number out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(Number::I64(n)) => *n,
                    Value::Number(Number::U64(n)) if *n <= i64::MAX as u64 => *n as i64,
                    Value::Number(Number::F64(f)) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(Error::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(concat!("number out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::F64(f)) => Ok(*f as $t),
                    Value::Number(Number::U64(n)) => Ok(*n as $t),
                    Value::Number(Number::I64(n)) => Ok(*n as $t),
                    _ => Err(Error::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(&k).expect("unsupported map key type"),
                    v.to_value(),
                )
            })
            .collect();
        // Sort for deterministic output (HashMap iteration order is random).
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::new("expected object"))?;
        let mut map = HashMap::with_capacity_and_hasher(entries.len(), S::default());
        for (k, v) in entries {
            map.insert(key_from_string::<K>(k)?, V::from_value(v)?);
        }
        Ok(map)
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

//! Social-media ranking scenario (the paper's motivating RM2 workload).
//!
//! Meta's RM2 recommendation model ranks social-media posts under a 350 ms
//! tail-latency target.  This example reproduces the Fig. 1 story: under the
//! same cost budget, some heterogeneous configurations clearly beat the best
//! homogeneous GPU pool while others are much worse — and the query
//! distribution policy decides how much of the hardware's potential is
//! realized.
//!
//! Run with:
//! ```text
//! cargo run --release --example recsys_serving
//! ```

use kairos::prelude::*;
use kairos_baselines::oracle_throughput;
use kairos_models::Config;

fn main() {
    let pool = PoolSpec::new(ec2::figure1_pool()); // G1 / C1 / C2, as in Fig. 1
    let model = ModelKind::Rm2;
    let latency = paper_calibration();
    let budget = 2.5;

    // The four configurations highlighted in Fig. 1 (base, C1, C2 counts).
    let candidates = vec![
        Config::new(vec![4, 0, 0]), // optimal homogeneous
        Config::new(vec![3, 1, 3]), // good heterogeneous
        Config::new(vec![2, 0, 9]), // mediocre heterogeneous
        Config::new(vec![1, 4, 2]), // poor heterogeneous
    ];

    println!("RM2 social-media ranking, QoS 350 ms, budget ${budget}/hr");
    println!(
        "{:<14}{:>12}{:>16}{:>18}",
        "config", "cost $/hr", "within budget", "oracle QPS"
    );

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let sample = BatchSizeDistribution::production_default().sample_many(&mut rng, 3000);
    for config in &candidates {
        let cost = config.cost(&pool);
        let oracle = oracle_throughput(&pool, config, model, &latency, &sample);
        println!(
            "{:<14}{:>12.3}{:>16}{:>15.1}",
            config.to_string(),
            cost,
            if cost <= budget { "yes" } else { "no" },
            oracle
        );
    }

    // Show the impact of the query-distribution mechanism on the good
    // heterogeneous configuration (the Fig. 3 observation).
    let config = Config::new(vec![3, 1, 3]);
    let service = ServiceSpec::new(model, latency.clone());
    let trace = TraceSpec::production(60.0, 3.0, 9).generate();

    println!(
        "\nReplaying {} RM2 queries on {} with different distribution policies:",
        trace.len(),
        config
    );
    println!("{:<14}{:>12}{:>16}", "policy", "goodput", "p99 latency");

    let policies: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RibbonScheduler::new()),
        Box::new(DrsScheduler::new(300)),
        Box::new(ClockworkScheduler::new(model, latency.clone())),
        Box::new(KairosScheduler::with_priors(model, &latency)),
    ];
    for mut policy in policies {
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            policy.as_mut(),
            &SimulationOptions::default(),
        );
        println!(
            "{:<14}{:>9.1} QPS{:>13.1} ms",
            report.scheduler,
            report.goodput_qps(),
            report.p99_latency_us() as f64 / 1000.0
        );
    }
}

//! Surviving a zone outage: the failure-domain spread constraint versus a
//! domain-blind plan.
//!
//! The offering catalog places the paper's hardware menu in two availability
//! zones; zone-b aux capacity costs 2 % more, so an unconstrained cost-ranked
//! plan concentrates in zone a.  Mid-run, zone a goes dark: every instance
//! there gets a 200 ms notice, then dies, and purchases into the zone are
//! rejected until the outage lifts.  The *domain-aware* loop plans under a
//! `max_fraction_per_domain` spread constraint, so half the fleet (including
//! a GPU) survives in zone b; the *domain-blind* loop runs the identical
//! fault replans and purchase backoff but concentrated its fleet, so the
//! outage wipes nearly all of it.
//!
//! Run with:
//! ```text
//! cargo run --release --example zone_outage
//! ```

use kairos::prelude::*;
use std::sync::Arc;

fn main() {
    let model = ModelKind::Rm2;
    let latency = paper_calibration();
    let service = ServiceSpec::new(model, latency.clone());

    // Two zones, same hardware menu.  GPU pricing is near-uniform across
    // zones (the 0.1 % epsilon only breaks cost ties toward zone a); the
    // zone-b aux premium is what pushes a cost-only plan into one zone.
    let zone_a = FailureDomain::zone("us-east-1", "us-east-1a");
    let zone_b = FailureDomain::zone("us-east-1", "us-east-1b");
    let mut gpu_b = ec2::g4dn_xlarge();
    gpu_b.is_base = false;
    gpu_b.price_per_hour *= 1.001;
    let mut aux_b = ec2::r5n_large();
    aux_b.price_per_hour *= 1.02;
    let catalog = OfferingCatalog::new(vec![
        Offering::on_demand(ec2::g4dn_xlarge()).in_domain(zone_a.clone()),
        Offering::on_demand(ec2::r5n_large()).in_domain(zone_a.clone()),
        Offering::on_demand(gpu_b).in_domain(zone_b.clone()),
        Offering::on_demand(aux_b).in_domain(zone_b.clone()),
    ]);
    let market = Arc::new(TraceMarket::new(catalog.clone()));
    println!("Offering catalog:");
    for (i, offering) in catalog.offerings().iter().enumerate() {
        println!(
            "  [{i}] {:<18} {:>7.4} $/hr  in {}",
            offering.label(),
            offering.price_at(0),
            offering.placement
        );
    }

    // Zone a goes down at 3.2 s for 2 s: notice -> drain -> kill on every
    // zone-a instance, purchases into the zone rejected for the window.
    let outage_start_us = 3_200_000;
    let outage_len_us = 2_000_000;
    let process = FaultProcess::new(vec![FaultEvent::ZoneOutage {
        domain: zone_a.clone(),
        start_us: outage_start_us,
        duration_us: outage_len_us,
    }]);
    let trace = TraceSpec::production(60.0, 8.0, 7).generate();
    println!(
        "\nWorkload: {} queries at 60 QPS over 8 s; {} dark from 3.2 s to 5.2 s\n",
        trace.len(),
        zone_a
    );

    let options = ServingOptions::default()
        .budget(2.6)
        .replan_every(500_000)
        .provisioning_delay(400_000)
        .purchase_backoff(400_000, 3);

    let mut results = Vec::new();
    for (label, spread) in [("domain-aware", Some(0.5)), ("domain-blind", None)] {
        let opts = match spread {
            Some(fraction) => options.spread_limit(fraction),
            None => options,
        };
        let mut system = ServingSystem::with_market(
            catalog.clone(),
            market.clone(),
            model,
            Some(latency.clone()),
            opts,
        )
        .with_fault_process(process.clone());
        system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
        let initial = system.plan_for_demand(60.0).expect("prior knowledge");
        println!("{label}: initial deployment {initial}");
        let outcome = system.run(&initial, &service, &trace);
        for r in &outcome.reconfigs {
            println!(
                "  t = {:>5.2}s  [{:?}] demand {:>6.1} QPS -> {}, +{} / -{} instances",
                r.at_us as f64 / 1e6,
                r.trigger,
                r.demand_qps,
                r.target,
                r.added_types.len(),
                r.retired_instances.len()
            );
        }
        results.push((label, outcome));
    }

    println!(
        "\n{:<16}{:>14}{:>14}{:>14}{:>9}{:>7}",
        "scheme", "violations %", "billed $/hr", "recover (ms)", "killed", "lost"
    );
    for (label, outcome) in &results {
        let report = &outcome.report;
        // Time-to-recover: first 250 ms bucket from the outage onset after
        // which the violation rate stays within 20 % (about twice this
        // workload's steady-state noise) through the end of the run.
        let recover = report
            .outage_recoveries(250_000, 0.2)
            .first()
            .and_then(|(_, t)| *t)
            .map(|t| format!("{:.0}", t as f64 / 1000.0))
            .unwrap_or_else(|| "never".into());
        println!(
            "{:<16}{:>14.2}{:>14.3}{:>14}{:>9}{:>7}",
            label,
            report.violation_fraction() * 100.0,
            report.billed_cost_per_hour(),
            recover,
            report
                .outages
                .iter()
                .map(|o| o.killed_instances)
                .sum::<usize>(),
            report.outages.iter().map(|o| o.lost_queries).sum::<usize>()
        );
    }
}

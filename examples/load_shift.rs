//! Reaction to a load change (the Fig. 12 story).
//!
//! The batch-size distribution of the query stream shifts from the
//! production-like log-normal mix to a Gaussian mix.  The Kairos controller
//! notices the new mix through its query monitor and re-plans the
//! heterogeneous configuration in one shot — no online exploration — while a
//! search-based scheme would have to spend many expensive evaluations.
//!
//! Run with:
//! ```text
//! cargo run --release --example load_shift
//! ```

use kairos::prelude::*;
use rand::SeedableRng;

fn main() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let model = ModelKind::Rm2;
    let latency = paper_calibration();
    let budget = 2.5;

    let mut controller = KairosController::with_priors(pool.clone(), model, latency.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    // Phase 1: production-like log-normal batch sizes.
    let lognormal = BatchSizeDistribution::production_default();
    for _ in 0..5_000 {
        controller.observe_query(lognormal.sample(&mut rng));
    }
    let plan_before = controller.plan(budget).expect("latency priors available");
    println!(
        "Phase 1 (log-normal mix): Kairos plans {} (UB {:.1} QPS)",
        plan_before.chosen,
        plan_before.chosen_upper_bound()
    );

    // Phase 2: the workload shifts to a Gaussian mix centred on larger batches.
    let gaussian = BatchSizeDistribution::gaussian_default();
    for _ in 0..10_000 {
        controller.observe_query(gaussian.sample(&mut rng));
    }
    let plan_after = controller.plan(budget).expect("latency priors available");
    println!(
        "Phase 2 (Gaussian mix):   Kairos plans {} (UB {:.1} QPS)",
        plan_after.chosen,
        plan_after.chosen_upper_bound()
    );

    if plan_before.chosen == plan_after.chosen {
        println!("The chosen configuration is unchanged — the new mix keeps the same sweet spot.");
    } else {
        println!(
            "Kairos re-planned in one shot, without evaluating a single configuration online."
        );
    }

    // Verify the new plan actually holds up by replaying a Gaussian trace.
    let service = ServiceSpec::new(model, latency.clone());
    let spec = TraceSpec {
        arrival: ArrivalProcess::Poisson { rate_qps: 50.0 },
        batch_sizes: gaussian,
        duration_s: 3.0,
        seed: 77,
    };
    let trace = spec.generate();
    let mut scheduler = controller.make_scheduler();
    let report = run_trace(
        &pool,
        &plan_after.chosen,
        &service,
        &trace,
        &mut scheduler,
        &SimulationOptions::default(),
    );
    println!(
        "\nReplay under the new mix: {:.1} QPS goodput, p99 latency {:.0} ms, {:.2} % violations",
        report.goodput_qps(),
        report.p99_latency_us() as f64 / 1000.0,
        report.violation_fraction() * 100.0
    );
}

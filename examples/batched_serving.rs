//! Dynamic batching and fair throughput sharing on one cluster.
//!
//! An interactive stream of small NCF queries (median 8 requests) hits a
//! two-GPU cluster.  Served one query per invocation, NCF burns most of
//! each invocation on its fixed dispatch overhead; the per-instance dynamic
//! batcher (`SimEngine::with_batching`) fuses queued queries until the
//! forming batch reaches the fuse cap or the oldest member times out, so
//! one invocation amortizes that overhead across the whole fused batch.
//! The example replays the same trace unbatched and batched, then once more
//! with fair throughput sharing (`SimEngine::with_sharing`) stacked on top,
//! and prints what each knob does to tail latency and batch occupancy.  The
//! offered 4 kQPS deliberately exceeds the cluster's *unbatched* capacity,
//! so the first run saturates — the same two GPUs then hold the stream
//! comfortably once invocations fuse.
//!
//! Run with: `cargo run --release --example batched_serving`

use kairos::prelude::*;

fn replay(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    trace: &Trace,
    batching: Option<BatchingOptions>,
    sharing: Option<SharingMode>,
) -> kairos::sim::SimReport {
    let mut scheduler = FcfsScheduler::new();
    let options = SimulationOptions { seed: 7 };
    let mut engine = SimEngine::new(pool, config, service, trace, &mut scheduler, &options);
    if let Some(b) = batching {
        engine = engine.with_batching(b);
    }
    if let Some(mode) = sharing {
        engine = engine.with_sharing(mode);
    }
    engine.run()
}

fn main() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let service = ServiceSpec::new(ModelKind::Ncf, paper_calibration());
    let config = Config::new(vec![2, 0, 0, 0]); // two g4dn.xlarge GPUs

    // A small-query interactive stream: 4 kQPS of median-8 queries.  The
    // fuse cap comes from the mix itself — its p99 batch size — via the
    // quantile helper, not a hand-picked constant.
    let mix = BatchSizeDistribution::LogNormal {
        median: 8.0,
        sigma: 0.8,
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2023);
    let fuse_cap = mix.quantile(0.99, &mut rng, 20_000);
    let trace = TraceSpec {
        arrival: ArrivalProcess::Poisson { rate_qps: 4_000.0 },
        batch_sizes: mix,
        duration_s: 4.0,
        seed: 11,
    }
    .generate();
    println!(
        "{} queries over 4 s, QoS {} ms, fuse cap = mix p99 = {fuse_cap} requests",
        trace.len(),
        ModelKind::Ncf.qos_us() as f64 / 1000.0
    );

    let batcher = BatchingOptions::new(fuse_cap, 500);
    let sharing = SharingMode::Fair(
        SharingOptions::uniform(ThroughputDegradation::try_new_linear(0.15).expect("valid curve"))
            .with_max_concurrency(2),
    );
    let runs = [
        ("unbatched", None, None),
        ("batched (0.5 ms)", Some(batcher), None),
        ("batched + shared", Some(batcher), Some(sharing)),
    ];

    println!(
        "\n{:<18}{:>11}{:>14}{:>10}{:>11}{:>12}{:>11}",
        "mode", "completed", "violations %", "p99 (ms)", "batches", "mean fill", "wait (ms)"
    );
    for (label, batching, sharing) in runs {
        let report = replay(&pool, &config, &service, &trace, batching, sharing);
        let s = &report.service;
        let (fill, wait_ms) = if s.batches_fired > 0 {
            (
                s.batch_fill_sum as f64 / s.batches_fired as f64,
                s.batch_wait_us_sum as f64 / s.batches_fired as f64 / 1000.0,
            )
        } else {
            (0.0, 0.0)
        };
        println!(
            "{:<18}{:>11}{:>14.2}{:>10.2}{:>11}{:>12.2}{:>11.2}",
            label,
            report.completed(),
            report.violation_fraction() * 100.0,
            report.p99_latency_us() as f64 / 1000.0,
            s.batches_fired,
            fill,
            wait_ms,
        );
        assert_eq!(
            report.records.len() + report.unfinished.len(),
            report.offered,
            "query conservation"
        );
        // Lazy deletion in the calendar never skips an entry it did not
        // first cancel.
        assert!(s.calendar_stale_popped <= s.calendar_cancelled);
        if batching.is_some() {
            // Every completed query passed through exactly one fired batch.
            assert_eq!(s.batched_queries, s.batch_fill_sum);
        }
    }
    println!(
        "\nThe batcher trades a sub-millisecond fuse wait for a multi-query \
         fill, amortizing NCF's dispatch intercept across each fused \
         invocation; throughput sharing then lets a second batch start \
         instead of queueing behind the active one."
    );
}

//! Capacity planning across the whole model catalogue.
//!
//! For each of the paper's five production models, plan a heterogeneous
//! configuration under the default budget with Kairos's upper-bound method,
//! show its predicted throughput ceiling, and compare against the optimal
//! homogeneous pool and a Kairos+ refinement driven by the (cheap, analytic)
//! oracle evaluator.
//!
//! Run with:
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use kairos::prelude::*;
use kairos_baselines::oracle_throughput;
use kairos_core::kairos_plus_search;
use kairos_models::best_homogeneous;

fn main() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let budget = 2.5;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(21);
    let sample = BatchSizeDistribution::production_default().sample_many(&mut rng, 3000);

    println!("Kairos capacity planning, budget ${budget}/hr, production batch mix");
    println!(
        "{:<10}{:>10}{:>16}{:>14}{:>18}{:>14}",
        "model", "QoS ms", "Kairos config", "UB (QPS)", "Kairos+ config", "evals"
    );

    for model in ModelKind::ALL {
        let planner = KairosPlanner::new(pool.clone(), model, latency.clone());
        let plan = planner.plan(budget, &sample);

        // Kairos+ refines the choice with a handful of real evaluations; here
        // the evaluator is the analytic oracle model so the example stays fast.
        let result = kairos_plus_search(
            &plan.ranked,
            |config| oracle_throughput(&pool, config, model, &latency, &sample),
            Some(25),
        );

        let qos = kairos_models::spec(model).qos_ms;
        println!(
            "{:<10}{:>10.0}{:>16}{:>14.1}{:>18}{:>14}",
            model.to_string(),
            qos,
            plan.chosen.to_string(),
            plan.chosen_upper_bound(),
            result
                .best_config
                .as_ref()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            result.evaluations(),
        );
    }

    println!(
        "\nFor reference, the optimal homogeneous configuration under this budget is {}.",
        best_homogeneous(&pool, budget)
    );
    println!("See `cargo bench -p kairos-bench --bench figures` for the full paper reproduction.");
}

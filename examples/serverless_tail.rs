//! Scale-to-zero serving for a sparse model tail.
//!
//! Production inference fleets carry a long tail of models that see a
//! handful of queries per second — or per minute.  Keeping a dedicated
//! instance warm for each of them bills 24/7 for hardware that is idle
//! almost all of the time.  The serverless lane lets those models scale to
//! zero: an instance that sits idle past its keep-alive deadline parks
//! (zero billing), and the next query pays a container cold start (init +
//! model load) before service.
//!
//! Here one hot NCF lane (~78% of the traffic) and a medium WND lane share
//! the pool with a sparse RM2 tail at ~1 QPS.  A `ServerlessRuntime` with a
//! 5 QPS sparseness threshold classifies only the RM2 lane as serverless:
//! the hot lanes keep their always-on floors while the tail adopts the
//! keep-alive policy and scales to zero between bursts.  We compare
//! always-on against a fixed 200 ms keep-alive — so aggressive the repeated
//! cold starts blow RM2's QoS — and the hybrid histogram policy, which
//! learns the lane's idle gaps and keeps the container warm just long
//! enough to dodge most cold starts.
//!
//! Run with: `cargo run --release --example serverless_tail`

use kairos::prelude::*;

fn main() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let models = [ModelKind::Ncf, ModelKind::Wnd, ModelKind::Rm2];

    // 60 QPS total: NCF and WND carry the load, RM2 is a sparse tail whose
    // arrivals leave idle gaps of ~0.8 s on average.
    let total_qps = 60.0;
    let shares = [0.78, 0.20, 0.02];
    let mix = MixSpec::from_shares(
        &shares,
        &[
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
        ],
    );
    let trace = MixedTraceSpec::poisson(total_qps, mix.clone(), 12.0, 17).generate();
    let demands: Vec<f64> = shares.iter().map(|s| s * total_qps).collect();
    println!(
        "Mixed stream: {} queries over 12 s; RM2 tail at {:.1} QPS",
        trace.len(),
        demands[2]
    );

    // Container init (50 ms) + RM2 model load (100 ms): a parked tail
    // container re-warms well inside RM2's 350 ms QoS.
    let cold = ColdStartCost::new(50_000, 100_000);
    let variants: [(&str, Option<KeepAlivePolicy>); 3] = [
        ("always-on", None),
        (
            "fixed-200ms",
            Some(KeepAlivePolicy::fixed(200_000).unwrap()),
        ),
        (
            "hybrid-p90",
            Some(KeepAlivePolicy::hybrid(100_000, 40, 0.90).unwrap()),
        ),
    ];

    println!(
        "\n{:<12}{:>10}{:>12}{:>8}{:>12}{:>14}{:>12}",
        "policy", "billed $", "RM2 bill $", "cold", "parked s", "RM2 p99 ms", "violations"
    );
    for (label, policy) in &variants {
        let mut service = InferenceService::new(
            pool.clone(),
            &models,
            Some(latency.clone()),
            ServingOptions::default().budget(6.0).replan_every(500_000),
        );
        if let Some(policy) = policy {
            // Lanes below 5 QPS are sparse: only the RM2 tail goes
            // serverless; NCF and WND keep their always-on floors.
            service = service.with_serverless(ServerlessRuntime::new(
                policy.clone(),
                ColdStartProfile::uniform(cold),
                5.0,
            ));
        }
        service.warm_monitors(&mix, 3_000, 9);
        let spec = service.plan_initial(&demands).expect("plan");
        let specs = service.service_specs(&latency);
        let outcome = service.run(&spec, &specs, &trace);

        let report = &outcome.report;
        let rm2 = &outcome.per_model()[2];
        println!(
            "{:<12}{:>10.4}{:>12.4}{:>8}{:>12.2}{:>14.2}{:>12}",
            label,
            report.billed_dollars,
            report.billed_by_model[2],
            report.service.cold_starts,
            report.service.parked_us_sum as f64 / 1e6,
            rm2.p99_latency_us as f64 / 1000.0,
            rm2.violations
        );
    }
    println!(
        "\nThe fixed 200 ms policy parks the tail between almost every burst; \
         the repeated cold starts push RM2's p99 past its {:.0} ms QoS.  The \
         hybrid policy learns the idle histogram and holds the container just \
         past the p90 gap: it dodges most cold starts, matches the always-on \
         p99 exactly, and still bills the tail for less than its always-on \
         floor.",
        ModelKind::Rm2.qos_us() as f64 / 1000.0
    );
}

//! Quickstart: plan a heterogeneous pool for one model, simulate serving a
//! production-like query stream with Kairos's matching-based distributor, and
//! compare it against the naive FCFS policy on identical hardware.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use kairos::prelude::*;
use kairos_models::best_homogeneous;

fn main() {
    // --- 1. Describe the serving problem -----------------------------------
    // Pool of instance types (paper Table 4), the served model (Google Wide &
    // Deep, 25 ms QoS) and the cost budget.
    let pool = PoolSpec::new(ec2::paper_pool());
    let model = ModelKind::Wnd;
    let latency = paper_calibration();
    let budget = 2.5; // $/hr

    println!("Kairos quickstart — model {model}, budget ${budget}/hr");
    println!("Instance pool:");
    for ty in pool.types() {
        println!("  {ty}");
    }

    // --- 2. Plan a heterogeneous configuration (no online evaluation) ------
    let planner = KairosPlanner::new(pool.clone(), model, latency.clone());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let sample = BatchSizeDistribution::production_default().sample_many(&mut rng, 4000);
    let plan = planner.plan(budget, &sample);
    let homogeneous = best_homogeneous(&pool, budget);

    println!(
        "\nKairos chose configuration {} (cost ${:.3}/hr, upper bound {:.1} QPS)",
        plan.chosen,
        plan.chosen.cost(&pool),
        plan.chosen_upper_bound()
    );
    println!(
        "Optimal homogeneous configuration would be {} (cost ${:.3}/hr)",
        homogeneous,
        homogeneous.cost(&pool)
    );

    // --- 3. Replay a query trace through the simulator ---------------------
    let service = ServiceSpec::new(model, latency.clone());
    let trace = TraceSpec::production(250.0, 3.0, 42).generate();
    println!(
        "\nReplaying {} queries ({:.0} QPS offered, log-normal batch sizes)...",
        trace.len(),
        trace.offered_qps()
    );

    let mut kairos = KairosScheduler::with_priors(model, &latency);
    let kairos_report = run_trace(
        &pool,
        &plan.chosen,
        &service,
        &trace,
        &mut kairos,
        &SimulationOptions::default(),
    );

    let mut fcfs = FcfsScheduler::new();
    let fcfs_report = run_trace(
        &pool,
        &plan.chosen,
        &service,
        &trace,
        &mut fcfs,
        &SimulationOptions::default(),
    );

    println!(
        "\n{:<28}{:>12}{:>14}{:>14}",
        "scheduler", "goodput", "p99 latency", "QoS violations"
    );
    for report in [&kairos_report, &fcfs_report] {
        println!(
            "{:<28}{:>9.1} QPS{:>11.1} ms{:>13.2} %",
            report.scheduler,
            report.goodput_qps(),
            report.p99_latency_us() as f64 / 1000.0,
            report.violation_fraction() * 100.0
        );
    }

    println!(
        "\nKairos served {:.1}x the QoS-compliant queries of naive FCFS on the same hardware.",
        kairos_report.goodput_qps() / fcfs_report.goodput_qps().max(1e-9)
    );
}

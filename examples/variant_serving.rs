//! Model-less serving: the variant catalogue and accuracy-aware
//! auto-selection.
//!
//! The catalogue publishes, per model, a full-precision *reference* plus
//! cheaper quantized/distilled variants that trade accuracy for latency.
//! The planner gains a third axis: beyond *which instances* and *how they
//! are bought*, it now also picks *which variant of the model* serves.
//! Offline, sweeping the accuracy floor traces an accuracy-vs-cost
//! frontier single-variant Kairos cannot reach; online, the serving loop
//! downgrades to a faster variant when demand outruns what the reference
//! can serve in budget, and re-promotes on the first replan with headroom.
//!
//! Run with:
//! ```text
//! cargo run --release --example variant_serving
//! ```

use kairos::prelude::*;
use kairos_core::paper_variant_planner;
use kairos_models::VariantCatalog;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = ModelKind::Rm2;
    let latency = paper_calibration();
    let service = ServiceSpec::new(model, latency.clone());
    let pool = PoolSpec::new(ec2::paper_pool());
    let budget = 2.5;

    // The paper-shaped catalogue: fp32 reference, an int8 post-training
    // quantization (1.8x faster, -1.5 accuracy points) and a distilled
    // student (2.8x faster, -4 points).
    let catalog = VariantCatalog::paper_variants();
    println!("Variant catalogue for {model}:");
    for v in catalog.variants_for(model) {
        println!(
            "  {:<10} accuracy {:.3}  {:>5} MiB  {:>4.1}x{}",
            v.name,
            v.accuracy,
            v.memory_mb,
            v.speedup,
            if v.reference { "  (reference)" } else { "" }
        );
    }

    // ---- Offline: the accuracy-vs-cost frontier at a fixed demand.
    let planner = paper_variant_planner(&pool, model, &latency);
    let sample = BatchSizeDistribution::production_default()
        .sample_many(&mut StdRng::seed_from_u64(7), 2_000);
    let ref_best = planner.rank_configs_variants(budget, &sample, Some(0.98))[0].upper_bound;
    let demand = ref_best * 0.7 / 1.35;
    println!(
        "\nFrontier: cheapest deployment covering {demand:.1} QPS (x1.35 headroom) per floor:"
    );
    for (label, floor) in [
        ("0.980", Some(0.98)),
        ("0.965", Some(0.965)),
        ("none", None),
    ] {
        let choice = planner
            .cheapest_for_demand(budget, &sample, demand, 1.35, floor)
            .expect("the reference covers this demand");
        println!(
            "  floor {label:<6} -> {:<10} {} at {:.3} $/hr",
            choice.variant,
            choice.config,
            choice.config.cost(&pool)
        );
    }

    // ---- Online: overload sized to the reference plan's own best bound —
    // ~35 % over what fp32 can serve with headroom under the budget.
    let rate_qps = ref_best;
    let trace = TraceSpec::production(rate_qps, 6.0, 4242).generate();
    println!(
        "\nWorkload: {} queries at {rate_qps:.1} QPS for 6 s under {budget} $/hr",
        trace.len()
    );

    let options = ServingOptions::default()
        .budget(budget)
        .replan_every(500_000)
        .provisioning_delay(300_000);
    let mut system = ServingSystem::new(pool.clone(), model, Some(latency.clone()), options)
        .with_variants(&catalog, &latency);
    system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let initial = system.plan_for_demand(rate_qps).expect("prior knowledge");
    println!("Initial deployment {initial} on the fp32 reference");

    let outcome = system.run(&initial, &service, &trace);

    println!("\nVariant switch timeline:");
    for s in &outcome.variant_switches {
        println!(
            "  t = {:>5.2}s  [{:?}] {} -> {} (accuracy {:.3})",
            s.at_us as f64 / 1e6,
            s.trigger,
            s.from,
            s.to,
            s.accuracy
        );
    }

    let report = &outcome.report;
    println!("\nOutcome:");
    println!(
        "  violations {:.2} %, delivered accuracy {:.4} (reference {:.3}), \
         {} switch(es), final variant {}",
        report.violation_fraction() * 100.0,
        report.delivered_accuracy(),
        catalog.reference(model).unwrap().accuracy,
        outcome.variant_switches.len(),
        system.active_variant().unwrap_or("fp32")
    );

    // The same overload with a strict floor: quantized lanes are
    // inadmissible, so the loop behaves exactly like single-variant Kairos.
    let mut floored = ServingSystem::new(
        pool.clone(),
        model,
        Some(latency.clone()),
        options.min_accuracy(0.98),
    )
    .with_variants(&catalog, &latency);
    floored.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let initial = floored.plan_for_demand(rate_qps).expect("prior knowledge");
    let strict = floored.run(&initial, &service, &trace);
    println!(
        "  with a 0.98 floor: violations {:.2} %, accuracy {:.4}, {} switch(es) \
         (the floor vetoes every downgrade)",
        strict.report.violation_fraction() * 100.0,
        strict.report.delivered_accuracy(),
        strict.variant_switches.len()
    );
}

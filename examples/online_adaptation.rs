//! Online adaptation: the controller-in-the-loop serving system reacting to
//! a load shift on a *live* cluster (the end-to-end Fig. 12 story).
//!
//! A step-change workload doubles-and-a-half the offered rate mid-run.  The
//! Kairos serving loop watches every arrival and completion, notices the
//! drift, replans from its online knowledge, and steers the cluster to the
//! new configuration — adding instances (which come online after a
//! provisioning delay) and gracefully draining surplus ones.  A frozen copy
//! of the initial plan serves the same trace for comparison.
//!
//! Run with:
//! ```text
//! cargo run --release --example online_adaptation
//! ```

use kairos::prelude::*;

fn main() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let model = ModelKind::Rm2;
    let latency = paper_calibration();
    let service = ServiceSpec::new(model, latency.clone());

    // A 40 -> 100 QPS step change with the production batch mix.
    let workload = PhasedArrival::step_change(
        40.0,
        100.0,
        BatchSizeDistribution::production_default(),
        5.0,
        5.0,
        4242,
    );
    let trace = workload.generate();
    let boundary_us = workload.boundaries_us()[1];
    println!(
        "Workload: {} queries, 40 QPS -> 100 QPS step at t = {:.0}s",
        trace.len(),
        boundary_us as f64 / 1e6
    );

    // The serving system: Kairos controller in the loop, 0.5 s replan
    // cadence, 300 ms provisioning delay, monitor warmed with the mix.
    let mut system = ServingSystem::new(
        pool.clone(),
        model,
        Some(latency.clone()),
        ServingOptions::default()
            .replan_every(500_000)
            .provisioning_delay(300_000),
    );
    system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);

    let initial = system.plan_for_demand(40.0).expect("prior knowledge");
    println!(
        "Initial deployment (sized for 40 QPS): {} at {:.3} $/hr\n",
        initial,
        initial.cost(&pool)
    );

    let outcome = system.run(&initial, &service, &trace);

    println!("Reconfiguration timeline:");
    for r in &outcome.reconfigs {
        println!(
            "  t = {:>5.2}s  [{:?}] demand {:>6.1} QPS -> {} ({:.3} $/hr), +{} / -{} instances",
            r.at_us as f64 / 1e6,
            r.trigger,
            r.demand_qps,
            r.target,
            r.target.cost(&pool),
            r.added_types.len(),
            r.retired_instances.len()
        );
    }
    println!(
        "  final active cluster: {} at {:.3} $/hr",
        outcome.final_active,
        outcome.final_active.cost(&pool)
    );

    // The frozen initial plan on the same trace.
    let mut frozen_scheduler = KairosScheduler::with_priors(model, &latency);
    let frozen = run_trace(
        &pool,
        &initial,
        &service,
        &trace,
        &mut frozen_scheduler,
        &SimulationOptions::default(),
    );

    println!("\nOutcome across the shift:");
    let recover = |r: &kairos_sim::SimReport| {
        r.time_to_recover(boundary_us, 500_000, 0.15)
            .map(|t| format!("{:.1} s", t as f64 / 1e6))
            .unwrap_or_else(|| "never".into())
    };
    println!(
        "  adaptive: {:>5.2} % violations, recovered in {}",
        outcome.report.violation_fraction() * 100.0,
        recover(&outcome.report)
    );
    println!(
        "  frozen:   {:>5.2} % violations, recovered in {}",
        frozen.violation_fraction() * 100.0,
        recover(&frozen)
    );

    // Violation-rate timeline around the boundary (by arrival window).
    println!("\nWindowed violation rate (adaptive | frozen):");
    let a = outcome.report.violation_timeline(1_000_000);
    let f = frozen.violation_timeline(1_000_000);
    for ((t, av), (_, fv)) in a.iter().zip(f.iter()) {
        if *t > workload.total_duration_us() {
            break;
        }
        let marker = if *t == boundary_us { "  <- shift" } else { "" };
        println!(
            "  t = {:>4.0}s  {:>5.1} % | {:>5.1} %{}",
            *t as f64 / 1e6,
            av * 100.0,
            fv * 100.0,
            marker
        );
    }
}

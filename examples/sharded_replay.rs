//! Sharded multi-model replay: the same mixed trace through the combined
//! `SimEngine` and through `ShardedEngine`, which partitions the cluster
//! into per-model lane shards and replays each lane on its own rayon
//! worker.  The merged report is **bit-identical** to the combined run —
//! same records, same QoS accounting, same billing down to the last f64
//! bit — at every thread count, because each lane draws from its own
//! deterministic RNG stream and the merge re-sorts into the engine's
//! canonical order.
//!
//! Run with: `cargo run --release --example sharded_replay`

use kairos::prelude::*;

fn main() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let models = [ModelKind::Ncf, ModelKind::Wnd, ModelKind::Rm2];

    // Three model lanes on one heterogeneous pool: each lane gets its own
    // sub-cluster, and the mixed stream tags every query with its model.
    let spec = ClusterSpec::from_configs(vec![
        Config::new(vec![3, 0, 2, 0]),
        Config::new(vec![4, 0, 3, 0]),
        Config::new(vec![2, 0, 1, 0]),
    ]);
    let mix = MixSpec::from_shares(
        &[0.5, 0.35, 0.15],
        &[
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
        ],
    );
    let trace = MixedTraceSpec::poisson(900.0, mix, 8.0, 42).generate();
    let services: Vec<ServiceSpec> = models
        .iter()
        .map(|&kind| ServiceSpec::new(kind, latency.clone()))
        .collect();
    let service_refs: Vec<&ServiceSpec> = services.iter().collect();
    let options = SimulationOptions { seed: 7 };
    println!(
        "Mixed stream: {} queries over 8 s across {} model lanes",
        trace.len(),
        models.len()
    );

    // The reference: one combined engine replaying every lane in one loop.
    let mut scheduler = FcfsScheduler::new();
    let started = std::time::Instant::now();
    let combined = SimEngine::new_multi(
        &pool,
        &spec,
        &service_refs,
        &trace,
        &mut scheduler,
        &options,
    )
    .run();
    let combined_wall = started.elapsed().as_secs_f64();

    // The sharded engine: same inputs, one shard per model lane, fanned out
    // over however many rayon workers the pool provides.
    let sharded_engine = ShardedEngine::new(&pool, &spec, &service_refs, &options);
    println!(
        "\n{:<10}{:>10}{:>14}{:>16}{:>12}",
        "engine", "threads", "wall (ms)", "events/sec", "identical"
    );
    println!(
        "{:<10}{:>10}{:>14.1}{:>16.0}{:>12}",
        "combined",
        1,
        combined_wall * 1000.0,
        combined.events_per_sec(combined_wall),
        "-"
    );
    for threads in [1, 2, 4] {
        let pool_handle = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let started = std::time::Instant::now();
        let sharded =
            pool_handle.install(|| sharded_engine.run(&trace, |_| Box::new(FcfsScheduler::new())));
        let wall = started.elapsed().as_secs_f64();

        // Bit-identity: every record, every aggregate, every f64 bit.
        assert_eq!(sharded.records, combined.records);
        assert_eq!(sharded.unfinished, combined.unfinished);
        assert_eq!(sharded.events_processed, combined.events_processed);
        assert_eq!(
            sharded.billed_dollars.to_bits(),
            combined.billed_dollars.to_bits()
        );
        println!(
            "{:<10}{:>10}{:>14.1}{:>16.0}{:>12}",
            "sharded",
            threads,
            wall * 1000.0,
            sharded.events_per_sec(wall),
            "yes"
        );
    }

    println!(
        "\nCombined run: {} of {} queries completed, {:.2} % QoS violations, \
         {} engine events, {:.4} $ billed",
        combined.completed(),
        combined.offered,
        combined.violation_fraction() * 100.0,
        combined.events_processed,
        combined.billed_dollars
    );
}

//! Spot-aware serving: the Kairos control loop buying preemptible cloud
//! capacity through a preemption storm.
//!
//! The offering catalog extends the paper's pool along a second axis — *how*
//! each instance is bought.  Spot g4dn capacity costs about a third of its
//! on-demand price but the cloud reclaims it mid-run (two scripted notices,
//! 200 ms warning each).  The serving loop plans over offerings, so its
//! configurations say "1 on-demand GPU + N spot instances"; on a notice it
//! replans immediately with the stormed offering priced out (cooldown),
//! re-buying stable capacity, and drifts back to the discount once the storm
//! passes.
//!
//! Run with:
//! ```text
//! cargo run --release --example spot_serving
//! ```

use kairos::prelude::*;
use kairos_models::{Offering, OfferingCatalog, PreemptionProcess, PriceTrace, TraceMarket};
use std::sync::Arc;

fn main() {
    let model = ModelKind::Rm2;
    let latency = paper_calibration();
    let service = ServiceSpec::new(model, latency.clone());

    // Two hardware types, four offerings: each GPU/CPU type on-demand and as
    // deeply discounted spot capacity.  The GPU spot offering is hit by two
    // preemption storms.
    let storms_us = vec![4_000_000, 7_000_000];
    let catalog = OfferingCatalog::new(vec![
        Offering::on_demand(ec2::g4dn_xlarge()),
        Offering::on_demand(ec2::r5n_large()),
        Offering::spot(
            ec2::g4dn_xlarge(),
            PriceTrace::constant(0.17),
            PreemptionProcess::At {
                notices_us: storms_us.clone(),
            },
        ),
        Offering::spot(
            ec2::r5n_large(),
            PriceTrace::constant(0.05),
            PreemptionProcess::None,
        ),
    ]);
    let market = Arc::new(TraceMarket::new(catalog.clone()));
    let effective = catalog.effective_pool();
    println!("Offering catalog:");
    for (i, offering) in catalog.offerings().iter().enumerate() {
        println!(
            "  [{i}] {:<18} {:>7.3} $/hr{}",
            offering.label(),
            offering.price_at(0),
            if offering.preemptible() {
                "  (preemptible)"
            } else {
                ""
            }
        );
    }

    // 60 QPS steady RM2 stream for 10 s; storms at 4 s and 7 s.
    let trace = TraceSpec::production(60.0, 10.0, 4242).generate();
    println!(
        "\nWorkload: {} queries at 60 QPS; GPU-spot storms at {:?} s\n",
        trace.len(),
        storms_us
            .iter()
            .map(|&t| t as f64 / 1e6)
            .collect::<Vec<_>>()
    );

    let mut system = ServingSystem::with_market(
        catalog.clone(),
        market,
        model,
        Some(latency.clone()),
        ServingOptions::default()
            .budget(2.5)
            .replan_every(500_000)
            .provisioning_delay(300_000)
            .spot_cooldown(2_000_000),
    );
    system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let initial = system.plan_for_demand(60.0).expect("prior knowledge");
    println!(
        "Initial deployment {} at {:.3} $/hr (on-demand-only would pay {:.3} $/hr \
         for the same counts)",
        initial,
        initial.cost(&effective),
        initial
            .counts()
            .iter()
            .enumerate()
            .map(|(i, &c)| catalog.on_demand_price(i) * c as f64)
            .sum::<f64>()
    );

    let outcome = system.run(&initial, &service, &trace);

    println!("\nReconfiguration timeline:");
    for r in &outcome.reconfigs {
        println!(
            "  t = {:>5.2}s  [{:?}] demand {:>6.1} QPS -> {} ({:.3} $/hr), +{} / -{} instances",
            r.at_us as f64 / 1e6,
            r.trigger,
            r.demand_qps,
            r.target,
            r.target.cost(&effective),
            r.added_types.len(),
            r.retired_instances.len()
        );
    }

    let report = &outcome.report;
    println!("\nOutcome:");
    println!(
        "  {} preemption notice(s), {} instance(s) reclaimed, {} quer(ies) requeued",
        report.preemption_notices, report.preempted_instances, report.requeued_queries
    );
    println!(
        "  violations {:.2} %, billed {:.3} $/hr time-weighted (budget 2.5 $/hr)",
        report.violation_fraction() * 100.0,
        report.billed_cost_per_hour()
    );

    // Violation-rate timeline: the storms show up as short spikes that the
    // market replans absorb.
    println!("\nWindowed violation rate:");
    for (t, rate) in report.violation_timeline(1_000_000) {
        if t >= trace.duration_us() {
            break;
        }
        let marker = if storms_us.iter().any(|&s| s >= t && s < t + 1_000_000) {
            "  <- storm"
        } else {
            ""
        };
        println!(
            "  t = {:>4.0}s  {:>5.1} %{}",
            t as f64 / 1e6,
            rate * 100.0,
            marker
        );
    }
}

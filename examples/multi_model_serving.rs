//! Multi-model serving through the `InferenceService` facade.
//!
//! Three production models with wildly different QoS targets — NCF (5 ms),
//! RM2 (350 ms) and WND (25 ms) — share one heterogeneous pool under a
//! single global budget.  Queries arrive as one mixed, model-tagged stream;
//! the facade owns placement and capacity: it splits the budget across
//! models by capacity-weighted water-filling, runs one Kairos control loop
//! per model, and enforces each model's own QoS target in the engine.
//!
//! Run with: `cargo run --release --example multi_model_serving`

use kairos::prelude::*;

fn main() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let models = [ModelKind::Ncf, ModelKind::Rm2, ModelKind::Wnd];

    // The offered stream: 150 QPS total, split 45/20/35 across the models,
    // each with the production-like log-normal batch mix.
    let mix = MixSpec::from_shares(
        &[0.45, 0.2, 0.35],
        &[
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
        ],
    );
    let trace = MixedTraceSpec::poisson(150.0, mix.clone(), 4.0, 42).generate();
    println!(
        "Mixed stream: {} queries over 4 s ({} models)",
        trace.len(),
        mix.num_models()
    );

    // One facade, one 6 $/hr budget, three per-model control loops.
    let mut service = InferenceService::new(
        pool.clone(),
        &models,
        Some(latency.clone()),
        ServingOptions::default()
            .budget(6.0)
            .replan_every(500_000)
            .provisioning_delay(300_000),
    );
    service.warm_monitors(&mix, 3_000, 7);

    let demands = [150.0 * 0.45, 150.0 * 0.2, 150.0 * 0.35];
    let initial = service
        .plan_initial(&demands)
        .expect("priors allow planning");
    println!(
        "\nInitial per-model deployment (total {:.3} $/hr):",
        initial.cost(&pool)
    );
    for (slice, kind) in initial.pools.iter().zip(models.iter()) {
        println!(
            "  {:<8} {} at {:.3} $/hr",
            kind.to_string(),
            slice.config,
            slice.config.cost(&pool)
        );
    }

    let specs = service.service_specs(&latency);
    let outcome = service.run(&initial, &specs, &trace);

    println!(
        "\nServed {} of {} queries; {} replans, {} reconfigurations",
        outcome.report.completed(),
        outcome.report.offered,
        outcome.replans,
        outcome.reconfigs.len()
    );
    println!(
        "\n{:<8}{:>9}{:>12}{:>13}{:>11}{:>15}",
        "model", "offered", "violations", "p99 (ms)", "QoS (ms)", "budget ($/hr)"
    );
    for (row, kind) in outcome.per_model().iter().zip(models.iter()) {
        println!(
            "{:<8}{:>9}{:>12}{:>13.2}{:>11.1}{:>15.3}",
            kind.to_string(),
            row.offered,
            row.violations,
            row.p99_latency_us as f64 / 1000.0,
            kind.qos_us() as f64 / 1000.0,
            outcome.last_budget_split[row.model.index()]
        );
    }

    // The per-model rows sum exactly to the aggregate report.
    let per = outcome.per_model();
    assert_eq!(
        per.iter().map(|m| m.offered).sum::<usize>(),
        outcome.report.offered
    );
    assert_eq!(
        per.iter().map(|m| m.violations).sum::<usize>(),
        outcome.report.violations()
    );
    println!(
        "\nAggregate: {:.2} % violations across the mix (per-model sums check out)",
        outcome.report.violation_fraction() * 100.0
    );
}

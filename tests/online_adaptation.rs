//! Cross-crate integration test of the online serving loop (the acceptance
//! scenario of the Fig. 12 adaptation story):
//!
//! On a step-change phased trace, the controller-in-the-loop run must detect
//! the shift, reconfigure the live cluster, and restore the QoS-violation
//! rate below the static-plan baseline within the run.

use kairos::prelude::*;

const LOW_QPS: f64 = 40.0;
const HIGH_QPS: f64 = 100.0;
const PHASE_S: f64 = 5.0;
const BOUNDARY_US: u64 = 5_000_000;

fn workload() -> PhasedArrival {
    PhasedArrival::step_change(
        LOW_QPS,
        HIGH_QPS,
        BatchSizeDistribution::production_default(),
        PHASE_S,
        PHASE_S,
        4242,
    )
}

fn serving_system() -> ServingSystem {
    let mut system = ServingSystem::new(
        PoolSpec::new(ec2::paper_pool()),
        ModelKind::Rm2,
        Some(paper_calibration()),
        ServingOptions::default()
            .replan_every(500_000)
            .provisioning_delay(300_000),
    );
    // Warm the monitor with the production mix, as any running deployment's
    // window would be.
    system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    system
}

#[test]
fn controller_in_the_loop_beats_the_static_plan_across_a_load_shift() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let service = ServiceSpec::new(ModelKind::Rm2, latency.clone());
    let trace = workload().generate();

    let mut system = serving_system();
    let initial = system
        .plan_for_demand(LOW_QPS)
        .expect("priors allow planning");

    // Static baseline: the same initial configuration and the same matching
    // scheduler, but no reconfiguration — only the decision policy differs.
    let mut static_scheduler = KairosScheduler::with_priors(ModelKind::Rm2, &latency);
    let static_report = run_trace(
        &pool,
        &initial,
        &service,
        &trace,
        &mut static_scheduler,
        &SimulationOptions::default(),
    );

    let outcome = system.run(&initial, &service, &trace);

    // The shift was detected and acted upon: at least one scale-out within
    // the trace window.
    let scale_outs: Vec<_> = outcome
        .reconfigs
        .iter()
        .filter(|r| !r.added_types.is_empty() && r.at_us < 2 * BOUNDARY_US)
        .collect();
    assert!(
        !scale_outs.is_empty(),
        "no scale-out happened: {:?}",
        outcome.reconfigs
    );

    // The adaptive run ends with a healthier violation rate than the frozen
    // plan.
    let adaptive = outcome.report.violation_fraction();
    let frozen = static_report.violation_fraction();
    assert!(
        adaptive < frozen,
        "adaptive {adaptive:.3} must beat static {frozen:.3}"
    );

    // QoS is *restored* within the run: after the post-shift transient the
    // violation timeline settles at or below 15 %, which the static plan
    // never manages.
    let recovery = outcome
        .report
        .time_to_recover(BOUNDARY_US, 500_000, 0.15)
        .expect("adaptive run must recover");
    assert!(
        recovery < BOUNDARY_US,
        "recovery took {recovery} us, longer than the phase itself"
    );
    assert_eq!(
        static_report.time_to_recover(BOUNDARY_US, 500_000, 0.15),
        None,
        "the static plan should stay in violation after the shift"
    );
}

#[test]
fn serving_loop_is_deterministic() {
    let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
    let trace = workload().generate();
    let run = || {
        let mut system = serving_system();
        let initial = system.plan_for_demand(LOW_QPS).unwrap();
        system.run(&initial, &service, &trace)
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.records, b.report.records);
    assert_eq!(a.reconfigs.len(), b.reconfigs.len());
    assert_eq!(a.final_active, b.final_active);
}

#[test]
fn reactive_autoscaler_adapts_but_kairos_recovers_at_lower_cost() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
    let trace = workload().generate();

    // The reactive baseline scales homogeneous GPUs on backlog pressure.
    let scaler = ReactiveAutoscaler::new(AutoscalerOptions {
        cooldown_us: 500_000,
        provisioning_delay_us: 300_000,
        ..Default::default()
    });
    let reactive = scaler.run(&pool, 2, &service, &trace);
    assert!(
        reactive.actions.iter().any(|(_, d)| *d > 0),
        "the step change must push the autoscaler to grow"
    );

    // Kairos's demand-aware heterogeneous plan serves the same load shift.
    let mut system = serving_system();
    let initial = system.plan_for_demand(LOW_QPS).unwrap();
    let outcome = system.run(&initial, &service, &trace);

    // Both adapt; Kairos must not do worse on violations while its final
    // cluster stays within the planner's budget cap.
    assert!(outcome.final_active.cost(&pool) <= 2.5 + 1e-9);
    assert!(
        outcome.report.violation_fraction() <= reactive.report.violation_fraction() + 0.05,
        "kairos {:.3} vs reactive {:.3}",
        outcome.report.violation_fraction(),
        reactive.report.violation_fraction()
    );
}

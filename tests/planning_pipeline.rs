//! Cross-crate integration tests for the planning side of Kairos: upper-bound
//! ranking, similarity selection, Kairos+ pruning search and the online
//! controller, validated against the oracle reference model.

use kairos::prelude::*;
use kairos_baselines::{
    best_oracle_throughput, oracle_throughput, ConfigSearch, ExhaustiveSearch, RandomSearch,
    SearchSpace,
};
use kairos_core::kairos_plus_search;
use kairos_models::{enumerate_configs, Config, EnumerationOptions};
use rand::SeedableRng;

fn sample(seed: u64, n: usize) -> Vec<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    BatchSizeDistribution::production_default().sample_many(&mut rng, n)
}

/// The paper's Fig. 13 claim: the configuration with the best *actual*
/// (oracle) throughput sits among the top candidates by upper bound, and the
/// configuration Kairos selects is near-optimal.
#[test]
fn optimum_lies_in_the_top_upper_bound_candidates() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let s = sample(11, 2500);

    for model in [ModelKind::Rm2, ModelKind::Wnd, ModelKind::Dien] {
        let planner = KairosPlanner::new(pool.clone(), model, latency.clone());
        let plan = planner.plan(2.5, &s);

        let configs: Vec<Config> = plan.ranked.iter().map(|(c, _)| c.clone()).collect();
        let (_, best_oracle) = best_oracle_throughput(&pool, &configs, model, &latency, &s);

        // The best oracle throughput among the top-20 UB candidates is close
        // to the global optimum (the paper's Fig. 13 shows the optimum inside
        // the top candidates; the multi-auxiliary optimism of the bound makes
        // the exact cut-off fuzzy, so allow a modest margin here).
        let top: Vec<Config> = plan.top(20).iter().map(|(c, _)| c.clone()).collect();
        let (_, top_best) = best_oracle_throughput(&pool, &top, model, &latency, &s);
        assert!(
            top_best >= 0.8 * best_oracle,
            "{model}: top-20 UB best {top_best:.1} too far from optimum {best_oracle:.1}"
        );

        // Kairos's selected configuration is itself competitive.
        let chosen = oracle_throughput(&pool, &plan.chosen, model, &latency, &s);
        assert!(
            chosen >= 0.6 * best_oracle,
            "{model}: chosen config {:.1} too far from optimum {best_oracle:.1}",
            chosen
        );
    }
}

/// Kairos+ finds the same optimum as exhaustive search while evaluating far
/// fewer configurations (the Fig. 10/11 claim), using the oracle model as the
/// expensive evaluator.
#[test]
fn kairos_plus_matches_exhaustive_search_with_fewer_evaluations() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Wnd;
    let s = sample(13, 2000);

    let planner = KairosPlanner::new(pool.clone(), model, latency.clone());
    let plan = planner.plan(2.5, &s);
    let space_size = plan.ranked.len();

    let result = kairos_plus_search(
        &plan.ranked,
        |c| oracle_throughput(&pool, c, model, &latency, &s),
        None,
    );
    // Exhaustive optimum over the same space.
    let optimum = plan
        .ranked
        .iter()
        .map(|(c, _)| oracle_throughput(&pool, c, model, &latency, &s))
        .fold(f64::MIN, f64::max);

    assert!(
        result.best_throughput >= 0.999 * optimum,
        "Kairos+ best {:.2} should match exhaustive optimum {optimum:.2}",
        result.best_throughput
    );
    assert!(
        result.evaluations() * 10 < space_size,
        "Kairos+ used {} evaluations on a space of {space_size}",
        result.evaluations()
    );
    // Random search with the same evaluation budget does not reliably reach
    // the optimum.
    let space = SearchSpace::new(pool.clone(), 2.5);
    let mut eval = |c: &Config| oracle_throughput(&pool, c, model, &latency, &s);
    let random = RandomSearch { seed: 3 }.search(&space, &mut eval, result.evaluations());
    assert!(random.best.unwrap().1 <= optimum + 1e-9);
}

/// Fig. 13/14 trend property: the upper bound tracks the achievable (oracle)
/// throughput — configurations ranked high by the bound achieve clearly more
/// than configurations ranked low, even though the bound is not a pointwise
/// envelope of the oracle (the paper's Fig. 14 likewise shows ORCL above UB).
#[test]
fn upper_bound_tracks_oracle_throughput_ordering() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Rm2;
    let s = sample(17, 2000);
    let estimator =
        kairos_core::ThroughputEstimator::new(pool.clone(), model, latency.clone(), s.clone());
    let configs = enumerate_configs(&pool, &EnumerationOptions::with_budget(2.5));
    let ranked = estimator.rank_configs(&configs);

    let mean_oracle = |slice: &[(Config, f64)]| -> f64 {
        slice
            .iter()
            .map(|(c, _)| oracle_throughput(&pool, c, model, &latency, &s))
            .sum::<f64>()
            / slice.len() as f64
    };
    let k = (ranked.len() / 10).max(5);
    let top = mean_oracle(&ranked[..k]);
    let bottom = mean_oracle(&ranked[ranked.len() - k..]);
    assert!(
        top > 1.5 * bottom,
        "top-decile UB configs ({top:.1} QPS) should clearly beat bottom-decile ({bottom:.1} QPS)"
    );

    // And the bound stays meaningful for the best candidates: within a small
    // constant factor of the oracle reference (tight, as in Fig. 14).
    for (config, ub) in &ranked[..k] {
        let orcl = oracle_throughput(&pool, config, model, &latency, &s);
        assert!(
            *ub >= 0.4 * orcl && *ub <= 2.5 * orcl,
            "config {config}: UB {ub:.1} not within a small factor of oracle {orcl:.1}"
        );
    }
}

/// The controller closes the loop: after observing a query stream and
/// completions it produces a plan whose configuration the exhaustive search
/// (over the oracle model) confirms to be close to optimal.
#[test]
fn controller_replans_close_to_optimal_after_observing_load() {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Dien;
    let mut controller = KairosController::with_priors(pool.clone(), model, latency.clone());

    let s = sample(23, 3000);
    for &b in &s {
        controller.observe_query(b);
    }
    let plan = controller.plan(2.5).unwrap();

    let mut eval = |c: &Config| oracle_throughput(&pool, c, model, &latency, &s);
    let space = SearchSpace::new(pool.clone(), 2.5);
    let exhaustive = ExhaustiveSearch.search(&space, &mut eval, usize::MAX);
    let optimum = exhaustive.best.unwrap().1;
    let chosen = oracle_throughput(&pool, &plan.chosen, model, &latency, &s);
    assert!(
        chosen >= 0.7 * optimum,
        "controller plan {chosen:.1} too far from optimum {optimum:.1}"
    );
}

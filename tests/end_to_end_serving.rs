//! Cross-crate integration tests: the full serving pipeline (workload ->
//! simulator -> schedulers) behaves as the paper describes.

use kairos::prelude::*;
use kairos_models::Config;

fn service_for(model: ModelKind) -> (PoolSpec, ServiceSpec, LatencyTable) {
    let latency = paper_calibration();
    (
        PoolSpec::new(ec2::paper_pool()),
        ServiceSpec::new(model, latency.clone()),
        latency,
    )
}

/// The Fig. 5 story: on the same two instances, Kairos's matching serves more
/// queries within QoS than the naive FCFS policy because it routes
/// high-speedup (large) queries to the powerful instance.
#[test]
fn kairos_beats_naive_fcfs_on_the_figure5_shape() {
    let (pool, service, latency) = service_for(ModelKind::Wnd);
    let config = Config::new(vec![1, 0, 1, 0]); // one GPU, one cheap CPU
                                                // A bursty arrival of alternating large and small queries.
    let queries: Vec<kairos_workload::Query> = (0..40)
        .map(|i| {
            let batch = if i % 2 == 0 { 700 } else { 40 };
            kairos_workload::Query::new(i, batch, i * 2_000)
        })
        .collect();
    let trace = Trace::from_queries(queries);

    let mut kairos = KairosScheduler::with_priors(ModelKind::Wnd, &latency);
    let kairos_report = run_trace(
        &pool,
        &config,
        &service,
        &trace,
        &mut kairos,
        &SimulationOptions::default(),
    );
    let mut fcfs = FcfsScheduler::new();
    let fcfs_report = run_trace(
        &pool,
        &config,
        &service,
        &trace,
        &mut fcfs,
        &SimulationOptions::default(),
    );

    assert!(
        kairos_report.goodput_qps() > fcfs_report.goodput_qps(),
        "kairos {} should beat fcfs {}",
        kairos_report.goodput_qps(),
        fcfs_report.goodput_qps()
    );
}

/// Every scheduler keeps the basic serving invariants: all offered queries are
/// accounted for and no instance serves two queries at once (checked through
/// the per-record ordering).
#[test]
fn all_schedulers_preserve_serving_invariants() {
    let (pool, service, latency) = service_for(ModelKind::Dien);
    let config = Config::new(vec![1, 1, 1, 1]);
    let trace = TraceSpec::production(120.0, 1.0, 5).generate();

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(KairosScheduler::with_priors(ModelKind::Dien, &latency)),
        Box::new(RibbonScheduler::new()),
        Box::new(DrsScheduler::new(200)),
        Box::new(ClockworkScheduler::new(ModelKind::Dien, latency.clone())),
        Box::new(FcfsScheduler::new()),
    ];
    for scheduler in schedulers.iter_mut() {
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            scheduler.as_mut(),
            &SimulationOptions::default(),
        );
        assert_eq!(
            report.completed() + report.unfinished.len(),
            trace.len(),
            "{}: lost queries",
            report.scheduler
        );
        for r in &report.records {
            assert!(
                r.start_us >= r.arrival_us,
                "{}: service before arrival",
                report.scheduler
            );
            assert!(
                r.completion_us > r.start_us,
                "{}: zero-length service",
                report.scheduler
            );
        }
    }
}

/// Under a light load every QoS-aware scheme meets the 99th-percentile target.
#[test]
fn light_load_meets_qos_for_all_qos_aware_schemes() {
    let (pool, service, latency) = service_for(ModelKind::Wnd);
    let config = Config::new(vec![2, 0, 1, 0]);
    let trace = TraceSpec::production(50.0, 2.0, 8).generate();

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(KairosScheduler::with_priors(ModelKind::Wnd, &latency)),
        Box::new(ClockworkScheduler::new(ModelKind::Wnd, latency.clone())),
    ];
    for scheduler in schedulers.iter_mut() {
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            scheduler.as_mut(),
            &SimulationOptions::default(),
        );
        assert!(
            report.meets_qos(0.01),
            "{} violated QoS: {}",
            report.scheduler,
            report.violation_fraction()
        );
    }
}

/// The allowable-throughput search is consistent: a heterogeneous RM2
/// configuration chosen by Kairos sustains more load than the best
/// homogeneous configuration at the same budget (the Fig. 8 headline).
#[test]
fn planned_heterogeneous_config_beats_homogeneous_for_rm2() {
    let latency = paper_calibration();
    let pool = PoolSpec::new(ec2::paper_pool());
    let model = ModelKind::Rm2;
    let planner = KairosPlanner::new(pool.clone(), model, latency.clone());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let sample = BatchSizeDistribution::production_default().sample_many(&mut rng, 2000);
    let plan = planner.plan(2.5, &sample);
    let homogeneous = kairos_models::best_homogeneous(&pool, 2.5);

    let mut opts = CapacityOptions::with_seed(31);
    opts.duration_s = 1.0;
    opts.refine_steps = 3;
    let service = ServiceSpec::new(model, latency.clone());

    let hetero = allowable_throughput(&pool, &plan.chosen, &service, &opts, || {
        Box::new(KairosScheduler::with_priors(model, &latency)) as Box<dyn Scheduler>
    })
    .allowable_qps;
    let homo = allowable_throughput(&pool, &homogeneous, &service, &opts, || {
        Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>
    })
    .allowable_qps;
    // Scale the homogeneous result up for its unused budget, as the paper does.
    let homo_scaled = homo * (2.5 / homogeneous.cost(&pool));

    assert!(
        hetero > homo_scaled,
        "heterogeneous {hetero:.1} QPS should beat budget-scaled homogeneous {homo_scaled:.1} QPS"
    );
}

//! # kairos
//!
//! A Rust reproduction of **Kairos: Building Cost-Efficient Machine Learning
//! Inference Systems with Heterogeneous Cloud Resources** (HPDC 2023).
//!
//! Kairos serves ML inference queries on a *heterogeneous* pool of cloud
//! instances (one GPU base type plus cheaper CPU auxiliary types) and
//! maximizes query throughput under a QoS tail-latency target and a cost
//! budget.  It does so with two techniques: a min-cost bipartite-matching
//! query distributor, and a closed-form throughput upper bound that picks a
//! near-optimal heterogeneous configuration without any online exploration.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] (`kairos-core`) — the paper's contribution: query distribution,
//!   upper-bound estimation, configuration selection, Kairos+ search, and the
//!   online controller.
//! * [`models`] (`kairos-models`) — instance catalogue, model catalogue,
//!   latency calibration, online latency predictor, configuration arithmetic.
//! * [`workload`] (`kairos-workload`) — batch-size distributions, arrival
//!   processes, traces, and the query monitor.
//! * [`sim`] (`kairos-sim`) — the discrete-event cluster simulator and the
//!   allowable-throughput search.
//! * [`assignment`] (`kairos-assignment`) — rectangular linear-sum assignment
//!   solvers (Jonker–Volgenant and friends).
//! * [`baselines`] (`kairos-baselines`) — Ribbon, DeepRecSys, Clockwork,
//!   Oracle and the configuration-search baselines.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and `DESIGN.md` for
//! the architecture and reproduction methodology.

#![warn(missing_docs)]

pub use kairos_assignment as assignment;
pub use kairos_baselines as baselines;
pub use kairos_core as core;
pub use kairos_models as models;
pub use kairos_sim as sim;
pub use kairos_workload as workload;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use kairos_baselines::{
        static_overprovision, AutoscalerOptions, ClockworkScheduler, DrsScheduler,
        ReactiveAutoscaler, RibbonScheduler,
    };
    pub use kairos_core::{
        InferenceService, KairosController, KairosPlanner, KairosScheduler, MarketState,
        MultiServingOutcome, ServerlessRuntime, ServingOptions, ServingSystem, ThroughputEstimator,
        VariantChoice, VariantPlanner, VariantRuntime, VariantSwitch,
    };
    pub use kairos_models::{
        calibration::paper_calibration, ec2, ColdStartCost, ColdStartProfile, Config,
        ConstantMarket, EffectiveModel, FailureDomain, FaultEvent, FaultProcess, KeepAlivePolicy,
        LatencyTable, Market, MarketEvent, ModelKind, ModelVariant, Offering, OfferingCatalog,
        PoolSpec, PreemptionProcess, PriceTrace, PurchaseOption, ThroughputDegradation,
        TraceMarket, VariantCatalog, VariantError,
    };
    pub use kairos_sim::{
        allowable_throughput, allowable_throughput_many, run_trace, BatchingOptions,
        CapacityOptions, ClusterAction, ClusterSpec, EngineEvent, EngineHook, FcfsScheduler,
        Scheduler, ServerlessConfig, ServiceSpec, ShardedEngine, SharingMode, SharingOptions,
        SimContext, SimEngine, SimulationOptions,
    };
    pub use kairos_workload::{
        ArrivalProcess, BatchSizeDistribution, MixSpec, MixedTraceSpec, ModelId, Phase,
        PhasedArrival, QueryMonitor, Trace, TraceSpec,
    };
}

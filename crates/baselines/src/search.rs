//! Configuration-search algorithms used as baselines for Kairos+
//! (paper Sec. 8.3, Fig. 10 and Fig. 11).
//!
//! All searches operate over the affordable configuration space and call an
//! expensive black-box evaluator (a real deployment in the paper, the
//! discrete-event simulator or the oracle model here).  As in the paper's
//! Fig. 11 setup, every algorithm is given the same *sub-configuration
//! pruning* advantage: once a configuration has been evaluated, any
//! configuration obtainable from it by only removing instances is answered
//! from the cache instead of consuming a real evaluation.
//!
//! Implemented searches: exhaustive, random, simulated annealing, a genetic
//! algorithm, and Ribbon-style Bayesian optimization (Gaussian process with an
//! RBF kernel and expected-improvement acquisition).

use kairos_models::{enumerate_configs, Config, EnumerationOptions, PoolSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The affordable configuration space a search explores.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// The instance pool.
    pub pool: PoolSpec,
    /// Hourly budget.
    pub budget: f64,
    /// Every affordable configuration (at least one base instance).
    pub configs: Vec<Config>,
}

impl SearchSpace {
    /// Enumerates the affordable configuration space for a pool and budget.
    pub fn new(pool: PoolSpec, budget: f64) -> Self {
        let configs = enumerate_configs(&pool, &EnumerationOptions::with_budget(budget));
        Self {
            pool,
            budget,
            configs,
        }
    }

    /// Whether a configuration belongs to the space.
    pub fn contains(&self, config: &Config) -> bool {
        self.configs.iter().any(|c| c == config)
    }

    /// Number of configurations in the space.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

/// Evaluator wrapper providing the shared sub-configuration pruning and the
/// evaluation history.
pub struct PrunedEvaluator<'a> {
    evaluate: &'a mut dyn FnMut(&Config) -> f64,
    history: Vec<(Config, f64)>,
}

impl<'a> PrunedEvaluator<'a> {
    /// Wraps a raw evaluator.
    pub fn new(evaluate: &'a mut dyn FnMut(&Config) -> f64) -> Self {
        Self {
            evaluate,
            history: Vec::new(),
        }
    }

    /// Evaluates a configuration, answering sub-configurations of already
    /// evaluated configurations from the cache (their throughput cannot
    /// exceed the dominating configuration's, so the dominator's value is a
    /// usable optimistic stand-in for search decisions).
    pub fn evaluate(&mut self, config: &Config) -> f64 {
        if let Some(value) = self.pruned_value(config) {
            return value;
        }
        let value = (self.evaluate)(config);
        self.history.push((config.clone(), value));
        value
    }

    /// Returns the cached/pruned value for a configuration, if available.
    pub fn pruned_value(&self, config: &Config) -> Option<f64> {
        // Exact cache hit first.
        if let Some((_, v)) = self.history.iter().find(|(c, _)| c == config) {
            return Some(*v);
        }
        // Sub-configuration pruning.
        self.history
            .iter()
            .filter(|(c, _)| config.is_sub_config_of(c))
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Number of *real* (non-pruned) evaluations performed.
    pub fn real_evaluations(&self) -> usize {
        self.history.len()
    }

    /// The evaluation history (configuration, value), in evaluation order.
    pub fn history(&self) -> &[(Config, f64)] {
        &self.history
    }

    /// Best configuration evaluated so far.
    pub fn best(&self) -> Option<(Config, f64)> {
        self.history
            .iter()
            .cloned()
            .fold(None, |acc, (c, v)| match acc {
                None => Some((c, v)),
                Some((_, bv)) if v > bv => Some((c, v)),
                other => other,
            })
    }
}

/// Outcome of a configuration search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best configuration found and its value.
    pub best: Option<(Config, f64)>,
    /// Real evaluations performed, in order.
    pub history: Vec<(Config, f64)>,
}

impl SearchOutcome {
    /// Number of real evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.history.len()
    }

    /// Number of evaluations needed until a value at least `target` was first
    /// observed (`None` if never reached).
    pub fn evaluations_to_reach(&self, target: f64) -> Option<usize> {
        self.history
            .iter()
            .position(|(_, v)| *v >= target)
            .map(|p| p + 1)
    }
}

/// Common interface of the search algorithms.
pub trait ConfigSearch {
    /// Algorithm name used in figures.
    fn name(&self) -> &'static str;

    /// Runs the search with at most `max_evaluations` real evaluations.
    fn search(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut dyn FnMut(&Config) -> f64,
        max_evaluations: usize,
    ) -> SearchOutcome;
}

fn outcome(evaluator: PrunedEvaluator<'_>) -> SearchOutcome {
    SearchOutcome {
        best: evaluator.best(),
        history: evaluator.history().to_vec(),
    }
}

/// Exhaustive search: evaluate every configuration (the paper's offline
/// optimum reference).
///
/// Configurations are visited largest-first (by instance count) so that the
/// shared sub-configuration pruning can actually skip dominated candidates —
/// a smaller configuration evaluated after one of its supersets never needs a
/// real evaluation.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExhaustiveSearch;

impl ConfigSearch for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut dyn FnMut(&Config) -> f64,
        max_evaluations: usize,
    ) -> SearchOutcome {
        let mut order: Vec<&Config> = space.configs.iter().collect();
        order.sort_by_key(|c| std::cmp::Reverse(c.total_instances()));
        let mut evaluator = PrunedEvaluator::new(evaluate);
        for config in order {
            if evaluator.real_evaluations() >= max_evaluations {
                break;
            }
            evaluator.evaluate(config);
        }
        outcome(evaluator)
    }
}

/// Uniform random search (RAND in Fig. 11).
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// RNG seed.
    pub seed: u64,
}

impl ConfigSearch for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn search(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut dyn FnMut(&Config) -> f64,
        max_evaluations: usize,
    ) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..space.configs.len()).collect();
        order.shuffle(&mut rng);
        let mut evaluator = PrunedEvaluator::new(evaluate);
        for idx in order {
            if evaluator.real_evaluations() >= max_evaluations {
                break;
            }
            evaluator.evaluate(&space.configs[idx]);
        }
        outcome(evaluator)
    }
}

/// Simulated annealing over the configuration lattice (used in Fig. 2 and as
/// a Fig. 11 style baseline).
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// RNG seed.
    pub seed: u64,
    /// Initial temperature (in throughput units).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per step (0 < cooling < 1).
    pub cooling: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self {
            seed: 0,
            initial_temperature: 30.0,
            cooling: 0.95,
        }
    }
}

impl SimulatedAnnealing {
    fn neighbor(&self, space: &SearchSpace, current: &Config, rng: &mut StdRng) -> Config {
        // Propose +/- one instance of a random type, staying inside the space.
        for _ in 0..64 {
            let dim = rng.gen_range(0..space.pool.num_types());
            let up = rng.gen_bool(0.5);
            let mut counts = current.counts().to_vec();
            if up {
                counts[dim] += 1;
            } else if counts[dim] > 0 {
                counts[dim] -= 1;
            } else {
                continue;
            }
            let candidate = Config::new(counts);
            if candidate.cost(&space.pool) <= space.budget + 1e-9
                && candidate.count(space.pool.base_index()) >= 1
            {
                return candidate;
            }
        }
        current.clone()
    }
}

impl ConfigSearch for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn search(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut dyn FnMut(&Config) -> f64,
        max_evaluations: usize,
    ) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evaluator = PrunedEvaluator::new(evaluate);
        if space.is_empty() || max_evaluations == 0 {
            return outcome(evaluator);
        }
        let mut current = space.configs[rng.gen_range(0..space.configs.len())].clone();
        let mut current_value = evaluator.evaluate(&current);
        let mut temperature = self.initial_temperature;

        // Proposal cap: pruned proposals do not consume real evaluations, so a
        // walk that keeps revisiting dominated configurations must still stop.
        let max_proposals = max_evaluations.saturating_mul(50).max(1000);
        let mut proposals = 0usize;
        while evaluator.real_evaluations() < max_evaluations && proposals < max_proposals {
            proposals += 1;
            let candidate = self.neighbor(space, &current, &mut rng);
            let value = evaluator.evaluate(&candidate);
            let accept = value >= current_value
                || rng.gen::<f64>() < ((value - current_value) / temperature.max(1e-9)).exp();
            if accept {
                current = candidate;
                current_value = value;
            }
            temperature *= self.cooling;
        }
        outcome(evaluator)
    }
}

/// Genetic algorithm (GENE in Fig. 11).
#[derive(Debug, Clone, Copy)]
pub struct GeneticSearch {
    /// RNG seed.
    pub seed: u64,
    /// Population size per generation.
    pub population: usize,
    /// Per-dimension mutation probability.
    pub mutation_rate: f64,
}

impl Default for GeneticSearch {
    fn default() -> Self {
        Self {
            seed: 0,
            population: 12,
            mutation_rate: 0.25,
        }
    }
}

impl GeneticSearch {
    fn repair(space: &SearchSpace, mut counts: Vec<usize>, rng: &mut StdRng) -> Config {
        // Ensure at least one base instance, then drop random instances until
        // the budget is met.
        let base = space.pool.base_index();
        if counts[base] == 0 {
            counts[base] = 1;
        }
        loop {
            let config = Config::new(counts.clone());
            if config.cost(&space.pool) <= space.budget + 1e-9 {
                return config;
            }
            // Remove one instance from a random non-empty dimension (keeping
            // at least one base instance).
            let candidates: Vec<usize> = counts
                .iter()
                .enumerate()
                .filter(|&(i, &c)| c > usize::from(i == base))
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                return Config::new(counts);
            }
            let dim = candidates[rng.gen_range(0..candidates.len())];
            counts[dim] -= 1;
        }
    }
}

impl ConfigSearch for GeneticSearch {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn search(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut dyn FnMut(&Config) -> f64,
        max_evaluations: usize,
    ) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evaluator = PrunedEvaluator::new(evaluate);
        if space.is_empty() || max_evaluations == 0 {
            return outcome(evaluator);
        }

        // Initial population.
        let mut population: Vec<(Config, f64)> = Vec::new();
        for _ in 0..self.population.min(space.len()) {
            if evaluator.real_evaluations() >= max_evaluations {
                break;
            }
            let c = space.configs[rng.gen_range(0..space.configs.len())].clone();
            let v = evaluator.evaluate(&c);
            population.push((c, v));
        }

        // Proposal cap mirrors the simulated-annealing guard: children that are
        // answered from the pruning cache must not keep the loop alive forever.
        let max_proposals = max_evaluations.saturating_mul(50).max(1000);
        let mut proposals = 0usize;
        while evaluator.real_evaluations() < max_evaluations
            && population.len() >= 2
            && proposals < max_proposals
        {
            proposals += 1;
            // Tournament selection of two parents.
            let pick = |rng: &mut StdRng, pop: &[(Config, f64)]| -> Config {
                let a = &pop[rng.gen_range(0..pop.len())];
                let b = &pop[rng.gen_range(0..pop.len())];
                if a.1 >= b.1 {
                    a.0.clone()
                } else {
                    b.0.clone()
                }
            };
            let p1 = pick(&mut rng, &population);
            let p2 = pick(&mut rng, &population);

            // Uniform crossover + mutation.
            let mut counts: Vec<usize> = p1
                .counts()
                .iter()
                .zip(p2.counts())
                .map(|(&a, &b)| if rng.gen_bool(0.5) { a } else { b })
                .collect();
            for c in counts.iter_mut() {
                if rng.gen::<f64>() < self.mutation_rate {
                    if rng.gen_bool(0.5) {
                        *c += 1;
                    } else if *c > 0 {
                        *c -= 1;
                    }
                }
            }
            let child = Self::repair(space, counts, &mut rng);
            let value = evaluator.evaluate(&child);

            // Replace the worst member if the child improves on it.
            if let Some((worst_idx, _)) = population
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            {
                if value > population[worst_idx].1 {
                    population[worst_idx] = (child, value);
                }
            }
        }
        outcome(evaluator)
    }
}

/// Ribbon-style Bayesian optimization: a Gaussian-process surrogate with an
/// RBF kernel and the expected-improvement acquisition function.
#[derive(Debug, Clone, Copy)]
pub struct BayesianOptimization {
    /// RNG seed.
    pub seed: u64,
    /// Number of random configurations evaluated before the GP takes over.
    pub initial_samples: usize,
    /// RBF kernel length scale (in instance-count units).
    pub length_scale: f64,
    /// Observation noise variance.
    pub noise: f64,
}

impl Default for BayesianOptimization {
    fn default() -> Self {
        Self {
            seed: 0,
            initial_samples: 4,
            length_scale: 2.0,
            noise: 1e-4,
        }
    }
}

impl BayesianOptimization {
    fn to_vector(config: &Config) -> Vec<f64> {
        config.counts().iter().map(|&c| c as f64).collect()
    }

    fn kernel(&self, a: &[f64], b: &[f64], signal: f64) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        signal * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// Cholesky decomposition of a symmetric positive-definite matrix (row
    /// major, n x n).  Returns the lower-triangular factor.
    fn cholesky(mut a: Vec<f64>, n: usize) -> Option<Vec<f64>> {
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[i * n + j];
                for k in 0..j {
                    sum -= a[i * n + k] * a[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    a[i * n + j] = sum.sqrt();
                } else {
                    a[i * n + j] = sum / a[j * n + j];
                }
            }
            for j in (i + 1)..n {
                a[i * n + j] = 0.0;
            }
        }
        Some(a)
    }

    /// Solves `L L^T x = b` given the Cholesky factor `L`.
    fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back substitution: L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        x
    }

    /// Standard normal CDF via the Abramowitz–Stegun erf approximation.
    fn normal_cdf(z: f64) -> f64 {
        let t = 1.0 / (1.0 + 0.2316419 * z.abs());
        let poly = t
            * (0.319381530
                + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
        let pdf = (-z * z / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let cdf = 1.0 - pdf * poly;
        if z >= 0.0 {
            cdf
        } else {
            1.0 - cdf
        }
    }

    fn normal_pdf(z: f64) -> f64 {
        (-z * z / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
    }
}

impl ConfigSearch for BayesianOptimization {
    fn name(&self) -> &'static str {
        "bayesian-optimization"
    }

    fn search(
        &mut self,
        space: &SearchSpace,
        evaluate: &mut dyn FnMut(&Config) -> f64,
        max_evaluations: usize,
    ) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evaluator = PrunedEvaluator::new(evaluate);
        if space.is_empty() || max_evaluations == 0 {
            return outcome(evaluator);
        }

        // Initial random design.
        let mut order: Vec<usize> = (0..space.configs.len()).collect();
        order.shuffle(&mut rng);
        for &idx in order.iter().take(self.initial_samples.min(max_evaluations)) {
            evaluator.evaluate(&space.configs[idx]);
        }

        while evaluator.real_evaluations() < max_evaluations {
            let observed = evaluator.history().to_vec();
            let n = observed.len();
            let xs: Vec<Vec<f64>> = observed.iter().map(|(c, _)| Self::to_vector(c)).collect();
            let ys: Vec<f64> = observed.iter().map(|(_, v)| *v).collect();
            let y_mean = ys.iter().sum::<f64>() / n as f64;
            let y_var =
                (ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / n as f64).max(1e-6);
            let best_y = ys.iter().cloned().fold(f64::MIN, f64::max);

            // Gram matrix with noise on the diagonal.
            let mut gram = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    gram[i * n + j] = self.kernel(&xs[i], &xs[j], y_var);
                    if i == j {
                        gram[i * n + j] += self.noise * y_var + 1e-9;
                    }
                }
            }
            let Some(l) = Self::cholesky(gram, n) else {
                break;
            };
            let centered: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
            let alpha = Self::cholesky_solve(&l, n, &centered);

            // Expected improvement over every not-yet-evaluated configuration.
            let mut best_candidate: Option<(usize, f64)> = None;
            for (idx, candidate) in space.configs.iter().enumerate() {
                if evaluator.pruned_value(candidate).is_some() {
                    continue;
                }
                let x = Self::to_vector(candidate);
                let k_star: Vec<f64> = xs.iter().map(|xi| self.kernel(xi, &x, y_var)).collect();
                let mean = y_mean + k_star.iter().zip(&alpha).map(|(k, a)| k * a).sum::<f64>();
                let v = Self::cholesky_solve(&l, n, &k_star);
                let variance = (self.kernel(&x, &x, y_var)
                    - k_star.iter().zip(&v).map(|(k, vi)| k * vi).sum::<f64>())
                .max(1e-12);
                let sigma = variance.sqrt();
                let z = (mean - best_y) / sigma;
                let ei = (mean - best_y) * Self::normal_cdf(z) + sigma * Self::normal_pdf(z);
                match best_candidate {
                    None => best_candidate = Some((idx, ei)),
                    Some((_, best_ei)) if ei > best_ei => best_candidate = Some((idx, ei)),
                    _ => {}
                }
            }
            let Some((idx, _)) = best_candidate else {
                break;
            };
            evaluator.evaluate(&space.configs[idx]);
        }
        outcome(evaluator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::ec2;

    fn space() -> SearchSpace {
        SearchSpace::new(PoolSpec::new(ec2::figure1_pool()), 2.5)
    }

    /// Smooth synthetic objective with a unique optimum inside the space.
    fn objective(config: &Config) -> f64 {
        let c = config.counts();
        60.0 * c[0] as f64 + 25.0 * c[1] as f64 + 18.0 * c[2] as f64
            - 2.0 * (c[0] as f64 - 2.0).powi(2)
    }

    fn optimum(space: &SearchSpace) -> f64 {
        space.configs.iter().map(objective).fold(f64::MIN, f64::max)
    }

    #[test]
    fn space_enumeration_is_affordable_and_nonempty() {
        let s = space();
        assert!(!s.is_empty());
        assert!(s.configs.iter().all(|c| c.cost(&s.pool) <= 2.5 + 1e-9));
        assert!(s.contains(&Config::new(vec![4, 0, 0])));
    }

    #[test]
    fn exhaustive_finds_the_optimum() {
        let s = space();
        let mut eval = |c: &Config| objective(c);
        let out = ExhaustiveSearch.search(&s, &mut eval, usize::MAX);
        assert!((out.best.unwrap().1 - optimum(&s)).abs() < 1e-9);
    }

    #[test]
    fn pruning_reduces_exhaustive_evaluations() {
        let s = space();
        let mut eval = |c: &Config| objective(c);
        let out = ExhaustiveSearch.search(&s, &mut eval, usize::MAX);
        assert!(
            out.evaluations() < s.len(),
            "sub-configuration pruning should skip part of the space ({} of {})",
            out.evaluations(),
            s.len()
        );
    }

    #[test]
    fn random_search_respects_the_evaluation_cap() {
        let s = space();
        let mut eval = |c: &Config| objective(c);
        let out = RandomSearch { seed: 3 }.search(&s, &mut eval, 10);
        assert!(out.evaluations() <= 10);
        assert!(out.best.is_some());
    }

    #[test]
    fn annealing_improves_over_its_starting_point() {
        let s = space();
        let mut eval = |c: &Config| objective(c);
        let out = SimulatedAnnealing {
            seed: 7,
            ..Default::default()
        }
        .search(&s, &mut eval, 40);
        let first = out.history.first().unwrap().1;
        let best = out.best.as_ref().unwrap().1;
        assert!(best >= first);
    }

    #[test]
    fn genetic_search_stays_within_budget() {
        let s = space();
        let mut eval = |c: &Config| objective(c);
        let out = GeneticSearch {
            seed: 11,
            ..Default::default()
        }
        .search(&s, &mut eval, 30);
        for (c, _) in &out.history {
            assert!(c.cost(&s.pool) <= s.budget + 1e-9);
            assert!(c.count(s.pool.base_index()) >= 1);
        }
    }

    #[test]
    fn bayesian_optimization_reaches_near_optimum_with_few_evaluations() {
        let s = space();
        let mut eval = |c: &Config| objective(c);
        let out = BayesianOptimization {
            seed: 5,
            ..Default::default()
        }
        .search(&s, &mut eval, 25);
        let best = out.best.as_ref().unwrap().1;
        assert!(
            best >= 0.95 * optimum(&s),
            "BO best {best} too far from optimum {}",
            optimum(&s)
        );
        assert!(out.evaluations() <= 25);
    }

    #[test]
    fn evaluations_to_reach_counts_correctly() {
        let s = space();
        let mut eval = |c: &Config| objective(c);
        let out = ExhaustiveSearch.search(&s, &mut eval, usize::MAX);
        let target = optimum(&s);
        let k = out.evaluations_to_reach(target).unwrap();
        assert!(k >= 1 && k <= out.evaluations());
        assert!(out.evaluations_to_reach(target + 1.0).is_none());
    }

    #[test]
    fn normal_cdf_is_sane() {
        assert!((BayesianOptimization::normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(BayesianOptimization::normal_cdf(3.0) > 0.99);
        assert!(BayesianOptimization::normal_cdf(-3.0) < 0.01);
    }
}

//! # kairos-baselines
//!
//! The competing schemes the Kairos paper (HPDC'23) evaluates against,
//! re-implemented on top of the same simulator substrate:
//!
//! * **Query distribution** ([`schedulers`]): Ribbon's FCFS-prefer-base
//!   policy, the DeepRecSys batch-size-threshold policy (with its
//!   hill-climbing threshold tuner) and a Clockwork-inspired QoS-aware
//!   controller with per-instance queues.
//! * **Oracle** ([`oracle`]): the infeasible reference scheme that knows the
//!   whole query sequence in advance (ORCL in the figures).
//! * **Configuration search** ([`search`]): exhaustive, random, simulated
//!   annealing, genetic and Ribbon's Bayesian-optimization searches over the
//!   affordable configuration space, all sharing Kairos+'s sub-configuration
//!   pruning advantage as in the paper's Fig. 11 setup.
//! * **Online adaptation** ([`autoscale`]): static overprovisioning and an
//!   HPA-style reactive homogeneous autoscaler, the reference points for the
//!   controller-in-the-loop serving system.

#![warn(missing_docs)]

pub mod autoscale;
pub mod oracle;
pub mod schedulers;
pub mod search;

pub use autoscale::{
    static_overprovision, AutoscaleOutcome, AutoscalerOptions, ReactiveAutoscaler,
};
pub use oracle::{best_oracle_throughput, oracle_throughput};
pub use schedulers::{tune_drs_threshold, ClockworkScheduler, DrsScheduler, RibbonScheduler};
pub use search::{
    BayesianOptimization, ConfigSearch, ExhaustiveSearch, GeneticSearch, PrunedEvaluator,
    RandomSearch, SearchOutcome, SearchSpace, SimulatedAnnealing,
};

//! Online-adaptation baselines: what operators deploy *without* Kairos.
//!
//! Two reference points for the controller-in-the-loop serving system
//! (`kairos_core::ServingSystem`):
//!
//! * **Static overprovisioning** ([`static_overprovision`]) — the classic
//!   answer to load shifts: buy `factor ×` the budget of homogeneous base
//!   capacity up front and never reconfigure.  Survives spikes up to the
//!   overprovisioning factor but pays for the peak around the clock.
//! * **Reactive homogeneous autoscaling** ([`ReactiveAutoscaler`]) — an
//!   HPA-style controller that watches the average backlog per instance and
//!   adds/removes *base-type* instances one at a time with a cooldown.  It
//!   adapts, but knows nothing about heterogeneity or batch mixes, and its
//!   one-step-at-a-time reaction is slow against a sharp step change.
//!
//! Both run against the same [`SimEngine`] substrate and reconfiguration API
//! as Kairos, so the comparison isolates the decision policy.

use kairos_models::{Config, FailureDomain, FaultProcess, Market, PoolSpec};
use kairos_sim::{FcfsScheduler, ServiceSpec, SimEngine, SimReport, SimulationOptions};
use kairos_workload::{ModelId, TimeUs, Trace};

/// The static-overprovision configuration: the best homogeneous base-type
/// cluster affordable at `factor ×` the nominal budget.
///
/// # Panics
/// Panics if the inflated budget cannot afford a single base instance.
pub fn static_overprovision(pool: &PoolSpec, budget_per_hour: f64, factor: f64) -> Config {
    assert!(factor >= 1.0, "overprovision factor must be at least 1");
    let config = kairos_models::best_homogeneous(pool, budget_per_hour * factor);
    assert!(
        config.total_instances() >= 1,
        "budget {budget_per_hour} x {factor} affords no base instance"
    );
    config
}

/// Tunables of the reactive homogeneous autoscaler.
#[derive(Debug, Clone, Copy)]
pub struct AutoscalerOptions {
    /// Scale out when the mean backlog per active instance exceeds this.
    pub scale_out_backlog: f64,
    /// Scale in when the mean backlog per active instance falls below this.
    pub scale_in_backlog: f64,
    /// Minimum time between scaling actions.
    pub cooldown_us: TimeUs,
    /// Provisioning delay of added instances.
    pub provisioning_delay_us: TimeUs,
    /// Hard cap on concurrently active instances.
    pub max_instances: usize,
    /// Never scale below this many active instances.
    pub min_instances: usize,
    /// Pool type index the scaler buys (`None` = the pool's base type).
    /// Pointing it at a spot offering of a market-lowered catalog pool
    /// yields the classic naive-cheap baseline: always buy the discount,
    /// rebuy reactively after every preemption storm.
    pub scale_type: Option<usize>,
    /// Engine noise seed.
    pub seed: u64,
}

impl Default for AutoscalerOptions {
    fn default() -> Self {
        Self {
            scale_out_backlog: 2.0,
            scale_in_backlog: 0.25,
            cooldown_us: 1_000_000,
            provisioning_delay_us: 500_000,
            max_instances: 32,
            min_instances: 1,
            scale_type: None,
            seed: 0,
        }
    }
}

/// Outcome of a reactive-autoscaler run.
#[derive(Debug, Clone)]
pub struct AutoscaleOutcome {
    /// Per-query simulation report.
    pub report: SimReport,
    /// `(time, +1)` for every scale-out and `(time, -1)` for every scale-in.
    pub actions: Vec<(TimeUs, i32)>,
    /// Number of active instances at the end of the run.
    pub final_instances: usize,
}

/// HPA-style reactive autoscaler over homogeneous base-type instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReactiveAutoscaler {
    /// The thresholds and delays of the scaling policy.
    pub options: AutoscalerOptions,
}

impl ReactiveAutoscaler {
    /// Creates an autoscaler with the given options.
    pub fn new(options: AutoscalerOptions) -> Self {
        Self { options }
    }

    /// Runs `trace` against `service`, starting from `initial_instances`
    /// base-type instances, scaling on the backlog signal after every event.
    pub fn run(
        &self,
        pool: &PoolSpec,
        initial_instances: usize,
        service: &ServiceSpec,
        trace: &Trace,
    ) -> AutoscaleOutcome {
        self.run_with_market(pool, initial_instances, service, trace, None)
    }

    /// [`Self::run`] against a live cloud market: instance-hours bill at the
    /// market's prices and the scaled type may be a preemptible offering —
    /// the scaler reacts to preemption storms the only way it knows how, by
    /// watching its backlog climb and re-buying.
    pub fn run_with_market(
        &self,
        pool: &PoolSpec,
        initial_instances: usize,
        service: &ServiceSpec,
        trace: &Trace,
        market: Option<&dyn Market>,
    ) -> AutoscaleOutcome {
        self.run_with_faults(pool, initial_instances, service, trace, market, None)
    }

    /// [`Self::run_with_market`] with a correlated-fault process attached:
    /// zone outages kill the scaler's instances, capacity shortages reject
    /// its purchases (it retries on its cooldown cadence — the reactive
    /// baseline knows no alternative offerings), and stragglers slow it
    /// down.  `faults` pairs the process with the per-type failure-domain
    /// table (empty table = every type in the global domain).
    pub fn run_with_faults(
        &self,
        pool: &PoolSpec,
        initial_instances: usize,
        service: &ServiceSpec,
        trace: &Trace,
        market: Option<&dyn Market>,
        faults: Option<(&FaultProcess, &[FailureDomain])>,
    ) -> AutoscaleOutcome {
        let opts = &self.options;
        assert!(
            (opts.min_instances..=opts.max_instances).contains(&initial_instances),
            "initial instance count outside [min, max]"
        );
        let scale_type = opts.scale_type.unwrap_or_else(|| pool.base_index());
        let mut counts = vec![0usize; pool.num_types()];
        counts[scale_type] = initial_instances;
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            pool,
            &Config::new(counts),
            service,
            trace,
            &mut scheduler,
            &SimulationOptions { seed: opts.seed },
        );
        if let Some(market) = market {
            engine = engine.with_market(market);
        }
        if let Some((process, placements)) = faults {
            engine = engine.with_faults(process, placements);
        }
        let fault_aware = faults.is_some();
        // Scale-out purchases that can be rejected (outage, shortage): a
        // rejection still burns the cooldown, so the scaler retries at its
        // own cadence rather than hammering the dead domain every event.
        let buy = |engine: &mut SimEngine<'_>,
                   actions: &mut Vec<(TimeUs, i32)>,
                   last_action_us: &mut Option<TimeUs>,
                   now: TimeUs| {
            let bought = if fault_aware {
                engine
                    .try_add_instance_for(ModelId::DEFAULT, scale_type, opts.provisioning_delay_us)
                    .is_ok()
            } else {
                engine.add_instance(scale_type, opts.provisioning_delay_us);
                true
            };
            if bought {
                actions.push((now, 1));
            }
            *last_action_us = Some(now);
        };

        let mut actions: Vec<(TimeUs, i32)> = Vec::new();
        let mut last_action_us: Option<TimeUs> = None;
        while engine.step_event().is_some() {
            let now = engine.now();
            if last_action_us.is_some_and(|t| now < t + opts.cooldown_us) {
                continue;
            }
            // Pressure signal: queries in the system (central + local) per
            // active instance.  One fold, no per-event allocation.
            let mut active_count = 0usize;
            let mut in_system = engine.central_queue().len();
            let mut victim: Option<(usize, usize)> = None; // (backlog, index)
            for inst in engine.cluster().instances() {
                if !inst.accepts_dispatches() {
                    continue;
                }
                active_count += 1;
                let backlog = inst.backlog();
                in_system += backlog;
                // Emptiest instance, ties to the newest.
                if victim.is_none_or(|(b, i)| backlog < b || (backlog == b && inst.index > i)) {
                    victim = Some((backlog, inst.index));
                }
            }
            if active_count == 0 {
                // A preemption storm can wipe the whole fleet; the only
                // recovery signal left is "nothing is serving" — rebuy.
                if in_system > 0 {
                    buy(&mut engine, &mut actions, &mut last_action_us, now);
                }
                continue;
            }
            let mean_backlog = in_system as f64 / active_count as f64;

            if mean_backlog > opts.scale_out_backlog && active_count < opts.max_instances {
                buy(&mut engine, &mut actions, &mut last_action_us, now);
            } else if mean_backlog < opts.scale_in_backlog && active_count > opts.min_instances {
                let (_, victim) = victim.expect("non-empty active set");
                engine.retire_instance(victim);
                actions.push((now, -1));
                last_action_us = Some(now);
            }
        }

        let final_instances = engine
            .cluster()
            .instances()
            .iter()
            .filter(|i| i.accepts_dispatches())
            .count();
        AutoscaleOutcome {
            report: engine.report(),
            actions,
            final_instances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2, ModelKind};
    use kairos_workload::{BatchSizeDistribution, PhasedArrival};

    fn setup() -> (PoolSpec, ServiceSpec) {
        (
            PoolSpec::new(ec2::paper_pool()),
            ServiceSpec::new(ModelKind::Wnd, paper_calibration()),
        )
    }

    #[test]
    fn static_overprovision_is_homogeneous_and_scales_with_factor() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let base = static_overprovision(&pool, 2.5, 1.0);
        let doubled = static_overprovision(&pool, 2.5, 2.0);
        assert!(base.is_homogeneous(&pool));
        assert!(doubled.total_instances() >= 2 * base.total_instances());
        assert!(doubled.cost(&pool) <= 5.0 + 1e-9);
    }

    #[test]
    fn autoscaler_scales_out_under_a_step_change() {
        let (pool, service) = setup();
        let workload = PhasedArrival::step_change(
            40.0,
            400.0,
            BatchSizeDistribution::production_default(),
            2.0,
            4.0,
            31,
        );
        let scaler = ReactiveAutoscaler::new(AutoscalerOptions {
            cooldown_us: 300_000,
            provisioning_delay_us: 200_000,
            ..Default::default()
        });
        let outcome = scaler.run(&pool, 1, &service, &workload.generate());
        let outs = outcome.actions.iter().filter(|(_, d)| *d > 0).count();
        assert!(outs >= 2, "step change must add instances: {outs}");
        assert!(outcome.final_instances > 1);
        // All queries accounted for despite the churn.
        assert_eq!(
            outcome.report.completed() + outcome.report.unfinished.len(),
            outcome.report.offered
        );
    }

    #[test]
    fn autoscaler_scales_back_in_when_load_drops() {
        let (pool, service) = setup();
        let workload = PhasedArrival::step_change(
            300.0,
            10.0,
            BatchSizeDistribution::production_default(),
            2.0,
            6.0,
            37,
        );
        let scaler = ReactiveAutoscaler::new(AutoscalerOptions {
            cooldown_us: 300_000,
            provisioning_delay_us: 100_000,
            ..Default::default()
        });
        let outcome = scaler.run(&pool, 6, &service, &workload.generate());
        let ins = outcome.actions.iter().filter(|(_, d)| *d < 0).count();
        assert!(ins >= 1, "load drop must remove instances");
        assert!(outcome.final_instances < 6);
    }

    #[test]
    fn autoscaler_respects_bounds_and_cooldown() {
        let (pool, service) = setup();
        let workload = PhasedArrival::step_change(
            30.0,
            2000.0,
            BatchSizeDistribution::production_default(),
            1.0,
            2.0,
            5,
        );
        let scaler = ReactiveAutoscaler::new(AutoscalerOptions {
            max_instances: 3,
            cooldown_us: 500_000,
            ..Default::default()
        });
        let outcome = scaler.run(&pool, 1, &service, &workload.generate());
        assert!(outcome.final_instances <= 3);
        // Actions are at least a cooldown apart.
        for w in outcome.actions.windows(2) {
            assert!(w[1].0 >= w[0].0 + 500_000, "cooldown violated: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn overprovision_rejects_deflation() {
        static_overprovision(&PoolSpec::new(ec2::paper_pool()), 2.5, 0.5);
    }

    #[test]
    fn autoscaler_rebuys_after_an_outage_and_rides_out_shortages() {
        use kairos_models::FaultEvent;
        let (pool, service) = setup();
        let workload = PhasedArrival::step_change(
            120.0,
            120.0,
            BatchSizeDistribution::production_default(),
            4.0,
            4.0,
            11,
        );
        // The global outage wipes the whole (default-placed) fleet; a
        // capacity shortage right behind it rejects the first rebuys.
        let process = FaultProcess::new(vec![
            FaultEvent::ZoneOutage {
                domain: FailureDomain::global(),
                start_us: 2_000_000,
                duration_us: 1_000_000,
            },
            FaultEvent::CapacityShortage {
                domain: FailureDomain::global(),
                start_us: 2_000_000,
                end_us: 3_500_000,
            },
        ]);
        let scaler = ReactiveAutoscaler::new(AutoscalerOptions {
            cooldown_us: 300_000,
            provisioning_delay_us: 100_000,
            ..Default::default()
        });
        let outcome = scaler.run_with_faults(
            &pool,
            2,
            &service,
            &workload.generate(),
            None,
            Some((&process, &[])),
        );
        assert_eq!(outcome.report.outages.len(), 1);
        assert!(outcome.report.outages[0].killed_instances >= 1);
        assert!(
            outcome.report.rejected_purchases >= 1,
            "the shortage must reject at least one reactive rebuy"
        );
        // Recovery: the scaler is serving again by the end of the run.
        assert!(outcome.final_instances >= 1);
        assert_eq!(
            outcome.report.completed() + outcome.report.unfinished.len(),
            outcome.report.offered
        );
    }
}

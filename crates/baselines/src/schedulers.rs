//! Competing query-distribution schemes (paper Sec. 7, "Competing query
//! distribution techniques").
//!
//! * [`RibbonScheduler`] — Ribbon's simple policy: first-come-first-serve,
//!   preferring idle base-type instances.
//! * [`DrsScheduler`] — the DeepRecSys policy: a static batch-size threshold
//!   decides whether a query runs on the base (GPU) or an auxiliary (CPU)
//!   instance; the threshold is tuned offline by a hill-climbing sweep
//!   ([`tune_drs_threshold`]).
//! * [`ClockworkScheduler`] — a Clockwork-inspired QoS-aware controller: it
//!   predicts query latency accurately, tracks every instance's availability,
//!   and sends each query to the instance that finishes it earliest *without*
//!   violating QoS (falling back to earliest-completion when no instance can
//!   meet the target).  Each instance keeps its own FCFS queue.

use kairos_models::{latency::LatencyTable, mlmodel::ModelKind};
use kairos_sim::{Dispatch, FcfsScheduler, Scheduler, SchedulingContext};

/// Ribbon's query distribution: FCFS preferring base instances.
///
/// This is behaviourally identical to the simulator's naive FCFS policy; the
/// wrapper exists so reports and figures carry the scheme's name.
#[derive(Debug, Default, Clone, Copy)]
pub struct RibbonScheduler {
    inner: FcfsScheduler,
}

impl RibbonScheduler {
    /// Creates the Ribbon policy.
    pub fn new() -> Self {
        Self {
            inner: FcfsScheduler::new(),
        }
    }
}

impl Scheduler for RibbonScheduler {
    fn name(&self) -> &'static str {
        "ribbon"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        self.inner.schedule(ctx)
    }
}

/// DeepRecSys-style threshold scheduler.
///
/// Queries with a batch size strictly greater than the threshold wait for a
/// base (GPU) instance; queries at or below the threshold wait for an
/// auxiliary (CPU) instance.  Queries are only dispatched to *idle* instances
/// of the appropriate class, in FCFS order within each class.
#[derive(Debug, Clone, Copy)]
pub struct DrsScheduler {
    /// Batch-size threshold separating GPU-bound from CPU-bound queries.
    pub threshold: u32,
}

impl DrsScheduler {
    /// Creates the policy with a given threshold.
    pub fn new(threshold: u32) -> Self {
        Self { threshold }
    }
}

impl Scheduler for DrsScheduler {
    fn name(&self) -> &'static str {
        "drs"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        let mut idle_base: Vec<usize> = ctx
            .instances
            .iter()
            .filter(|i| i.is_base && i.is_idle(ctx.now_us))
            .map(|i| i.instance_index)
            .collect();
        let mut idle_aux: Vec<usize> = ctx
            .instances
            .iter()
            .filter(|i| !i.is_base && i.is_idle(ctx.now_us))
            .map(|i| i.instance_index)
            .collect();
        // Keep deterministic ordering.
        idle_base.sort_unstable();
        idle_aux.sort_unstable();
        idle_base.reverse();
        idle_aux.reverse();

        let mut plan = Vec::new();
        for (query_index, query) in ctx.queued.iter().enumerate() {
            let target = if query.batch_size > self.threshold {
                idle_base.pop()
            } else {
                // Small queries prefer auxiliary instances, but may borrow an
                // idle base instance when no auxiliary exists in the pool at
                // all (otherwise a homogeneous pool could never serve them).
                idle_aux.pop().or_else(|| {
                    if ctx.instances.iter().all(|i| i.is_base) {
                        idle_base.pop()
                    } else {
                        None
                    }
                })
            };
            if let Some(instance_index) = target {
                plan.push(Dispatch {
                    query_index,
                    instance_index,
                });
            }
        }
        plan
    }
}

/// Hill-climbing sweep used by DeepRecSys to tune the threshold: evaluate a
/// coarse grid of thresholds with the provided objective (higher is better)
/// and then climb in steps until no neighbour improves.  Returns the best
/// threshold and the number of objective evaluations spent.
pub fn tune_drs_threshold<F>(mut objective: F, max_batch: u32) -> (u32, usize)
where
    F: FnMut(u32) -> f64,
{
    assert!(max_batch >= 1, "max batch must be positive");
    let step = (max_batch / 10).max(1);
    let mut evaluations = 0usize;
    let mut best_threshold = step;
    let mut best_value = f64::NEG_INFINITY;

    // Coarse grid.
    let mut t = step;
    while t <= max_batch {
        let v = objective(t);
        evaluations += 1;
        if v > best_value {
            best_value = v;
            best_threshold = t;
        }
        t += step;
    }

    // Local climb with progressively smaller steps.
    let mut delta = step / 2;
    while delta >= 1 {
        let mut improved = true;
        while improved {
            improved = false;
            for candidate in [
                best_threshold.saturating_sub(delta).max(1),
                best_threshold + delta,
            ] {
                if candidate == best_threshold || candidate > max_batch {
                    continue;
                }
                let v = objective(candidate);
                evaluations += 1;
                if v > best_value {
                    best_value = v;
                    best_threshold = candidate;
                    improved = true;
                }
            }
        }
        if delta == 1 {
            break;
        }
        delta /= 2;
    }

    (best_threshold, evaluations)
}

/// Clockwork-inspired QoS-aware controller with per-instance queues and
/// accurate latency prediction.
#[derive(Debug, Clone)]
pub struct ClockworkScheduler {
    model: ModelKind,
    latency: LatencyTable,
}

impl ClockworkScheduler {
    /// Creates the policy.  Clockwork's defining feature is *predictable*
    /// latency, so the scheme is given the ground-truth latency table (the
    /// paper likewise implements the competing schemes advantageously).
    pub fn new(model: ModelKind, latency: LatencyTable) -> Self {
        Self { model, latency }
    }

    fn predicted_ms(&self, type_name: &str, batch: u32) -> f64 {
        self.latency.expect(self.model, type_name).latency_ms(batch)
    }
}

impl Scheduler for ClockworkScheduler {
    fn name(&self) -> &'static str {
        "clockwork"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        // Clockwork assigns every incoming query to an instance queue right
        // away, choosing the instance that completes it earliest subject to
        // the QoS target.  We track the extra backlog added by this round so
        // consecutive picks in the same round account for each other.
        let qos_ms = ctx.qos_us as f64 / 1000.0;
        let mut extra_ms = vec![0.0f64; ctx.instances.len()];
        let mut plan = Vec::new();

        for (query_index, query) in ctx.queued.iter().enumerate() {
            let waited_ms = query.waiting_time_us(ctx.now_us) as f64 / 1000.0;
            let mut best: Option<(usize, f64, bool)> = None; // (slot, completion, meets_qos)
            for (slot, inst) in ctx.instances.iter().enumerate() {
                if !inst.accepting {
                    continue;
                }
                let queue_ms = inst.remaining_us(ctx.now_us) as f64 / 1000.0 + extra_ms[slot];
                let completion = queue_ms + self.predicted_ms(&inst.type_name, query.batch_size);
                let meets = completion + waited_ms <= qos_ms;
                let better = match best {
                    None => true,
                    Some((_, best_completion, best_meets)) => {
                        // Prefer QoS-meeting instances; among equals, earliest
                        // completion wins.
                        (meets && !best_meets)
                            || (meets == best_meets && completion < best_completion)
                    }
                };
                if better {
                    best = Some((slot, completion, meets));
                }
            }
            if let Some((slot, completion, _)) = best {
                extra_ms[slot] += completion
                    - (ctx.instances[slot].remaining_us(ctx.now_us) as f64 / 1000.0
                        + extra_ms[slot]);
                plan.push(Dispatch {
                    query_index,
                    instance_index: ctx.instances[slot].instance_index,
                });
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::calibration::paper_calibration;
    use kairos_sim::InstanceView;
    use kairos_workload::Query;

    fn view(idx: usize, name: &str, is_base: bool, free_at: u64) -> InstanceView {
        InstanceView {
            instance_index: idx,
            type_index: usize::from(!is_base),
            type_name: name.into(),
            is_base,
            accepting: true,
            free_at_us: free_at,
            backlog: usize::from(free_at > 0),
        }
    }

    #[test]
    fn ribbon_behaves_like_fcfs_with_base_preference() {
        let queued = vec![Query::new(0, 100, 0)];
        let instances = vec![
            view(0, "r5n.large", false, 0),
            view(1, "g4dn.xlarge", true, 0),
        ];
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            qos_us: 25_000,
        };
        let plan = RibbonScheduler::new().schedule(&ctx);
        assert_eq!(
            plan,
            vec![Dispatch {
                query_index: 0,
                instance_index: 1
            }]
        );
    }

    #[test]
    fn drs_routes_by_threshold() {
        let queued = vec![Query::new(0, 500, 0), Query::new(1, 50, 0)];
        let instances = vec![
            view(0, "g4dn.xlarge", true, 0),
            view(1, "r5n.large", false, 0),
        ];
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            qos_us: 25_000,
        };
        let plan = DrsScheduler::new(128).schedule(&ctx);
        assert!(plan.contains(&Dispatch {
            query_index: 0,
            instance_index: 0
        }));
        assert!(plan.contains(&Dispatch {
            query_index: 1,
            instance_index: 1
        }));
    }

    #[test]
    fn drs_leaves_queries_waiting_when_their_class_is_busy() {
        let queued = vec![Query::new(0, 500, 0)];
        // Only an auxiliary instance is idle; the large query must wait for a GPU.
        let instances = vec![
            view(0, "g4dn.xlarge", true, 10_000),
            view(1, "r5n.large", false, 0),
        ];
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            qos_us: 25_000,
        };
        assert!(DrsScheduler::new(128).schedule(&ctx).is_empty());
    }

    #[test]
    fn drs_small_queries_use_base_in_homogeneous_pools() {
        let queued = vec![Query::new(0, 10, 0)];
        let instances = vec![view(0, "g4dn.xlarge", true, 0)];
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            qos_us: 25_000,
        };
        assert_eq!(DrsScheduler::new(128).schedule(&ctx).len(), 1);
    }

    #[test]
    fn hill_climbing_finds_the_peak_of_a_unimodal_objective() {
        // Objective peaks at threshold 310.
        let objective = |t: u32| -((t as f64 - 310.0).powi(2));
        let (best, evals) = tune_drs_threshold(objective, 1000);
        assert!((best as i64 - 310).abs() <= 2, "best {best}");
        assert!(evals > 0 && evals < 200);
    }

    #[test]
    fn clockwork_prefers_qos_meeting_instance_even_if_slower_to_free() {
        let cw = ClockworkScheduler::new(ModelKind::Wnd, paper_calibration());
        let queued = vec![Query::new(0, 800, 0)];
        // The CPU is idle but cannot meet QoS for a batch-800 WND query; the
        // GPU is busy for 4 ms but still meets the 25 ms target.
        let instances = vec![
            view(0, "r5n.large", false, 0),
            view(1, "g4dn.xlarge", true, 4_000),
        ];
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            qos_us: 25_000,
        };
        let plan = cw.clone().schedule(&ctx);
        assert_eq!(
            plan,
            vec![Dispatch {
                query_index: 0,
                instance_index: 1
            }]
        );
    }

    #[test]
    fn clockwork_spreads_queries_across_instance_queues() {
        let cw = ClockworkScheduler::new(ModelKind::Wnd, paper_calibration());
        let queued = vec![Query::new(0, 100, 0), Query::new(1, 100, 0)];
        let instances = vec![
            view(0, "g4dn.xlarge", true, 0),
            view(1, "c5n.2xlarge", false, 0),
        ];
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            qos_us: 25_000,
        };
        let plan = cw.clone().schedule(&ctx);
        assert_eq!(plan.len(), 2);
        // The two queries must not pile onto the same instance when both
        // instances can meet QoS and the second would finish earlier elsewhere.
        assert_ne!(plan[0].instance_index, plan[1].instance_index);
    }

    #[test]
    fn clockwork_falls_back_to_earliest_completion_when_qos_is_impossible() {
        let cw = ClockworkScheduler::new(ModelKind::Ncf, paper_calibration());
        // Batch 900 NCF cannot meet 5 ms anywhere once instances are backed up.
        let queued = vec![Query::new(0, 900, 0)];
        let instances = vec![
            view(0, "g4dn.xlarge", true, 50_000),
            view(1, "r5n.large", false, 40_000),
        ];
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            qos_us: 5_000,
        };
        let plan = cw.clone().schedule(&ctx);
        assert_eq!(plan.len(), 1);
        // GPU: 50 ms queue + 3.05 ms service = 53.05; CPU: 40 + 17.1 = 57.1.
        assert_eq!(plan[0].instance_index, 0);
    }
}

//! Competing query-distribution schemes (paper Sec. 7, "Competing query
//! distribution techniques").
//!
//! * [`RibbonScheduler`] — Ribbon's simple policy: first-come-first-serve,
//!   preferring idle base-type instances.
//! * [`DrsScheduler`] — the DeepRecSys policy: a static batch-size threshold
//!   decides whether a query runs on the base (GPU) or an auxiliary (CPU)
//!   instance; the threshold is tuned offline by a hill-climbing sweep
//!   ([`tune_drs_threshold`]).
//! * [`ClockworkScheduler`] — a Clockwork-inspired QoS-aware controller: it
//!   predicts query latency accurately, tracks every instance's availability,
//!   and sends each query to the instance that finishes it earliest *without*
//!   violating QoS (falling back to earliest-completion when no instance can
//!   meet the target).  Each instance keeps its own FCFS queue.
//!
//! All three implement the scratch-aware [`Scheduler::schedule_into`] hot
//! path: dispatch decisions are written into the engine's reusable buffer,
//! per-round working sets live in scheduler-owned scratch vectors, and
//! latency predictions resolve through per-type-index profile caches — so a
//! steady-state scheduling round performs no allocation and no string
//! hashing.

use kairos_models::{
    latency::{LatencyProfile, LatencyTable},
    mlmodel::ModelKind,
};
use kairos_sim::{Dispatch, FcfsScheduler, Scheduler, SchedulingContext};
use std::sync::Arc;

/// Ribbon's query distribution: FCFS preferring base instances.
///
/// This is behaviourally identical to the simulator's naive FCFS policy; the
/// wrapper exists so reports and figures carry the scheme's name.
#[derive(Debug, Default, Clone)]
pub struct RibbonScheduler {
    inner: FcfsScheduler,
}

impl RibbonScheduler {
    /// Creates the Ribbon policy.
    pub fn new() -> Self {
        Self {
            inner: FcfsScheduler::new(),
        }
    }
}

impl Scheduler for RibbonScheduler {
    fn name(&self) -> &'static str {
        "ribbon"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        self.inner.schedule(ctx)
    }

    fn schedule_into(&mut self, ctx: &SchedulingContext<'_>, out: &mut Vec<Dispatch>) {
        self.inner.schedule_into(ctx, out);
    }
}

/// DeepRecSys-style threshold scheduler.
///
/// Queries with a batch size strictly greater than the threshold wait for a
/// base (GPU) instance; queries at or below the threshold wait for an
/// auxiliary (CPU) instance.  Queries are only dispatched to *idle* instances
/// of the appropriate class, in FCFS order within each class.
#[derive(Debug, Clone, Default)]
pub struct DrsScheduler {
    /// Batch-size threshold separating GPU-bound from CPU-bound queries.
    pub threshold: u32,
    /// Reusable per-round scratch: idle base / auxiliary instances.
    idle_base: Vec<u32>,
    idle_aux: Vec<u32>,
}

impl DrsScheduler {
    /// Creates the policy with a given threshold.
    pub fn new(threshold: u32) -> Self {
        Self {
            threshold,
            ..Self::default()
        }
    }
}

impl Scheduler for DrsScheduler {
    fn name(&self) -> &'static str {
        "drs"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        let mut out = Vec::new();
        self.schedule_into(ctx, &mut out);
        out
    }

    fn schedule_into(&mut self, ctx: &SchedulingContext<'_>, out: &mut Vec<Dispatch>) {
        // The idle index is sorted by instance index within the usable
        // prefix, so each class list comes out in deterministic FCFS order.
        self.idle_base.clear();
        self.idle_aux.clear();
        for &i in ctx.idle_now() {
            if ctx.instances[i as usize].is_base {
                self.idle_base.push(i);
            } else {
                self.idle_aux.push(i);
            }
        }
        // Only consulted when the auxiliary list runs dry with a small query
        // waiting, so resolve it lazily instead of scanning every round.
        let mut homogeneous: Option<bool> = None;

        let mut next_base = 0usize;
        let mut next_aux = 0usize;
        for (query_index, query) in ctx.queued.iter().enumerate() {
            let target = if query.batch_size > self.threshold {
                let slot = self.idle_base.get(next_base).copied();
                if slot.is_some() {
                    next_base += 1;
                }
                slot
            } else {
                // Small queries prefer auxiliary instances, but may borrow an
                // idle base instance when no auxiliary exists in the pool at
                // all (otherwise a homogeneous pool could never serve them).
                match self.idle_aux.get(next_aux).copied() {
                    Some(slot) => {
                        next_aux += 1;
                        Some(slot)
                    }
                    None => {
                        let all_base = *homogeneous
                            .get_or_insert_with(|| ctx.instances.iter().all(|i| i.is_base));
                        if all_base {
                            let slot = self.idle_base.get(next_base).copied();
                            if slot.is_some() {
                                next_base += 1;
                            }
                            slot
                        } else {
                            None
                        }
                    }
                }
            };
            if let Some(instance_index) = target {
                out.push(Dispatch {
                    query_index,
                    instance_index: instance_index as usize,
                });
            }
        }
    }
}

/// Hill-climbing sweep used by DeepRecSys to tune the threshold: evaluate a
/// coarse grid of thresholds with the provided objective (higher is better)
/// and then climb in steps until no neighbour improves.  Returns the best
/// threshold and the number of objective evaluations spent.
pub fn tune_drs_threshold<F>(mut objective: F, max_batch: u32) -> (u32, usize)
where
    F: FnMut(u32) -> f64,
{
    assert!(max_batch >= 1, "max batch must be positive");
    let step = (max_batch / 10).max(1);
    let mut evaluations = 0usize;
    let mut best_threshold = step;
    let mut best_value = f64::NEG_INFINITY;

    // Coarse grid.
    let mut t = step;
    while t <= max_batch {
        let v = objective(t);
        evaluations += 1;
        if v > best_value {
            best_value = v;
            best_threshold = t;
        }
        t += step;
    }

    // Local climb with progressively smaller steps.
    let mut delta = step / 2;
    while delta >= 1 {
        let mut improved = true;
        while improved {
            improved = false;
            for candidate in [
                best_threshold.saturating_sub(delta).max(1),
                best_threshold + delta,
            ] {
                if candidate == best_threshold || candidate > max_batch {
                    continue;
                }
                let v = objective(candidate);
                evaluations += 1;
                if v > best_value {
                    best_value = v;
                    best_threshold = candidate;
                    improved = true;
                }
            }
        }
        if delta == 1 {
            break;
        }
        delta /= 2;
    }

    (best_threshold, evaluations)
}

/// Clockwork-inspired QoS-aware controller with per-instance queues and
/// accurate latency prediction.
///
/// Multi-model aware: [`Scheduler::bind_models`] resolves one latency
/// profile per `(model, type)` pair up front (flattened, array-indexed), the
/// per-query QoS target comes from [`SchedulingContext::qos_for`], and
/// queries only consider instances hosting their model.  Constructed with a
/// single default model, so single-model runs (and hand-built contexts that
/// never call `bind_models`) behave exactly as before.
#[derive(Debug, Clone)]
pub struct ClockworkScheduler {
    /// Served models indexed by `ModelId` (the constructor's model alone
    /// until `bind_models` replaces the list).
    models: Vec<ModelKind>,
    latency: LatencyTable,
    /// Latency profiles resolved per `(model, pool type)` pair and flattened
    /// as `model × num_types + type` (via `bind_types` + `bind_models`), so
    /// per-pair predictions in the scheduling loop hash no strings.  Pairs
    /// never bound (hand-built contexts) resolve lazily by name.
    profiles: Vec<Option<LatencyProfile>>,
    /// Interned pool type names (the stride of `profiles` is their count).
    type_names: Vec<Arc<str>>,
    /// Reusable per-round backlog added by this round's earlier picks.
    extra_ms: Vec<f64>,
}

impl ClockworkScheduler {
    /// Creates the policy for one default model.  Clockwork's defining
    /// feature is *predictable* latency, so the scheme is given the
    /// ground-truth latency table (the paper likewise implements the
    /// competing schemes advantageously).
    pub fn new(model: ModelKind, latency: LatencyTable) -> Self {
        Self {
            models: vec![model],
            latency,
            profiles: Vec::new(),
            type_names: Vec::new(),
            extra_ms: Vec::new(),
        }
    }

    /// Re-resolves the `(model, type)` profile grid from the current model
    /// list and bound type names.
    fn rebind_profiles(&mut self) {
        let (models, type_names, latency) = (&self.models, &self.type_names, &self.latency);
        self.profiles = models
            .iter()
            .flat_map(|&model| type_names.iter().map(move |name| latency.get(model, name)))
            .collect();
    }

    fn profile(
        &mut self,
        model_index: usize,
        type_index: usize,
        type_name: &str,
    ) -> LatencyProfile {
        let slot = model_index * self.type_names.len().max(1) + type_index;
        if let Some(Some(profile)) = self.profiles.get(slot) {
            return *profile;
        }
        let model = self
            .models
            .get(model_index)
            .copied()
            .unwrap_or(self.models[0]);
        let profile = self.latency.expect(model, type_name);
        if self.profiles.len() <= slot {
            self.profiles.resize(slot + 1, None);
        }
        self.profiles[slot] = Some(profile);
        profile
    }

    fn predicted_ms(
        &mut self,
        model_index: usize,
        type_index: usize,
        type_name: &str,
        batch: u32,
    ) -> f64 {
        self.profile(model_index, type_index, type_name)
            .latency_ms(batch)
    }
}

impl Scheduler for ClockworkScheduler {
    fn name(&self) -> &'static str {
        "clockwork"
    }

    fn bind_types(&mut self, type_names: &[Arc<str>]) {
        // Resolve what the table covers; pairs it lacks stay lazy so a
        // partially calibrated table only panics if such a pair is actually
        // scheduled against (matching the pre-cache lookup-on-use behavior).
        self.type_names = type_names.to_vec();
        self.rebind_profiles();
    }

    fn bind_models(&mut self, models: &[ModelKind]) {
        self.models = models.to_vec();
        self.rebind_profiles();
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        let mut out = Vec::new();
        self.schedule_into(ctx, &mut out);
        out
    }

    fn schedule_into(&mut self, ctx: &SchedulingContext<'_>, out: &mut Vec<Dispatch>) {
        // Clockwork assigns every incoming query to an instance queue right
        // away, choosing the instance that completes it earliest subject to
        // the query model's QoS target.  We track the extra backlog added by
        // this round so consecutive picks in the same round account for each
        // other.
        self.extra_ms.clear();
        self.extra_ms.resize(ctx.instances.len(), 0.0);

        for (query_index, query) in ctx.queued.iter().enumerate() {
            let qos_ms = ctx.qos_for(query.model) as f64 / 1000.0;
            let waited_ms = query.waiting_time_us(ctx.now_us) as f64 / 1000.0;
            let mut best: Option<(usize, f64, bool)> = None; // (slot, completion, meets_qos)
            for (slot, inst) in ctx.instances.iter().enumerate() {
                if !inst.accepting || inst.model != query.model {
                    continue;
                }
                let queue_ms = inst.remaining_us(ctx.now_us) as f64 / 1000.0 + self.extra_ms[slot];
                let predicted = self.predicted_ms(
                    query.model.index(),
                    inst.type_index,
                    &inst.type_name,
                    query.batch_size,
                );
                let completion = queue_ms + predicted;
                let meets = completion + waited_ms <= qos_ms;
                let better = match best {
                    None => true,
                    Some((_, best_completion, best_meets)) => {
                        // Prefer QoS-meeting instances; among equals, earliest
                        // completion wins.
                        (meets && !best_meets)
                            || (meets == best_meets && completion < best_completion)
                    }
                };
                if better {
                    best = Some((slot, completion, meets));
                }
            }
            if let Some((slot, completion, _)) = best {
                self.extra_ms[slot] += completion
                    - (ctx.instances[slot].remaining_us(ctx.now_us) as f64 / 1000.0
                        + self.extra_ms[slot]);
                out.push(Dispatch {
                    query_index,
                    instance_index: ctx.instances[slot].instance_index,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::calibration::paper_calibration;
    use kairos_sim::{idle_order, InstanceView};
    use kairos_workload::ModelId;
    use kairos_workload::Query;

    fn view(idx: usize, name: &str, is_base: bool, free_at: u64) -> InstanceView {
        InstanceView {
            instance_index: idx,
            type_index: usize::from(!is_base),
            type_name: name.into(),
            model: ModelId::DEFAULT,
            is_base,
            accepting: true,
            free_at_us: free_at,
            backlog: usize::from(free_at > 0),
        }
    }

    #[test]
    fn ribbon_behaves_like_fcfs_with_base_preference() {
        let queued = vec![Query::new(0, 100, 0)];
        let instances = vec![
            view(0, "r5n.large", false, 0),
            view(1, "g4dn.xlarge", true, 0),
        ];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 25_000,
            qos_by_model: &[],
        };
        let plan = RibbonScheduler::new().schedule(&ctx);
        assert_eq!(
            plan,
            vec![Dispatch {
                query_index: 0,
                instance_index: 1
            }]
        );
    }

    #[test]
    fn drs_routes_by_threshold() {
        let queued = vec![Query::new(0, 500, 0), Query::new(1, 50, 0)];
        let instances = vec![
            view(0, "g4dn.xlarge", true, 0),
            view(1, "r5n.large", false, 0),
        ];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 25_000,
            qos_by_model: &[],
        };
        let plan = DrsScheduler::new(128).schedule(&ctx);
        assert!(plan.contains(&Dispatch {
            query_index: 0,
            instance_index: 0
        }));
        assert!(plan.contains(&Dispatch {
            query_index: 1,
            instance_index: 1
        }));
    }

    #[test]
    fn drs_leaves_queries_waiting_when_their_class_is_busy() {
        let queued = vec![Query::new(0, 500, 0)];
        // Only an auxiliary instance is idle; the large query must wait for a GPU.
        let instances = vec![
            view(0, "g4dn.xlarge", true, 10_000),
            view(1, "r5n.large", false, 0),
        ];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 25_000,
            qos_by_model: &[],
        };
        assert!(DrsScheduler::new(128).schedule(&ctx).is_empty());
    }

    #[test]
    fn drs_small_queries_use_base_in_homogeneous_pools() {
        let queued = vec![Query::new(0, 10, 0)];
        let instances = vec![view(0, "g4dn.xlarge", true, 0)];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 25_000,
            qos_by_model: &[],
        };
        assert_eq!(DrsScheduler::new(128).schedule(&ctx).len(), 1);
    }

    #[test]
    fn hill_climbing_finds_the_peak_of_a_unimodal_objective() {
        // Objective peaks at threshold 310.
        let objective = |t: u32| -((t as f64 - 310.0).powi(2));
        let (best, evals) = tune_drs_threshold(objective, 1000);
        assert!((best as i64 - 310).abs() <= 2, "best {best}");
        assert!(evals > 0 && evals < 200);
    }

    #[test]
    fn clockwork_prefers_qos_meeting_instance_even_if_slower_to_free() {
        let cw = ClockworkScheduler::new(ModelKind::Wnd, paper_calibration());
        let queued = vec![Query::new(0, 800, 0)];
        // The CPU is idle but cannot meet QoS for a batch-800 WND query; the
        // GPU is busy for 4 ms but still meets the 25 ms target.
        let instances = vec![
            view(0, "r5n.large", false, 0),
            view(1, "g4dn.xlarge", true, 4_000),
        ];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 25_000,
            qos_by_model: &[],
        };
        let plan = cw.clone().schedule(&ctx);
        assert_eq!(
            plan,
            vec![Dispatch {
                query_index: 0,
                instance_index: 1
            }]
        );
    }

    #[test]
    fn clockwork_spreads_queries_across_instance_queues() {
        let cw = ClockworkScheduler::new(ModelKind::Wnd, paper_calibration());
        let queued = vec![Query::new(0, 100, 0), Query::new(1, 100, 0)];
        let instances = vec![
            view(0, "g4dn.xlarge", true, 0),
            view(1, "c5n.2xlarge", false, 0),
        ];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 25_000,
            qos_by_model: &[],
        };
        let plan = cw.clone().schedule(&ctx);
        assert_eq!(plan.len(), 2);
        // The two queries must not pile onto the same instance when both
        // instances can meet QoS and the second would finish earlier elsewhere.
        assert_ne!(plan[0].instance_index, plan[1].instance_index);
    }

    #[test]
    fn clockwork_falls_back_to_earliest_completion_when_qos_is_impossible() {
        let cw = ClockworkScheduler::new(ModelKind::Ncf, paper_calibration());
        // Batch 900 NCF cannot meet 5 ms anywhere once instances are backed up.
        let queued = vec![Query::new(0, 900, 0)];
        let instances = vec![
            view(0, "g4dn.xlarge", true, 50_000),
            view(1, "r5n.large", false, 40_000),
        ];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 5_000,
            qos_by_model: &[],
        };
        let plan = cw.clone().schedule(&ctx);
        assert_eq!(plan.len(), 1);
        // GPU: 50 ms queue + 3.05 ms service = 53.05; CPU: 40 + 17.1 = 57.1.
        assert_eq!(plan[0].instance_index, 0);
    }
}

//! The Oracle (ORCL) reference scheme (paper Sec. 7).
//!
//! The oracle is "practically infeasible" — it knows the whole query sequence
//! in advance, sorts it by batch size, and keeps every instance busy with the
//! work it is best at: whenever a base instance frees up it takes the largest
//! remaining query, whenever an auxiliary instance frees up it takes the
//! smallest remaining query that it can serve within QoS.  There is no
//! queueing delay and no QoS violation, so the resulting rate is an upper
//! reference for every practical distribution scheme.

use kairos_models::{latency::LatencyTable, mlmodel::spec, mlmodel::ModelKind, Config, PoolSpec};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the oracle throughput (QPS) of one configuration over a sample of
/// query batch sizes.
///
/// The sample plays the role of the paper's "sequence of queries according to
/// batch size distribution"; the returned rate is the number of queries
/// divided by the virtual makespan of the oracle's schedule.
pub fn oracle_throughput(
    pool: &PoolSpec,
    config: &Config,
    model: ModelKind,
    latency: &LatencyTable,
    batch_sample: &[u32],
) -> f64 {
    assert!(!batch_sample.is_empty(), "batch sample must not be empty");
    assert_eq!(
        config.counts().len(),
        pool.num_types(),
        "config/pool mismatch"
    );
    let model_spec = spec(model);
    let qos_ms = model_spec.qos_ms;

    // Sorted query sizes; the base side consumes from the large end, the
    // auxiliary side from the small end.
    let mut sizes: Vec<u32> = batch_sample.to_vec();
    sizes.sort_unstable();
    let mut small = 0usize; // next index for auxiliary instances
    let mut large = sizes.len(); // one past the next index for base instances

    // Instance heap keyed by (free time in us, instance id).
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Slot(u64, usize);
    let mut heap: BinaryHeap<Reverse<Slot>> = BinaryHeap::new();
    let mut kinds: Vec<(bool, String, Option<u32>)> = Vec::new(); // (is_base, type name, aux cutoff)
    for (type_index, &count) in config.counts().iter().enumerate() {
        let ty = &pool.types()[type_index];
        let profile = latency.expect(model, &ty.name);
        let cutoff = profile.max_batch_within(qos_ms);
        for _ in 0..count {
            let id = kinds.len();
            kinds.push((ty.is_base, ty.name.clone(), cutoff));
            heap.push(Reverse(Slot(0, id)));
        }
    }
    if heap.is_empty() {
        return 0.0;
    }

    // If there is no base instance, queries beyond every auxiliary cutoff can
    // never be served within QoS, so the allowable throughput is zero as soon
    // as such a query exists (paper Sec. 4: a standalone auxiliary pool has
    // allowable throughput 0).
    let has_base = config
        .counts()
        .iter()
        .enumerate()
        .any(|(i, &c)| c > 0 && pool.types()[i].is_base);
    if !has_base {
        let max_cutoff = kinds.iter().filter_map(|(_, _, c)| *c).max().unwrap_or(0);
        if sizes.iter().any(|&b| b > max_cutoff) {
            return 0.0;
        }
    }

    let mut makespan_us = 0u64;
    while small < large {
        let Some(Reverse(Slot(free_at, id))) = heap.pop() else {
            break; // every remaining instance retired
        };
        let (is_base, ref name, cutoff) = kinds[id];
        let profile = latency.expect(model, name);

        let batch = if is_base {
            // Largest remaining query.
            large -= 1;
            sizes[large]
        } else {
            // Smallest remaining query, if this auxiliary type can serve it
            // within QoS; otherwise the instance retires.
            let candidate = sizes[small];
            match cutoff {
                Some(c) if candidate <= c => {
                    small += 1;
                    candidate
                }
                _ => continue, // retire this instance (do not push it back)
            }
        };

        let service_us = profile.latency_us(batch);
        let done = free_at + service_us;
        makespan_us = makespan_us.max(done);
        heap.push(Reverse(Slot(done, id)));
    }

    if small < large {
        // Queries remain but no instance can serve them (no base instances).
        return 0.0;
    }
    if makespan_us == 0 {
        return 0.0;
    }
    batch_sample.len() as f64 / (makespan_us as f64 / 1e6)
}

/// Oracle throughput maximized over a set of configurations (the paper uses
/// the best configuration found by oracle search as the reference).
///
/// Every candidate's oracle schedule is independent, so the grid is
/// evaluated as a rayon fan-out; the reduction keeps the original
/// first-wins tie-breaking by scanning the ordered results.
pub fn best_oracle_throughput(
    pool: &PoolSpec,
    configs: &[Config],
    model: ModelKind,
    latency: &LatencyTable,
    batch_sample: &[u32],
) -> (Option<Config>, f64) {
    let evaluated: Vec<f64> = configs
        .par_iter()
        .map(|c| oracle_throughput(pool, c, model, latency, batch_sample))
        .collect();
    let mut best: Option<(Config, f64)> = None;
    for (c, qps) in configs.iter().zip(evaluated) {
        match &best {
            None => best = Some((c.clone(), qps)),
            Some((_, b)) if qps > *b => best = Some((c.clone(), qps)),
            _ => {}
        }
    }
    match best {
        Some((c, q)) => (Some(c), q),
        None => (None, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2};

    fn pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    fn sample() -> Vec<u32> {
        // 70 % small, 30 % large queries.
        let mut s = Vec::new();
        for i in 0..700u32 {
            s.push(10 + i % 200);
        }
        for i in 0..300u32 {
            s.push(500 + i % 500);
        }
        s
    }

    #[test]
    fn more_instances_give_more_oracle_throughput() {
        let latency = paper_calibration();
        let one = oracle_throughput(
            &pool(),
            &Config::new(vec![1, 0, 0, 0]),
            ModelKind::Rm2,
            &latency,
            &sample(),
        );
        let two = oracle_throughput(
            &pool(),
            &Config::new(vec![2, 0, 0, 0]),
            ModelKind::Rm2,
            &latency,
            &sample(),
        );
        assert!(one > 0.0);
        assert!(two > one * 1.5);
    }

    #[test]
    fn heterogeneous_oracle_beats_homogeneous_at_equal_cost_for_rm2() {
        let latency = paper_calibration();
        let homo = oracle_throughput(
            &pool(),
            &Config::new(vec![4, 0, 0, 0]),
            ModelKind::Rm2,
            &latency,
            &sample(),
        );
        let hetero = oracle_throughput(
            &pool(),
            &Config::new(vec![3, 1, 3, 0]),
            ModelKind::Rm2,
            &latency,
            &sample(),
        );
        assert!(hetero > homo, "hetero {hetero} should beat homo {homo}");
    }

    #[test]
    fn auxiliary_only_pool_with_large_queries_has_zero_throughput() {
        let latency = paper_calibration();
        let qps = oracle_throughput(
            &pool(),
            &Config::new(vec![0, 0, 5, 0]),
            ModelKind::Wnd,
            &latency,
            &sample(),
        );
        assert_eq!(qps, 0.0);
    }

    #[test]
    fn empty_configuration_has_zero_throughput() {
        let latency = paper_calibration();
        let qps = oracle_throughput(
            &pool(),
            &Config::new(vec![0, 0, 0, 0]),
            ModelKind::Wnd,
            &latency,
            &sample(),
        );
        assert_eq!(qps, 0.0);
    }

    #[test]
    fn best_oracle_picks_the_maximum() {
        let latency = paper_calibration();
        let configs = vec![
            Config::new(vec![1, 0, 0, 0]),
            Config::new(vec![2, 0, 0, 0]),
            Config::new(vec![2, 0, 3, 0]),
        ];
        let (best, qps) =
            best_oracle_throughput(&pool(), &configs, ModelKind::Dien, &latency, &sample());
        assert!(qps > 0.0);
        let best = best.unwrap();
        for c in &configs {
            assert!(
                oracle_throughput(&pool(), c, ModelKind::Dien, &latency, &sample()) <= qps + 1e-9
            );
        }
        assert!(configs.contains(&best));
    }

    #[test]
    #[should_panic(expected = "batch sample")]
    fn empty_sample_rejected() {
        let latency = paper_calibration();
        oracle_throughput(
            &pool(),
            &Config::new(vec![1, 0, 0, 0]),
            ModelKind::Ncf,
            &latency,
            &[],
        );
    }
}

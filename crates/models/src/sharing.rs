//! Throughput-degradation curves for fair-sharing service models.
//!
//! The paper's serving model (Sec. 6) dedicates an instance to one query at
//! a time, so service latency is a pure function of the batch size.  Real
//! inference servers let several queries share an accelerator and degrade
//! per-query throughput as the sharer count grows — the throughput-sharing
//! abstraction of dslab-models (see PAPERS.md).  A [`ThroughputDegradation`]
//! curve describes that contention for one instance type: with `n` queries
//! in flight the instance delivers `total_multiplier(n)` times its
//! single-query throughput in aggregate, and each sharer progresses at
//! `per_sharer_rate(n) = total_multiplier(n) / n` of full speed.
//!
//! The simulator's fair-sharing engine only requires the *per-sharer* rate
//! to be non-increasing in `n` (adding a sharer never speeds up an
//! individual query); explicit tables are validated against that invariant
//! at construction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed construction error for throughput-degradation curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SharingError {
    /// A table had no entries.
    EmptyTable,
    /// A table multiplier was zero, negative, or not finite.
    InvalidMultiplier {
        /// Index of the offending entry (sharer count `index + 1`).
        index: usize,
    },
    /// The per-sharer rate `table[n-1] / n` increased between two adjacent
    /// sharer counts — adding a sharer must never speed up an individual
    /// query.
    IncreasingPerSharerRate {
        /// Index of the offending entry (sharer count `index + 1`).
        index: usize,
    },
    /// The linear contention coefficient was outside `[0, 1]` or not finite.
    InvalidContention {
        /// The offending coefficient.
        alpha: f64,
    },
}

impl fmt::Display for SharingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharingError::EmptyTable => write!(f, "degradation table has no entries"),
            SharingError::InvalidMultiplier { index } => {
                write!(
                    f,
                    "degradation multiplier must be finite and positive (entry {index})"
                )
            }
            SharingError::IncreasingPerSharerRate { index } => {
                write!(
                    f,
                    "per-sharer rate must be non-increasing in the sharer count (entry {index})"
                )
            }
            SharingError::InvalidContention { alpha } => {
                write!(
                    f,
                    "contention coefficient must be within [0, 1], got {alpha}"
                )
            }
        }
    }
}

impl std::error::Error for SharingError {}

/// How an instance's aggregate throughput scales with the number of queries
/// sharing it (see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ThroughputDegradation {
    /// Contention-free scaling: `n` sharers deliver `n`× aggregate
    /// throughput, so each query runs at full speed regardless of company.
    Ideal,
    /// Pure time-slicing: aggregate throughput stays at 1× no matter how
    /// many queries share the instance; each sharer runs at `1/n` speed.
    TimeSliced,
    /// A one-knob family between the two extremes:
    /// `total_multiplier(n) = n / (1 + alpha * (n - 1))`.  `alpha = 0` is
    /// [`Self::Ideal`], `alpha = 1` is [`Self::TimeSliced`]; intermediate
    /// values model partial contention (memory bandwidth, kernel-launch
    /// serialization).
    Linear {
        /// Contention coefficient in `[0, 1]`.
        alpha: f64,
    },
    /// An explicit measured table: entry `n - 1` is the aggregate multiplier
    /// at `n` sharers.  Sharer counts beyond the table clamp to the last
    /// entry (aggregate throughput stops growing; per-sharer rate keeps
    /// falling as `1/n`).  Build through [`Self::try_new_table`] so the
    /// per-sharer monotonicity invariant is checked.
    Table(Vec<f64>),
}

impl ThroughputDegradation {
    /// Builds a [`Self::Linear`] curve, validating the coefficient.
    pub fn try_new_linear(alpha: f64) -> Result<Self, SharingError> {
        if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
            return Err(SharingError::InvalidContention { alpha });
        }
        Ok(Self::Linear { alpha })
    }

    /// Builds a [`Self::Table`] curve, validating every multiplier and the
    /// non-increasing per-sharer rate invariant.
    pub fn try_new_table(multipliers: Vec<f64>) -> Result<Self, SharingError> {
        if multipliers.is_empty() {
            return Err(SharingError::EmptyTable);
        }
        for (index, &m) in multipliers.iter().enumerate() {
            if !m.is_finite() || m <= 0.0 {
                return Err(SharingError::InvalidMultiplier { index });
            }
            if index > 0 {
                let prev_rate = multipliers[index - 1] / index as f64;
                let rate = m / (index + 1) as f64;
                if rate > prev_rate {
                    return Err(SharingError::IncreasingPerSharerRate { index });
                }
            }
        }
        Ok(Self::Table(multipliers))
    }

    /// Aggregate throughput multiplier at `sharers` concurrent queries
    /// (`sharers >= 1`), relative to a lone query.
    pub fn total_multiplier(&self, sharers: u32) -> f64 {
        debug_assert!(sharers >= 1, "an empty instance has no sharing rate");
        let n = sharers as f64;
        match self {
            ThroughputDegradation::Ideal => n,
            ThroughputDegradation::TimeSliced => 1.0,
            ThroughputDegradation::Linear { alpha } => n / (1.0 + alpha * (n - 1.0)),
            ThroughputDegradation::Table(multipliers) => {
                let idx = (sharers as usize - 1).min(multipliers.len() - 1);
                multipliers[idx]
            }
        }
    }

    /// Per-sharer progress rate at `sharers` concurrent queries:
    /// `total_multiplier(sharers) / sharers`, the fraction of full speed
    /// each query advances at.
    #[inline]
    pub fn per_sharer_rate(&self, sharers: u32) -> f64 {
        self.total_multiplier(sharers) / sharers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_and_time_sliced_are_the_two_extremes() {
        for n in 1..=16 {
            assert_eq!(ThroughputDegradation::Ideal.per_sharer_rate(n), 1.0);
            assert!(
                (ThroughputDegradation::TimeSliced.per_sharer_rate(n) - 1.0 / n as f64).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn linear_interpolates_between_the_extremes() {
        let half = ThroughputDegradation::try_new_linear(0.5).unwrap();
        assert_eq!(half.total_multiplier(1), 1.0);
        // n = 3, alpha = 0.5: 3 / (1 + 0.5 * 2) = 1.5x aggregate.
        assert!((half.total_multiplier(3) - 1.5).abs() < 1e-12);
        let ideal = ThroughputDegradation::try_new_linear(0.0).unwrap();
        assert_eq!(ideal.total_multiplier(4), 4.0);
        let sliced = ThroughputDegradation::try_new_linear(1.0).unwrap();
        assert_eq!(sliced.total_multiplier(4), 1.0);
        assert_eq!(
            ThroughputDegradation::try_new_linear(1.5),
            Err(SharingError::InvalidContention { alpha: 1.5 })
        );
    }

    #[test]
    fn per_sharer_rate_never_increases_with_company() {
        for curve in [
            ThroughputDegradation::Ideal,
            ThroughputDegradation::TimeSliced,
            ThroughputDegradation::try_new_linear(0.3).unwrap(),
            ThroughputDegradation::try_new_table(vec![1.0, 1.6, 1.9, 2.0]).unwrap(),
        ] {
            let mut prev = f64::INFINITY;
            for n in 1..=32 {
                let rate = curve.per_sharer_rate(n);
                assert!(rate > 0.0);
                assert!(
                    rate <= prev + 1e-12,
                    "{curve:?} sped up at {n} sharers: {rate} > {prev}"
                );
                prev = rate;
            }
        }
    }

    #[test]
    fn table_clamps_beyond_its_last_entry() {
        let curve = ThroughputDegradation::try_new_table(vec![1.0, 1.5]).unwrap();
        assert_eq!(curve.total_multiplier(2), 1.5);
        assert_eq!(curve.total_multiplier(10), 1.5);
        assert!((curve.per_sharer_rate(10) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn table_validation_rejects_malformed_curves() {
        assert_eq!(
            ThroughputDegradation::try_new_table(Vec::new()),
            Err(SharingError::EmptyTable)
        );
        assert_eq!(
            ThroughputDegradation::try_new_table(vec![1.0, -2.0]),
            Err(SharingError::InvalidMultiplier { index: 1 })
        );
        // 2 sharers at 2.5x aggregate would run each query *faster* than
        // alone — physically impossible contention.
        assert_eq!(
            ThroughputDegradation::try_new_table(vec![1.0, 2.5]),
            Err(SharingError::IncreasingPerSharerRate { index: 1 })
        );
        // Perfect scaling is the boundary case and is allowed.
        assert!(ThroughputDegradation::try_new_table(vec![1.0, 2.0, 3.0]).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let curve = ThroughputDegradation::try_new_table(vec![1.0, 1.7, 2.1]).unwrap();
        let json = serde_json::to_string(&curve).unwrap();
        let back: ThroughputDegradation = serde_json::from_str(&json).unwrap();
        assert_eq!(curve, back);
    }
}

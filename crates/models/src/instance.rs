//! Cloud compute instance types (paper Table 4).
//!
//! The paper builds its heterogeneous pool from four AWS EC2 instance types,
//! one per compute class, all sized to 16 GB of memory so every type can host
//! a model replica.  The GPU type (`g4dn.xlarge`) is the *base* instance: the
//! only type that meets QoS for every batch size.  The CPU types are
//! *auxiliary* instances that are cheaper but can only serve smaller batches
//! within QoS.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Compute class of an instance type (EC2 instance families).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceClass {
    /// GPU-accelerated computing (e.g. `g4dn`).
    AcceleratedComputing,
    /// Compute-optimized CPU (e.g. `c5n`).
    ComputeOptimized,
    /// Memory-optimized CPU (e.g. `r5n`).
    MemoryOptimized,
    /// General-purpose CPU (e.g. `t3`).
    GeneralPurpose,
}

impl fmt::Display for InstanceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstanceClass::AcceleratedComputing => "accelerated-computing",
            InstanceClass::ComputeOptimized => "compute-optimized",
            InstanceClass::MemoryOptimized => "memory-optimized",
            InstanceClass::GeneralPurpose => "general-purpose",
        };
        f.write_str(s)
    }
}

/// A rentable cloud instance type with its pay-as-you-go price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Cloud provider name of the type, e.g. `g4dn.xlarge`.
    pub name: String,
    /// Compute class of the type.
    pub class: InstanceClass,
    /// On-demand price in dollars per hour.
    pub price_per_hour: f64,
    /// Whether this type is the *base* type of the pool (meets QoS for every
    /// batch size; the paper uses exactly one base type).
    pub is_base: bool,
}

impl InstanceType {
    /// Creates a new instance type description, validating the price.
    /// This is the non-panicking constructor the offering catalog uses when
    /// ingesting externally supplied (possibly malformed) price data.
    pub fn try_new(
        name: &str,
        class: InstanceClass,
        price_per_hour: f64,
        is_base: bool,
    ) -> Result<Self, crate::market::CatalogError> {
        if !(price_per_hour.is_finite() && price_per_hour > 0.0) {
            return Err(crate::market::CatalogError::InvalidPrice {
                price: price_per_hour,
            });
        }
        Ok(Self {
            name: name.to_string(),
            class,
            price_per_hour,
            is_base,
        })
    }

    /// Creates a new instance type description.
    ///
    /// # Panics
    /// Panics if the price is not strictly positive and finite (use
    /// [`InstanceType::try_new`] for a fallible path).
    pub fn new(name: &str, class: InstanceClass, price_per_hour: f64, is_base: bool) -> Self {
        Self::try_new(name, class, price_per_hour, is_base).expect("price must be positive")
    }

    /// Hourly price of `count` instances of this type.
    pub fn cost_of(&self, count: usize) -> f64 {
        self.price_per_hour * count as f64
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, ${:.4}/hr)",
            self.name, self.class, self.price_per_hour
        )
    }
}

/// Identifiers of the four instance types used throughout the paper's
/// evaluation (Sec. 7, Table 4).  The shorthand names (G1, C1, C2, C3) follow
/// the paper's Fig. 1 legend.
pub mod ec2 {
    use super::*;

    /// `g4dn.xlarge` — NVIDIA T4 GPU, the base instance type (G1).
    pub fn g4dn_xlarge() -> InstanceType {
        InstanceType::new(
            "g4dn.xlarge",
            InstanceClass::AcceleratedComputing,
            0.526,
            true,
        )
    }

    /// `c5n.2xlarge` — compute-optimized CPU auxiliary type (C1).
    pub fn c5n_2xlarge() -> InstanceType {
        InstanceType::new("c5n.2xlarge", InstanceClass::ComputeOptimized, 0.432, false)
    }

    /// `r5n.large` — memory-optimized CPU auxiliary type (C2).
    pub fn r5n_large() -> InstanceType {
        InstanceType::new("r5n.large", InstanceClass::MemoryOptimized, 0.149, false)
    }

    /// `t3.xlarge` — general-purpose CPU auxiliary type (C3).
    pub fn t3_xlarge() -> InstanceType {
        InstanceType::new("t3.xlarge", InstanceClass::GeneralPurpose, 0.1664, false)
    }

    /// The full four-type heterogeneous pool of Table 4, base type first.
    pub fn paper_pool() -> Vec<InstanceType> {
        vec![g4dn_xlarge(), c5n_2xlarge(), r5n_large(), t3_xlarge()]
    }

    /// The reduced three-type pool used in Fig. 1 (G1, C1, C2).
    pub fn figure1_pool() -> Vec<InstanceType> {
        vec![g4dn_xlarge(), c5n_2xlarge(), r5n_large()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_prices_match_paper() {
        assert_eq!(ec2::g4dn_xlarge().price_per_hour, 0.526);
        assert_eq!(ec2::c5n_2xlarge().price_per_hour, 0.432);
        assert_eq!(ec2::r5n_large().price_per_hour, 0.149);
        assert_eq!(ec2::t3_xlarge().price_per_hour, 0.1664);
    }

    #[test]
    fn only_gpu_is_base() {
        let pool = ec2::paper_pool();
        assert_eq!(pool.len(), 4);
        assert!(pool[0].is_base);
        assert!(pool[1..].iter().all(|t| !t.is_base));
        assert_eq!(pool[0].class, InstanceClass::AcceleratedComputing);
    }

    #[test]
    fn cost_of_scales_linearly() {
        let g1 = ec2::g4dn_xlarge();
        assert!((g1.cost_of(4) - 2.104).abs() < 1e-9);
        assert_eq!(g1.cost_of(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "price must be positive")]
    fn rejects_nonpositive_price() {
        InstanceType::new("bad", InstanceClass::GeneralPurpose, 0.0, false);
    }

    #[test]
    fn try_new_reports_bad_prices_without_panicking() {
        use crate::market::CatalogError;
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = InstanceType::try_new("bad", InstanceClass::GeneralPurpose, bad, false)
                .unwrap_err();
            match err {
                CatalogError::InvalidPrice { price } => {
                    assert!(price == bad || (price.is_nan() && bad.is_nan()))
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
        let ok = InstanceType::try_new("fine", InstanceClass::GeneralPurpose, 0.5, false);
        assert_eq!(ok.unwrap().price_per_hour, 0.5);
    }

    #[test]
    fn display_is_readable() {
        let s = format!("{}", ec2::r5n_large());
        assert!(s.contains("r5n.large"));
        assert!(s.contains("memory-optimized"));
    }

    #[test]
    fn figure1_pool_is_three_types() {
        let pool = ec2::figure1_pool();
        assert_eq!(pool.len(), 3);
        assert_eq!(pool[2].name, "r5n.large");
    }
}

//! Heterogeneous pool configurations, cost accounting and search-space
//! enumeration.
//!
//! A *configuration* is a count vector over the instance types of a pool,
//! e.g. `(3, 1, 3)` in Fig. 1 means 3x g4dn.xlarge, 1x c5n.2xlarge and
//! 3x r5n.large.  Kairos enumerates every configuration whose hourly cost is
//! within the budget (Sec. 5.2 says this search space is on the order of
//! 1000 configurations for the paper's setup) and ranks them by the
//! throughput upper bound.

use crate::instance::InstanceType;
use crate::market::Market;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered set of instance types forming the heterogeneous pool.
///
/// By convention the base type (the only one meeting QoS for all batch
/// sizes) comes first; [`PoolSpec::new`] enforces exactly one base type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolSpec {
    types: Vec<InstanceType>,
}

impl PoolSpec {
    /// Creates a pool specification.
    ///
    /// # Panics
    /// Panics if the pool is empty or does not contain exactly one base type.
    pub fn new(types: Vec<InstanceType>) -> Self {
        assert!(
            !types.is_empty(),
            "pool must contain at least one instance type"
        );
        let base_count = types.iter().filter(|t| t.is_base).count();
        assert_eq!(
            base_count, 1,
            "pool must contain exactly one base instance type"
        );
        Self { types }
    }

    /// The instance types of the pool, in order.
    pub fn types(&self) -> &[InstanceType] {
        &self.types
    }

    /// Number of instance types (the dimensionality of the config space).
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Index of the base instance type.
    pub fn base_index(&self) -> usize {
        self.types
            .iter()
            .position(|t| t.is_base)
            .expect("constructor guarantees a base type")
    }

    /// The base instance type.
    pub fn base_type(&self) -> &InstanceType {
        &self.types[self.base_index()]
    }

    /// Hourly price of one instance of type `index`.
    pub fn price(&self, index: usize) -> f64 {
        self.types[index].price_per_hour
    }
}

/// A heterogeneous configuration: how many instances of each pool type to rent.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    counts: Vec<usize>,
}

impl Config {
    /// Creates a configuration from per-type instance counts (aligned with the
    /// pool's type order).
    pub fn new(counts: Vec<usize>) -> Self {
        assert!(
            !counts.is_empty(),
            "configuration must cover at least one type"
        );
        Self { counts }
    }

    /// Creates the all-zero configuration for a pool of `num_types` types.
    pub fn zeros(num_types: usize) -> Self {
        Self::new(vec![0; num_types])
    }

    /// The per-type instance counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Count of instances of type `index`.
    pub fn count(&self, index: usize) -> usize {
        self.counts[index]
    }

    /// Total number of instances across all types.
    pub fn total_instances(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Hourly cost of the configuration under the given pool's prices.
    pub fn cost(&self, pool: &PoolSpec) -> f64 {
        assert_eq!(
            self.counts.len(),
            pool.num_types(),
            "config/pool dimension mismatch"
        );
        self.counts
            .iter()
            .zip(pool.types())
            .map(|(&c, t)| t.cost_of(c))
            .sum()
    }

    /// Hourly cost of the configuration under a [`Market`]'s prices at a
    /// point in virtual time.  For a [`ConstantMarket`] built from `pool`,
    /// this reproduces [`Config::cost`] **bit-for-bit** (same coordinate
    /// order, same multiply, same summation order).
    ///
    /// [`ConstantMarket`]: crate::market::ConstantMarket
    pub fn cost_at(&self, market: &dyn Market, at_us: u64) -> f64 {
        assert_eq!(
            self.counts.len(),
            market.num_offerings(),
            "config/market dimension mismatch"
        );
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| market.price_at(i, at_us) * c as f64)
            .sum()
    }

    /// Dollars billed for holding the configuration over `[from_us, to_us)`
    /// under a [`Market`]: the time integral of each offering's price times
    /// its instance count.  For a constant-price market this equals
    /// `cost(pool) × hours` (property-tested to 1e-9).
    pub fn billed_cost(&self, market: &dyn Market, from_us: u64, to_us: u64) -> f64 {
        assert_eq!(
            self.counts.len(),
            market.num_offerings(),
            "config/market dimension mismatch"
        );
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| market.billed_cost(i, from_us, to_us) * c as f64)
            .sum()
    }

    /// Whether the configuration uses only the pool's base type.
    pub fn is_homogeneous(&self, pool: &PoolSpec) -> bool {
        let base = pool.base_index();
        self.counts
            .iter()
            .enumerate()
            .all(|(i, &c)| i == base || c == 0)
    }

    /// Whether this configuration is a *sub-configuration* of `other`
    /// (paper Sec. 5.2 / Algorithm 1): `other` can be reached from `self` by
    /// only adding instances.  Every configuration is a sub-configuration of
    /// itself.
    pub fn is_sub_config_of(&self, other: &Config) -> bool {
        self.counts.len() == other.counts.len()
            && self
                .counts
                .iter()
                .zip(other.counts.iter())
                .all(|(a, b)| a <= b)
    }

    /// Squared Euclidean distance between two configurations, the similarity
    /// metric of Kairos's SSE-centroid selection rule (Sec. 5.2).
    pub fn squared_distance(&self, other: &Config) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len(), "dimension mismatch");
        self.counts
            .iter()
            .zip(other.counts.iter())
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum()
    }

    /// Returns a copy with the count of type `index` incremented by one.
    pub fn with_one_more(&self, index: usize) -> Config {
        let mut counts = self.counts.clone();
        counts[index] += 1;
        Config::new(counts)
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Options controlling configuration-space enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnumerationOptions {
    /// Hourly cost budget in dollars.
    pub budget_per_hour: f64,
    /// Require at least one base instance (needed for the pool to serve the
    /// largest queries within QoS; the paper's configurations all satisfy it).
    pub require_base_instance: bool,
    /// Require at least one instance in total.
    pub require_nonempty: bool,
}

impl EnumerationOptions {
    /// Standard options: positive budget, at least one base instance.
    pub fn with_budget(budget_per_hour: f64) -> Self {
        assert!(budget_per_hour > 0.0, "budget must be positive");
        Self {
            budget_per_hour,
            require_base_instance: true,
            require_nonempty: true,
        }
    }
}

/// Enumerates every configuration whose cost fits within the budget.
///
/// The enumeration is exhaustive over the axis-aligned box bounded by
/// `floor(budget / price_i)` per type, filtered by total cost; this is the
/// same search space the paper's exhaustive offline search covers.
pub fn enumerate_configs(pool: &PoolSpec, options: &EnumerationOptions) -> Vec<Config> {
    let budget = options.budget_per_hour;
    let n = pool.num_types();
    let max_counts: Vec<usize> = (0..n)
        .map(|i| (budget / pool.price(i)).floor() as usize)
        .collect();

    let mut out = Vec::new();
    let mut current = vec![0usize; n];

    fn recurse(
        pool: &PoolSpec,
        max_counts: &[usize],
        budget: f64,
        dim: usize,
        spent: f64,
        current: &mut Vec<usize>,
        out: &mut Vec<Config>,
    ) {
        if dim == max_counts.len() {
            out.push(Config::new(current.clone()));
            return;
        }
        let price = pool.price(dim);
        for count in 0..=max_counts[dim] {
            let cost = spent + price * count as f64;
            if cost > budget + 1e-9 {
                break;
            }
            current[dim] = count;
            recurse(pool, max_counts, budget, dim + 1, cost, current, out);
        }
        current[dim] = 0;
    }

    recurse(pool, &max_counts, budget, 0, 0.0, &mut current, &mut out);

    out.retain(|c| {
        (!options.require_nonempty || c.total_instances() > 0)
            && (!options.require_base_instance || c.count(pool.base_index()) > 0)
    });
    out
}

/// Returns the optimal *homogeneous* configuration: the maximum number of
/// base instances that fit in the budget (paper Sec. 8.1).
pub fn best_homogeneous(pool: &PoolSpec, budget_per_hour: f64) -> Config {
    assert!(budget_per_hour > 0.0, "budget must be positive");
    let base = pool.base_index();
    let count = (budget_per_hour / pool.price(base)).floor() as usize;
    let mut counts = vec![0usize; pool.num_types()];
    counts[base] = count;
    Config::new(counts)
}

/// The fraction of the budget a configuration leaves unused.  The paper
/// compensates the homogeneous baseline by scaling its throughput up
/// proportionally to this slack (Sec. 8.1); Kairos's own slack is wasted.
pub fn budget_slack_ratio(config: &Config, pool: &PoolSpec, budget_per_hour: f64) -> f64 {
    let cost = config.cost(pool);
    ((budget_per_hour - cost) / budget_per_hour).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ec2;

    fn paper_pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    #[test]
    fn pool_requires_exactly_one_base() {
        let pool = paper_pool();
        assert_eq!(pool.base_index(), 0);
        assert_eq!(pool.base_type().name, "g4dn.xlarge");
    }

    #[test]
    #[should_panic(expected = "exactly one base")]
    fn pool_rejects_zero_base_types() {
        PoolSpec::new(vec![ec2::r5n_large(), ec2::t3_xlarge()]);
    }

    #[test]
    fn figure1_config_costs() {
        // Costs of the Fig. 1 configurations on the (G1, C1, C2) pool.
        let pool = PoolSpec::new(ec2::figure1_pool());
        let homogeneous = Config::new(vec![4, 0, 0]);
        assert!((homogeneous.cost(&pool) - 2.104).abs() < 1e-9);
        let hetero = Config::new(vec![3, 1, 3]);
        assert!((hetero.cost(&pool) - (3.0 * 0.526 + 0.432 + 3.0 * 0.149)).abs() < 1e-9);
        assert!(hetero.cost(&pool) <= 2.5);
        let c209 = Config::new(vec![2, 0, 9]);
        assert!(c209.cost(&pool) <= 2.5);
    }

    #[test]
    fn constant_market_cost_at_is_bitwise_cost() {
        use crate::market::ConstantMarket;
        let pool = paper_pool();
        let market = ConstantMarket::from_pool(&pool);
        for counts in [vec![4, 0, 0, 0], vec![3, 1, 3, 0], vec![1, 2, 0, 5]] {
            let config = Config::new(counts);
            assert_eq!(
                config.cost_at(&market, 0).to_bits(),
                config.cost(&pool).to_bits(),
                "constant market must reproduce the static cost exactly"
            );
            assert_eq!(
                config.cost_at(&market, u64::MAX).to_bits(),
                config.cost(&pool).to_bits()
            );
            // One billed hour equals the hourly cost to within associativity.
            let billed = config.billed_cost(&market, 0, 3_600_000_000);
            assert!((billed - config.cost(&pool)).abs() < 1e-9);
        }
    }

    #[test]
    fn homogeneity_detection() {
        let pool = paper_pool();
        assert!(Config::new(vec![4, 0, 0, 0]).is_homogeneous(&pool));
        assert!(!Config::new(vec![3, 1, 0, 0]).is_homogeneous(&pool));
        assert!(Config::new(vec![0, 0, 0, 0]).is_homogeneous(&pool));
    }

    #[test]
    fn sub_configuration_relation() {
        let a = Config::new(vec![1, 2, 0, 3]);
        let b = Config::new(vec![2, 2, 1, 3]);
        assert!(a.is_sub_config_of(&b));
        assert!(!b.is_sub_config_of(&a));
        assert!(a.is_sub_config_of(&a));
    }

    #[test]
    fn squared_distance_matches_hand_computation() {
        let a = Config::new(vec![3, 1, 3, 0]);
        let b = Config::new(vec![2, 0, 9, 0]);
        assert_eq!(a.squared_distance(&b), 1.0 + 1.0 + 36.0);
        assert_eq!(a.squared_distance(&a), 0.0);
    }

    #[test]
    fn enumeration_respects_budget_and_base_requirement() {
        let pool = paper_pool();
        let opts = EnumerationOptions::with_budget(2.5);
        let configs = enumerate_configs(&pool, &opts);
        assert!(!configs.is_empty());
        for c in &configs {
            assert!(c.cost(&pool) <= 2.5 + 1e-9);
            assert!(c.count(0) >= 1);
        }
        // The best homogeneous config must be part of the space.
        let homo = best_homogeneous(&pool, 2.5);
        assert!(configs.contains(&homo));
        // The paper says the search space is on the order of 1000 configs.
        assert!(
            configs.len() > 200,
            "search space unexpectedly small: {}",
            configs.len()
        );
        assert!(
            configs.len() < 20_000,
            "search space unexpectedly large: {}",
            configs.len()
        );
    }

    #[test]
    fn enumeration_without_base_requirement_is_larger() {
        let pool = paper_pool();
        let mut opts = EnumerationOptions::with_budget(2.5);
        let with_base = enumerate_configs(&pool, &opts).len();
        opts.require_base_instance = false;
        let without_base = enumerate_configs(&pool, &opts).len();
        assert!(without_base > with_base);
    }

    #[test]
    fn best_homogeneous_fills_budget() {
        let pool = paper_pool();
        let homo = best_homogeneous(&pool, 2.5);
        assert_eq!(homo.count(0), 4); // 4 x 0.526 = 2.104 <= 2.5 < 5 x 0.526
        assert_eq!(homo.total_instances(), 4);
        let slack = budget_slack_ratio(&homo, &pool, 2.5);
        assert!((slack - (2.5 - 2.104) / 2.5).abs() < 1e-9);
    }

    #[test]
    fn display_matches_paper_notation() {
        let c = Config::new(vec![3, 1, 3]);
        assert_eq!(format!("{c}"), "(3, 1, 3)");
    }

    #[test]
    fn with_one_more_increments_a_single_axis() {
        let c = Config::new(vec![1, 0, 2]);
        let d = c.with_one_more(1);
        assert_eq!(d.counts(), &[1, 1, 2]);
        assert!(c.is_sub_config_of(&d));
    }
}

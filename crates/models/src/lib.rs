//! # kairos-models
//!
//! Domain model of the Kairos inference-serving system (HPDC'23 reproduction):
//! cloud instance types with prices (paper Table 4), the five production ML
//! models with their QoS targets (Table 3), calibrated latency profiles per
//! (model, instance type) pair, the online latency predictor of Sec. 5.1,
//! heterogeneous-configuration arithmetic (cost, sub-configurations,
//! enumeration of the search space under a budget), and the cloud purchase
//! [`market`] (offerings, time-varying spot prices, preemption processes).
//!
//! ```
//! use kairos_models::{
//!     calibration::paper_calibration,
//!     config::{enumerate_configs, EnumerationOptions, PoolSpec},
//!     instance::ec2,
//!     mlmodel::{spec, ModelKind},
//! };
//!
//! let pool = PoolSpec::new(ec2::paper_pool());
//! let table = paper_calibration();
//! let rm2 = spec(ModelKind::Rm2);
//!
//! // The GPU base type serves the largest query within RM2's 350 ms QoS...
//! let gpu = table.expect(ModelKind::Rm2, "g4dn.xlarge");
//! assert!(gpu.latency_ms(1000) <= rm2.qos_ms);
//!
//! // ...and the configuration search space under the paper's budget is
//! // on the order of a thousand candidates.
//! let configs = enumerate_configs(&pool, &EnumerationOptions::with_budget(2.5));
//! assert!(configs.len() > 100);
//! ```

#![warn(missing_docs)]

pub mod calibration;
pub mod config;
pub mod fault;
pub mod instance;
pub mod latency;
pub mod market;
pub mod mlmodel;
pub mod predictor;
pub mod serverless;
pub mod sharing;
pub mod variant;

pub use config::{
    best_homogeneous, budget_slack_ratio, enumerate_configs, Config, EnumerationOptions, PoolSpec,
};
pub use fault::{
    FailureDomain, FaultError, FaultEvent, FaultProcess, PurchaseRejected, RejectionCause,
};
pub use instance::{ec2, InstanceClass, InstanceType};
pub use latency::{BatchLatencyGrid, LatencyError, LatencyProfile, LatencyTable, NoiseModel};
pub use market::{
    CatalogError, ConstantMarket, Market, MarketEvent, Offering, OfferingCatalog,
    PreemptionProcess, PriceTrace, PurchaseOption, TraceMarket,
};
pub use mlmodel::{catalog, spec, ModelKind, ModelSpec, MAX_BATCH_SIZE};
pub use predictor::{OnlinePredictor, PredictorBank};
pub use serverless::{
    ColdStartCost, ColdStartProfile, IdleHistogram, KeepAlivePolicy, ServerlessError,
};
pub use sharing::{SharingError, ThroughputDegradation};
pub use variant::{EffectiveModel, ModelVariant, VariantCatalog, VariantError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compose() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let table = calibration::paper_calibration();
        for model in ModelKind::ALL {
            for t in pool.types() {
                assert!(table.get(model, &t.name).is_some());
            }
        }
    }
}

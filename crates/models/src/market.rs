//! The cloud purchase-option market: offerings, time-varying prices and
//! preemption.
//!
//! The paper buys every instance at its static on-demand rate, so the only
//! cost lever is *which hardware* to rent.  Real clouds expose a second,
//! equally large axis: *how* to buy it.  Spot/preemptible capacity trades a
//! 3–10× discount for revocation risk (a short notice, then the instance is
//! reclaimed), and reserved capacity trades commitment for a flat discount.
//! This module makes that axis first-class:
//!
//! * an [`Offering`] couples an [`InstanceType`] with a [`PurchaseOption`]
//!   (on-demand, reserved, or spot with a [`PriceTrace`] and a
//!   [`PreemptionProcess`]);
//! * an [`OfferingCatalog`] is the ordered set of offerings a deployment may
//!   buy from — the market-era generalization of [`PoolSpec`], lowered back
//!   to a `PoolSpec` via [`OfferingCatalog::effective_pool`] so the whole
//!   planning and simulation stack enumerates *offerings* the same way it
//!   enumerated hardware types;
//! * a [`Market`] answers [`price_at`](Market::price_at) /
//!   [`billed_cost`](Market::billed_cost) queries and yields a deterministic,
//!   seeded stream of [`MarketEvent`]s (price steps and preemption notices)
//!   that the simulator delivers through its calendar queue.
//!
//! The design contract that keeps the redesign a *strict generalization*:
//! a [`ConstantMarket`] built from a pool reproduces the static cost model
//! bit-for-bit — [`Config::cost_at`](crate::Config::cost_at) equals
//! [`Config::cost`](crate::Config::cost), and
//! [`Config::billed_cost`](crate::Config::billed_cost) over one hour equals
//! `cost()` to within floating-point associativity (property-tested).

use crate::config::PoolSpec;
use crate::fault::FailureDomain;
use crate::instance::InstanceType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Microseconds of virtual time (mirrors `kairos_workload::TimeUs`; this
/// crate sits below the workload crate in the dependency graph).
pub type MarketTimeUs = u64;

/// Microseconds per billed hour (the integration unit of [`billed_dollars`]).
const US_PER_HOUR: f64 = 3.6e9;

/// Dollars billed for renting at a constant hourly price over
/// `[from_us, to_us)`.  Every constant-price billing path in the workspace
/// funnels through this one expression so that market-disabled and
/// constant-market runs produce bit-identical dollar accounting.
#[inline]
pub fn billed_dollars(price_per_hour: f64, from_us: MarketTimeUs, to_us: MarketTimeUs) -> f64 {
    price_per_hour * (to_us.saturating_sub(from_us) as f64 / US_PER_HOUR)
}

/// A typed validation error from the offering catalog and its building
/// blocks (prices, discounts, traces).
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// A price was zero, negative, or not finite.
    InvalidPrice {
        /// The offending price.
        price: f64,
    },
    /// A reserved-capacity discount was outside `[0, 1)`.
    InvalidDiscount {
        /// The offending discount fraction.
        discount: f64,
    },
    /// A spot price trace had no steps.
    EmptyPriceTrace,
    /// A spot price trace's steps were not sorted by time, or did not start
    /// at time zero.
    UnsortedPriceTrace,
    /// The catalog had no offerings.
    EmptyCatalog,
    /// The catalog had no base offering (exactly one is required).
    NoBaseOffering,
    /// The catalog had more than one base offering.
    MultipleBaseOfferings,
    /// The base offering was not purchased on-demand (a preemptible base
    /// instance cannot anchor QoS for the largest queries).
    NonOnDemandBase,
    /// Two offerings shared the same `(hardware, purchase kind)` pair.
    DuplicateOffering {
        /// Index of the second occurrence within the catalog.
        index: usize,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::InvalidPrice { price } => {
                write!(f, "price must be positive and finite, got {price}")
            }
            CatalogError::InvalidDiscount { discount } => {
                write!(f, "reserved discount must lie in [0, 1), got {discount}")
            }
            CatalogError::EmptyPriceTrace => write!(f, "spot price trace has no steps"),
            CatalogError::UnsortedPriceTrace => {
                write!(
                    f,
                    "spot price trace must start at t=0 and be sorted by time"
                )
            }
            CatalogError::EmptyCatalog => write!(f, "offering catalog is empty"),
            CatalogError::NoBaseOffering => {
                write!(f, "catalog must contain exactly one base offering")
            }
            CatalogError::MultipleBaseOfferings => {
                write!(f, "catalog contains more than one base offering")
            }
            CatalogError::NonOnDemandBase => {
                write!(f, "the base offering must be purchased on-demand")
            }
            CatalogError::DuplicateOffering { index } => {
                write!(
                    f,
                    "offering {index} duplicates an earlier (hardware, purchase) pair"
                )
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// A piecewise-constant spot price over virtual time: step `i` sets the
/// hourly price from its timestamp until the next step.  The first step must
/// be at time zero (so the price is defined from the start of the run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTrace {
    steps: Vec<(MarketTimeUs, f64)>,
}

impl PriceTrace {
    /// A trace holding one price forever.
    pub fn constant(price_per_hour: f64) -> Self {
        Self::try_new(vec![(0, price_per_hour)]).expect("constant trace from a positive price")
    }

    /// Validates and builds a trace from `(time_us, price_per_hour)` steps.
    pub fn try_new(steps: Vec<(MarketTimeUs, f64)>) -> Result<Self, CatalogError> {
        if steps.is_empty() {
            return Err(CatalogError::EmptyPriceTrace);
        }
        if steps[0].0 != 0 || steps.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(CatalogError::UnsortedPriceTrace);
        }
        if let Some(&(_, price)) = steps.iter().find(|(_, p)| !(p.is_finite() && *p > 0.0)) {
            return Err(CatalogError::InvalidPrice { price });
        }
        Ok(Self { steps })
    }

    /// The `(time_us, price_per_hour)` steps, sorted by time.
    pub fn steps(&self) -> &[(MarketTimeUs, f64)] {
        &self.steps
    }

    /// The hourly price in force at `at_us` (the last step at or before it).
    pub fn price_at(&self, at_us: MarketTimeUs) -> f64 {
        let idx = self.steps.partition_point(|&(t, _)| t <= at_us);
        self.steps[idx - 1].1
    }

    /// Dollars billed for renting at this trace over `[from_us, to_us)`:
    /// the exact integral of the piecewise-constant price.
    pub fn billed_dollars(&self, from_us: MarketTimeUs, to_us: MarketTimeUs) -> f64 {
        if to_us <= from_us {
            return 0.0;
        }
        let mut total = 0.0;
        for (i, &(start, price)) in self.steps.iter().enumerate() {
            let end = self
                .steps
                .get(i + 1)
                .map(|&(t, _)| t)
                .unwrap_or(MarketTimeUs::MAX);
            let lo = start.max(from_us);
            let hi = end.min(to_us);
            if hi > lo {
                total += billed_dollars(price, lo, hi);
            }
        }
        total
    }
}

/// When (in virtual time) a spot offering's capacity is reclaimed.  All
/// variants are deterministic given their parameters, so a market replays
/// the same storm on every run with the same seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PreemptionProcess {
    /// Capacity is never reclaimed.
    None,
    /// Explicit notice times (a scripted preemption storm).
    At {
        /// Virtual times at which a preemption notice is issued.
        notices_us: Vec<MarketTimeUs>,
    },
    /// Memoryless reclamation: notice inter-arrival gaps are exponential
    /// with the given hourly rate, drawn from a seeded stream.
    Poisson {
        /// Expected notices per hour of virtual time.
        rate_per_hour: f64,
        /// Seed of the notice stream.
        seed: u64,
    },
}

impl PreemptionProcess {
    /// Materializes the notice times within `[0, horizon_us]`, sorted.
    pub fn notices_within(&self, horizon_us: MarketTimeUs) -> Vec<MarketTimeUs> {
        match self {
            PreemptionProcess::None => Vec::new(),
            PreemptionProcess::At { notices_us } => {
                let mut out: Vec<MarketTimeUs> = notices_us
                    .iter()
                    .copied()
                    .filter(|&t| t <= horizon_us)
                    .collect();
                out.sort_unstable();
                out
            }
            PreemptionProcess::Poisson {
                rate_per_hour,
                seed,
            } => {
                // The RNG is seeded locally from the process's own seed, so
                // repeated calls at the same horizon replay the identical
                // draw sequence — determinism the simulator's calendar
                // materialization relies on (asserted in the tests below).
                if *rate_per_hour <= 0.0 {
                    return Vec::new();
                }
                let mean_gap_us = US_PER_HOUR / rate_per_hour;
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut out = Vec::new();
                let mut t = 0.0f64;
                loop {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -mean_gap_us * u.ln();
                    if t > horizon_us as f64 {
                        break;
                    }
                    out.push(t as MarketTimeUs);
                }
                // Truncating to whole microseconds can land two exponential
                // gaps on the same tick at high rates; a duplicate notice
                // would double-notice the same offering (and double-count
                // `preemption_notices`), so collapse them.
                out.dedup();
                out
            }
        }
    }
}

/// How an offering's capacity is bought.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PurchaseOption {
    /// Pay-as-you-go at the instance type's listed price.  Never preempted.
    OnDemand,
    /// Committed capacity at a flat fractional discount off the on-demand
    /// price.  Never preempted.
    Reserved {
        /// Fraction off the on-demand price, in `[0, 1)`.
        discount: f64,
    },
    /// Preemptible capacity at a time-varying market price.
    Spot {
        /// The hourly price over virtual time.
        price_trace: PriceTrace,
        /// When the cloud reclaims this offering's capacity.
        preemption_process: PreemptionProcess,
    },
}

impl PurchaseOption {
    /// Short label of the purchase kind (`"od"`, `"rsv"`, `"spot"`).
    pub fn kind_label(&self) -> &'static str {
        match self {
            PurchaseOption::OnDemand => "od",
            PurchaseOption::Reserved { .. } => "rsv",
            PurchaseOption::Spot { .. } => "spot",
        }
    }

    fn kind_discriminant(&self) -> u8 {
        match self {
            PurchaseOption::OnDemand => 0,
            PurchaseOption::Reserved { .. } => 1,
            PurchaseOption::Spot { .. } => 2,
        }
    }
}

/// One purchasable line item: an instance type at a purchase option, placed
/// in a failure domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Offering {
    /// The hardware being rented.  `instance_type.price_per_hour` is the
    /// on-demand *reference* price; the effective price comes from
    /// [`Offering::price_at`].
    pub instance_type: InstanceType,
    /// How the hardware is bought.
    pub purchase: PurchaseOption,
    /// Where the hardware lives in the cloud's failure hierarchy.  Defaults
    /// to the single [`FailureDomain::global`] domain, which reproduces the
    /// pre-fault, domain-blind world.
    pub placement: FailureDomain,
}

impl Offering {
    /// An on-demand offering of a type.
    pub fn on_demand(instance_type: InstanceType) -> Self {
        Self {
            instance_type,
            purchase: PurchaseOption::OnDemand,
            placement: FailureDomain::default(),
        }
    }

    /// A reserved offering of a type at a fractional discount.
    ///
    /// # Panics
    /// Panics if the discount is outside `[0, 1)` (use
    /// [`OfferingCatalog::try_new`] for a non-panicking path).
    pub fn reserved(instance_type: InstanceType, discount: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&discount),
            "reserved discount must lie in [0, 1)"
        );
        Self {
            instance_type,
            purchase: PurchaseOption::Reserved { discount },
            placement: FailureDomain::default(),
        }
    }

    /// A spot offering of a type.  Spot capacity can never be the pool's
    /// base anchor, so the `is_base` flag is cleared.
    pub fn spot(
        mut instance_type: InstanceType,
        price_trace: PriceTrace,
        preemption_process: PreemptionProcess,
    ) -> Self {
        instance_type.is_base = false;
        Self {
            instance_type,
            purchase: PurchaseOption::Spot {
                price_trace,
                preemption_process,
            },
            placement: FailureDomain::default(),
        }
    }

    /// Places the offering in a failure domain.  Offerings of the same
    /// `(hardware, purchase kind)` pair may coexist in *distinct* domains —
    /// that is how a catalog spreads one hardware type across zones.
    #[must_use]
    pub fn in_domain(mut self, placement: FailureDomain) -> Self {
        self.placement = placement;
        self
    }

    /// Display label, e.g. `"g4dn.xlarge@spot"`.
    pub fn label(&self) -> String {
        format!("{}@{}", self.instance_type.name, self.purchase.kind_label())
    }

    /// The hourly price of this offering at `at_us`.
    pub fn price_at(&self, at_us: MarketTimeUs) -> f64 {
        match &self.purchase {
            PurchaseOption::OnDemand => self.instance_type.price_per_hour,
            PurchaseOption::Reserved { discount } => {
                self.instance_type.price_per_hour * (1.0 - discount)
            }
            PurchaseOption::Spot { price_trace, .. } => price_trace.price_at(at_us),
        }
    }

    /// Whether this offering's capacity can be preempted.
    pub fn preemptible(&self) -> bool {
        matches!(
            &self.purchase,
            PurchaseOption::Spot {
                preemption_process,
                ..
            } if !matches!(preemption_process, PreemptionProcess::None)
        )
    }
}

/// A deterministic market occurrence, delivered to the simulator in time
/// order through its calendar queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MarketEvent {
    /// An offering's hourly price changed.
    PriceStep {
        /// When the new price takes effect.
        at_us: MarketTimeUs,
        /// Index of the offering within the catalog.
        offering: usize,
        /// The new hourly price.
        price_per_hour: f64,
    },
    /// The cloud announced reclamation of an offering's capacity: every live
    /// instance of the offering must drain within the notice window, after
    /// which it is killed.
    PreemptionNotice {
        /// When the notice is issued.
        at_us: MarketTimeUs,
        /// Index of the offering within the catalog.
        offering: usize,
        /// Grace period between notice and forced termination.
        notice_us: MarketTimeUs,
    },
}

impl MarketEvent {
    /// The virtual time the event occurs.
    pub fn at_us(&self) -> MarketTimeUs {
        match self {
            MarketEvent::PriceStep { at_us, .. } | MarketEvent::PreemptionNotice { at_us, .. } => {
                *at_us
            }
        }
    }

    /// The catalog index of the offering the event concerns.
    pub fn offering(&self) -> usize {
        match self {
            MarketEvent::PriceStep { offering, .. }
            | MarketEvent::PreemptionNotice { offering, .. } => *offering,
        }
    }
}

/// The pricing oracle of a run: per-offering prices over virtual time plus
/// the deterministic event stream the simulator replays.
///
/// Implementations must be pure functions of their construction parameters:
/// two queries with the same arguments return the same answer, and
/// [`events`](Market::events) yields the same stream on every call.
pub trait Market: fmt::Debug + Send + Sync {
    /// Number of offerings this market prices (the dimensionality of every
    /// [`Config`](crate::Config) it can cost).
    fn num_offerings(&self) -> usize;

    /// The hourly price of an offering at a point in virtual time.
    fn price_at(&self, offering: usize, at_us: MarketTimeUs) -> f64;

    /// Dollars billed for renting one instance of an offering over
    /// `[from_us, to_us)` — the exact time integral of the price.
    fn billed_cost(&self, offering: usize, from_us: MarketTimeUs, to_us: MarketTimeUs) -> f64;

    /// Every price step and preemption notice within `[0, horizon_us]`,
    /// sorted by time.  Deterministic: the same market yields the same
    /// stream on every call.
    fn events(&self, horizon_us: MarketTimeUs) -> Vec<MarketEvent>;
}

/// A market with constant prices and no events: the static cost model of the
/// original paper, expressed in market terms.  Built from a [`PoolSpec`],
/// it reproduces `Config::cost` bit-for-bit (see [`Config::cost_at`]).
///
/// [`Config::cost_at`]: crate::Config::cost_at
/// [`Config::cost`]: crate::Config::cost
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantMarket {
    prices: Vec<f64>,
}

impl ConstantMarket {
    /// A constant market holding each pool type at its listed price.
    pub fn from_pool(pool: &PoolSpec) -> Self {
        Self {
            prices: pool.types().iter().map(|t| t.price_per_hour).collect(),
        }
    }

    /// A constant market from explicit per-offering prices.
    pub fn from_prices(prices: Vec<f64>) -> Self {
        assert!(
            prices.iter().all(|p| p.is_finite() && *p > 0.0),
            "prices must be positive"
        );
        Self { prices }
    }
}

impl Market for ConstantMarket {
    fn num_offerings(&self) -> usize {
        self.prices.len()
    }

    fn price_at(&self, offering: usize, _at_us: MarketTimeUs) -> f64 {
        self.prices[offering]
    }

    fn billed_cost(&self, offering: usize, from_us: MarketTimeUs, to_us: MarketTimeUs) -> f64 {
        billed_dollars(self.prices[offering], from_us, to_us)
    }

    fn events(&self, _horizon_us: MarketTimeUs) -> Vec<MarketEvent> {
        Vec::new()
    }
}

/// The ordered set of offerings a deployment may buy from — the market-era
/// pool.  Offering order is the coordinate order of every market-aware
/// [`Config`](crate::Config).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfferingCatalog {
    offerings: Vec<Offering>,
}

impl OfferingCatalog {
    /// Validates and builds a catalog.  Exactly one offering must be the
    /// base anchor, it must be bought on-demand, and no `(hardware,
    /// purchase kind)` pair may repeat.
    pub fn try_new(offerings: Vec<Offering>) -> Result<Self, CatalogError> {
        if offerings.is_empty() {
            return Err(CatalogError::EmptyCatalog);
        }
        for o in &offerings {
            let price = o.instance_type.price_per_hour;
            if !(price.is_finite() && price > 0.0) {
                return Err(CatalogError::InvalidPrice { price });
            }
            if let PurchaseOption::Reserved { discount } = &o.purchase {
                if !(0.0..1.0).contains(discount) {
                    return Err(CatalogError::InvalidDiscount {
                        discount: *discount,
                    });
                }
            }
        }
        for (i, o) in offerings.iter().enumerate() {
            // The dedup key includes the placement: the same (hardware,
            // purchase kind) pair in *distinct* failure domains is two
            // legitimately different line items.
            let dup = offerings[..i].iter().any(|p| {
                p.instance_type.name == o.instance_type.name
                    && p.purchase.kind_discriminant() == o.purchase.kind_discriminant()
                    && p.placement == o.placement
            });
            if dup {
                return Err(CatalogError::DuplicateOffering { index: i });
            }
        }
        let base: Vec<usize> = offerings
            .iter()
            .enumerate()
            .filter(|(_, o)| o.instance_type.is_base)
            .map(|(i, _)| i)
            .collect();
        match base.as_slice() {
            [] => return Err(CatalogError::NoBaseOffering),
            [i] => {
                if offerings[*i].purchase.kind_discriminant() != 0 {
                    return Err(CatalogError::NonOnDemandBase);
                }
            }
            _ => return Err(CatalogError::MultipleBaseOfferings),
        }
        Ok(Self { offerings })
    }

    /// [`Self::try_new`], panicking on validation failure.
    ///
    /// # Panics
    /// Panics if the offerings do not form a valid catalog.
    pub fn new(offerings: Vec<Offering>) -> Self {
        Self::try_new(offerings).expect("invalid offering catalog")
    }

    /// The all-on-demand catalog of a pool: one [`PurchaseOption::OnDemand`]
    /// offering per pool type, in pool order.  The identity embedding of the
    /// pre-market cost model.
    pub fn on_demand(pool: &PoolSpec) -> Self {
        Self::new(
            pool.types()
                .iter()
                .map(|t| Offering::on_demand(t.clone()))
                .collect(),
        )
    }

    /// The offerings, in coordinate order.
    pub fn offerings(&self) -> &[Offering] {
        &self.offerings
    }

    /// The offering at a coordinate.
    pub fn offering(&self, index: usize) -> &Offering {
        &self.offerings[index]
    }

    /// Number of offerings (the dimensionality of market-aware configs).
    pub fn len(&self) -> usize {
        self.offerings.len()
    }

    /// Whether the catalog is empty (never true for a validated catalog).
    pub fn is_empty(&self) -> bool {
        self.offerings.is_empty()
    }

    /// Coordinate of the base offering.
    pub fn base_index(&self) -> usize {
        self.offerings
            .iter()
            .position(|o| o.instance_type.is_base)
            .expect("validated catalog has a base offering")
    }

    /// Display label of an offering, e.g. `"r5n.large@spot"`.
    pub fn label(&self, index: usize) -> String {
        self.offerings[index].label()
    }

    /// The on-demand *reference* price of an offering's hardware (what the
    /// same instance costs without the purchase-option discount).
    pub fn on_demand_price(&self, index: usize) -> f64 {
        self.offerings[index].instance_type.price_per_hour
    }

    /// The per-offering failure-domain table, in coordinate order — the
    /// lowering that keeps solvers domain-free: planners enumerate over the
    /// [`effective_pool`](Self::effective_pool) exactly as before, and
    /// domain-aware layers (the simulator's fault engine, the serving loop's
    /// spread constraint) resolve coordinate `i` back to a domain through
    /// this table.
    pub fn domains(&self) -> Vec<FailureDomain> {
        self.offerings.iter().map(|o| o.placement.clone()).collect()
    }

    /// Lowers the catalog to a [`PoolSpec`] whose type `i` is offering `i`
    /// priced at its time-zero price.  Instance type *names* stay the
    /// hardware names, so latency calibration, learned predictors and
    /// schedulers resolve identically for every purchase option of the same
    /// hardware — a spot `g4dn.xlarge` is the same silicon as an on-demand
    /// one, it just costs less and can vanish.
    pub fn effective_pool(&self) -> PoolSpec {
        self.pool_at(0)
    }

    /// [`Self::effective_pool`] priced at a point in virtual time.
    pub fn pool_at(&self, at_us: MarketTimeUs) -> PoolSpec {
        let prices: Vec<f64> = self.offerings.iter().map(|o| o.price_at(at_us)).collect();
        self.pool_with_prices(&prices)
    }

    /// Lowers the catalog to a [`PoolSpec`] with explicit per-offering
    /// prices (e.g. live market prices with cooldown penalties applied).
    ///
    /// # Panics
    /// Panics if `prices` does not have one entry per offering.
    pub fn pool_with_prices(&self, prices: &[f64]) -> PoolSpec {
        assert_eq!(prices.len(), self.offerings.len(), "one price per offering");
        PoolSpec::new(
            self.offerings
                .iter()
                .zip(prices)
                .map(|(o, &price)| InstanceType {
                    name: o.instance_type.name.clone(),
                    class: o.instance_type.class,
                    price_per_hour: price,
                    is_base: o.instance_type.is_base,
                })
                .collect(),
        )
    }
}

/// The [`Market`] realized by an [`OfferingCatalog`]: prices come from each
/// offering's purchase option, and the event stream materializes every spot
/// price step and preemption notice deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMarket {
    catalog: OfferingCatalog,
    notice_us: MarketTimeUs,
}

impl TraceMarket {
    /// Default notice window between a preemption notice and the forced
    /// kill: 200 ms of virtual time (the simulator's scaled-down stand-in
    /// for the clouds' two-minute warning).
    pub const DEFAULT_NOTICE_US: MarketTimeUs = 200_000;

    /// A market over a catalog with the default notice window.
    pub fn new(catalog: OfferingCatalog) -> Self {
        Self {
            catalog,
            notice_us: Self::DEFAULT_NOTICE_US,
        }
    }

    /// Overrides the notice window.
    pub fn with_notice(mut self, notice_us: MarketTimeUs) -> Self {
        self.notice_us = notice_us;
        self
    }

    /// The catalog this market prices.
    pub fn catalog(&self) -> &OfferingCatalog {
        &self.catalog
    }
}

impl Market for TraceMarket {
    fn num_offerings(&self) -> usize {
        self.catalog.len()
    }

    fn price_at(&self, offering: usize, at_us: MarketTimeUs) -> f64 {
        self.catalog.offering(offering).price_at(at_us)
    }

    fn billed_cost(&self, offering: usize, from_us: MarketTimeUs, to_us: MarketTimeUs) -> f64 {
        let o = self.catalog.offering(offering);
        match &o.purchase {
            PurchaseOption::Spot { price_trace, .. } => price_trace.billed_dollars(from_us, to_us),
            _ => billed_dollars(o.price_at(0), from_us, to_us),
        }
    }

    fn events(&self, horizon_us: MarketTimeUs) -> Vec<MarketEvent> {
        let mut out = Vec::new();
        for (index, o) in self.catalog.offerings().iter().enumerate() {
            if let PurchaseOption::Spot {
                price_trace,
                preemption_process,
            } = &o.purchase
            {
                for &(at_us, price_per_hour) in price_trace.steps() {
                    if at_us > 0 && at_us <= horizon_us {
                        out.push(MarketEvent::PriceStep {
                            at_us,
                            offering: index,
                            price_per_hour,
                        });
                    }
                }
                for at_us in preemption_process.notices_within(horizon_us) {
                    out.push(MarketEvent::PreemptionNotice {
                        at_us,
                        offering: index,
                        notice_us: self.notice_us,
                    });
                }
            }
        }
        out.sort_by_key(|e| (e.at_us(), e.offering()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ec2;

    fn spot_gpu() -> Offering {
        Offering::spot(
            ec2::g4dn_xlarge(),
            PriceTrace::try_new(vec![(0, 0.17), (5_000_000, 0.22)]).unwrap(),
            PreemptionProcess::At {
                notices_us: vec![4_000_000],
            },
        )
    }

    fn catalog() -> OfferingCatalog {
        OfferingCatalog::new(vec![
            Offering::on_demand(ec2::g4dn_xlarge()),
            Offering::on_demand(ec2::r5n_large()),
            spot_gpu(),
        ])
    }

    #[test]
    fn price_trace_lookup_and_integral() {
        let trace = PriceTrace::try_new(vec![(0, 1.0), (1_800_000_000, 2.0)]).unwrap();
        assert_eq!(trace.price_at(0), 1.0);
        assert_eq!(trace.price_at(1_799_999_999), 1.0);
        assert_eq!(trace.price_at(1_800_000_000), 2.0);
        // Half an hour at $1 plus half an hour at $2 = $1.50.
        let billed = trace.billed_dollars(0, 3_600_000_000);
        assert!((billed - 1.5).abs() < 1e-12, "billed {billed}");
        assert_eq!(trace.billed_dollars(5, 5), 0.0);
    }

    #[test]
    fn price_trace_validation() {
        assert_eq!(
            PriceTrace::try_new(vec![]),
            Err(CatalogError::EmptyPriceTrace)
        );
        assert_eq!(
            PriceTrace::try_new(vec![(5, 1.0)]),
            Err(CatalogError::UnsortedPriceTrace)
        );
        assert_eq!(
            PriceTrace::try_new(vec![(0, 1.0), (10, 0.0)]),
            Err(CatalogError::InvalidPrice { price: 0.0 })
        );
    }

    #[test]
    fn poisson_notices_are_deterministic_and_bounded() {
        let p = PreemptionProcess::Poisson {
            rate_per_hour: 3600.0, // one per second of virtual time
            seed: 7,
        };
        let a = p.notices_within(10_000_000);
        let b = p.notices_within(10_000_000);
        assert_eq!(a, b, "seeded stream must be deterministic");
        assert!(!a.is_empty());
        // Strictly increasing: same-microsecond duplicates are collapsed, so
        // an offering is never double-noticed on one tick.
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&t| t <= 10_000_000));
    }

    #[test]
    fn poisson_notices_dedupe_same_microsecond_collisions() {
        // An absurdly hot process: the mean gap is well under a microsecond,
        // so nearly every truncated notice collides with its predecessor.
        // Before the dedup fix this returned long runs of equal timestamps,
        // each of which double-noticed (and double-counted) the offering.
        let p = PreemptionProcess::Poisson {
            rate_per_hour: 3.6e10, // mean gap 0.1 us
            seed: 3,
        };
        let notices = p.notices_within(1_000);
        assert!(!notices.is_empty());
        assert!(
            notices.windows(2).all(|w| w[0] < w[1]),
            "duplicate microsecond notices survived: {notices:?}"
        );
    }

    #[test]
    fn catalog_validation_catches_shape_errors() {
        assert_eq!(
            OfferingCatalog::try_new(vec![]).unwrap_err(),
            CatalogError::EmptyCatalog
        );
        assert_eq!(
            OfferingCatalog::try_new(vec![Offering::on_demand(ec2::r5n_large())]).unwrap_err(),
            CatalogError::NoBaseOffering
        );
        assert_eq!(
            OfferingCatalog::try_new(vec![
                Offering::on_demand(ec2::g4dn_xlarge()),
                Offering::on_demand(ec2::g4dn_xlarge()),
            ])
            .unwrap_err(),
            CatalogError::DuplicateOffering { index: 1 }
        );
        // A spot base cannot happen through `Offering::spot` (it clears the
        // flag), but a hand-built offering is rejected.
        let sneaky = Offering {
            instance_type: ec2::g4dn_xlarge(),
            purchase: PurchaseOption::Spot {
                price_trace: PriceTrace::constant(0.2),
                preemption_process: PreemptionProcess::None,
            },
            placement: FailureDomain::default(),
        };
        assert_eq!(
            OfferingCatalog::try_new(vec![sneaky]).unwrap_err(),
            CatalogError::NonOnDemandBase
        );
        // A reserved base is rejected too: the QoS anchor must be on-demand.
        assert_eq!(
            OfferingCatalog::try_new(vec![Offering::reserved(ec2::g4dn_xlarge(), 0.3)])
                .unwrap_err(),
            CatalogError::NonOnDemandBase
        );
        let bad_discount = Offering {
            instance_type: ec2::r5n_large(),
            purchase: PurchaseOption::Reserved { discount: 1.5 },
            placement: FailureDomain::default(),
        };
        assert_eq!(
            OfferingCatalog::try_new(vec![Offering::on_demand(ec2::g4dn_xlarge()), bad_discount])
                .unwrap_err(),
            CatalogError::InvalidDiscount { discount: 1.5 }
        );
    }

    #[test]
    fn on_demand_catalog_round_trips_the_pool() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let catalog = OfferingCatalog::on_demand(&pool);
        assert_eq!(catalog.len(), 4);
        assert_eq!(catalog.base_index(), 0);
        let lowered = catalog.effective_pool();
        assert_eq!(lowered, pool, "identity embedding must round-trip");
        assert_eq!(catalog.label(0), "g4dn.xlarge@od");
    }

    #[test]
    fn effective_pool_prices_spot_at_its_trace() {
        let c = catalog();
        let pool = c.effective_pool();
        assert_eq!(pool.num_types(), 3);
        assert_eq!(pool.types()[2].name, "g4dn.xlarge");
        assert!(!pool.types()[2].is_base, "spot offerings are never base");
        assert_eq!(pool.price(2), 0.17);
        assert_eq!(c.pool_at(6_000_000).price(2), 0.22);
    }

    #[test]
    fn constant_market_is_eventless_and_flat() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let m = ConstantMarket::from_pool(&pool);
        assert_eq!(m.num_offerings(), 4);
        assert_eq!(m.price_at(0, 0), 0.526);
        assert_eq!(m.price_at(0, u64::MAX), 0.526);
        assert!(m.events(u64::MAX).is_empty());
        // One hour of one g4dn = its hourly price, exactly.
        let billed = m.billed_cost(0, 0, 3_600_000_000);
        assert_eq!(billed, 0.526 * 1.0);
    }

    #[test]
    fn trace_market_materializes_sorted_deterministic_events() {
        let m = TraceMarket::new(catalog()).with_notice(300_000);
        let events = m.events(10_000_000);
        assert_eq!(events, m.events(10_000_000), "must be deterministic");
        assert!(events.windows(2).all(|w| w[0].at_us() <= w[1].at_us()));
        assert!(events.iter().any(|e| matches!(
            e,
            MarketEvent::PriceStep {
                at_us: 5_000_000,
                offering: 2,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            MarketEvent::PreemptionNotice {
                at_us: 4_000_000,
                offering: 2,
                notice_us: 300_000,
            }
        )));
        // The step at t=0 is the starting price, not an event.
        assert!(events.iter().all(|e| e.at_us() > 0));
        // A short horizon filters future events out.
        assert!(m.events(1_000_000).is_empty());
    }

    #[test]
    fn distinct_domains_unlock_duplicate_hardware_purchase_pairs() {
        let zone_a = FailureDomain::zone("us-east-1", "us-east-1a");
        let zone_b = FailureDomain::zone("us-east-1", "us-east-1b");
        // The same CPU type on-demand in two zones is two valid line items...
        let catalog = OfferingCatalog::new(vec![
            Offering::on_demand(ec2::g4dn_xlarge()).in_domain(zone_a.clone()),
            Offering::on_demand(ec2::r5n_large()).in_domain(zone_a.clone()),
            Offering::on_demand(ec2::r5n_large()).in_domain(zone_b.clone()),
        ]);
        assert_eq!(catalog.len(), 3);
        assert_eq!(
            catalog.domains(),
            vec![zone_a.clone(), zone_a.clone(), zone_b]
        );
        // ...but twice in the *same* zone is still a duplicate.
        assert_eq!(
            OfferingCatalog::try_new(vec![
                Offering::on_demand(ec2::g4dn_xlarge()).in_domain(zone_a.clone()),
                Offering::on_demand(ec2::r5n_large()).in_domain(zone_a.clone()),
                Offering::on_demand(ec2::r5n_large()).in_domain(zone_a),
            ])
            .unwrap_err(),
            CatalogError::DuplicateOffering { index: 2 }
        );
        // Un-placed offerings land in the single global domain.
        let blind = OfferingCatalog::on_demand(&PoolSpec::new(ec2::paper_pool()));
        assert!(blind
            .domains()
            .iter()
            .all(|d| *d == FailureDomain::global()));
    }

    #[test]
    fn trace_market_bills_spot_by_the_trace_and_fixed_by_the_rate() {
        let m = TraceMarket::new(catalog());
        // Offering 2 (spot GPU): 5 s at 0.17 then 5 s at 0.22.
        let billed = m.billed_cost(2, 0, 10_000_000);
        let expect = 0.17 * (5.0 / 3600.0) + 0.22 * (5.0 / 3600.0);
        assert!((billed - expect).abs() < 1e-12, "billed {billed}");
        // Offering 0 (on-demand GPU) bills flat.
        let od = m.billed_cost(0, 0, 3_600_000_000);
        assert_eq!(od, 0.526);
        assert!(m.catalog().offering(2).preemptible());
        assert!(!m.catalog().offering(0).preemptible());
    }
}

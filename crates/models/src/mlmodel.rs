//! Machine-learning inference service models and QoS targets (paper Table 3).
//!
//! Kairos is evaluated on five industry-grade recommendation models whose QoS
//! targets (99th-percentile tail latency) are taken from the real services
//! they power.  The model *architectures* are irrelevant to the scheduler —
//! only their latency profiles on each instance type matter — so this module
//! carries the metadata and the maximum batch size, while
//! [`crate::calibration`] carries the latency behaviour.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum query batch size admitted by the system (paper Sec. 5.1: "we limit
/// the maximum batch size of a query to 1000 because of QoS constraints").
pub const MAX_BATCH_SIZE: u32 = 1000;

/// The five production models of the paper's evaluation (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Neural Collaborative Filtering — movie recommendation, 5 ms QoS.
    Ncf,
    /// Meta's recommendation model class 2 — social-media post ranking, 350 ms QoS.
    Rm2,
    /// Google Wide & Deep — app-store recommendation, 25 ms QoS.
    Wnd,
    /// Multi-Task Wide & Deep — video recommendation, 25 ms QoS.
    MtWnd,
    /// Alibaba Deep Interest Evolution Network — e-commerce CTR, 35 ms QoS.
    Dien,
}

impl ModelKind {
    /// All five models in the order the paper's figures present them.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Ncf,
        ModelKind::Rm2,
        ModelKind::Wnd,
        ModelKind::MtWnd,
        ModelKind::Dien,
    ];

    /// Short display name as used in the paper's figures.
    pub fn short_name(&self) -> &'static str {
        match self {
            ModelKind::Ncf => "NCF",
            ModelKind::Rm2 => "RM2",
            ModelKind::Wnd => "WND",
            ModelKind::MtWnd => "MT-WND",
            ModelKind::Dien => "DIEN",
        }
    }

    /// QoS target of the model in (virtual) microseconds — the Table 3
    /// 99th-percentile tail-latency limit in the unit the simulator uses.
    /// Shorthand for `spec(kind).qos_us()` so benches and examples need not
    /// materialize a full [`ModelSpec`] for a QoS lookup.
    pub fn qos_us(&self) -> u64 {
        spec(*self).qos_us()
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    /// Parses the short figure name (case-insensitive), round-tripping with
    /// [`ModelKind::short_name`] / `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelKind::ALL
            .iter()
            .find(|k| k.short_name().eq_ignore_ascii_case(s))
            .copied()
            .ok_or_else(|| format!("unknown model `{s}` (expected one of NCF/RM2/WND/MT-WND/DIEN)"))
    }
}

/// Full description of an inference service model: identity, QoS target and
/// the application it serves (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Which of the five paper models this is.
    pub kind: ModelKind,
    /// Human-readable description of the model architecture.
    pub description: String,
    /// Application the model powers.
    pub application: String,
    /// QoS target: the 99th-percentile tail latency limit, in milliseconds.
    pub qos_ms: f64,
    /// Largest admissible query batch size.
    pub max_batch_size: u32,
    /// Reference (full-precision) serving accuracy of the model, in (0, 1].
    /// Variant catalogues ([`crate::variant`]) express every quantized or
    /// distilled variant's accuracy relative to this published number.
    pub accuracy: f64,
}

impl ModelSpec {
    /// Returns the QoS target in (virtual) microseconds — the unit used by the
    /// discrete-event simulator.
    pub fn qos_us(&self) -> u64 {
        (self.qos_ms * 1000.0).round() as u64
    }
}

/// Returns the Table 3 specification for a model.
pub fn spec(kind: ModelKind) -> ModelSpec {
    match kind {
        ModelKind::Ncf => ModelSpec {
            kind,
            description: "Neural Collaborative Filtering".to_string(),
            application: "Movie recommendation".to_string(),
            qos_ms: 5.0,
            max_batch_size: MAX_BATCH_SIZE,
            accuracy: 0.975,
        },
        ModelKind::Rm2 => ModelSpec {
            kind,
            description: "Meta's recommendation model class 2".to_string(),
            application: "High-accuracy social media posts ranking".to_string(),
            qos_ms: 350.0,
            max_batch_size: MAX_BATCH_SIZE,
            accuracy: 0.985,
        },
        ModelKind::Wnd => ModelSpec {
            kind,
            description: "Google Wide and Deep recommender system".to_string(),
            application: "Google App Store".to_string(),
            qos_ms: 25.0,
            max_batch_size: MAX_BATCH_SIZE,
            accuracy: 0.962,
        },
        ModelKind::MtWnd => ModelSpec {
            kind,
            description: "Multi-Task Wide and Deep, predicts multiple metrics in parallel"
                .to_string(),
            application: "YouTube video recommendation".to_string(),
            qos_ms: 25.0,
            max_batch_size: MAX_BATCH_SIZE,
            accuracy: 0.958,
        },
        ModelKind::Dien => ModelSpec {
            kind,
            description: "Alibaba Deep Interest Evolution Network".to_string(),
            application: "E-commerce".to_string(),
            qos_ms: 35.0,
            max_batch_size: MAX_BATCH_SIZE,
            accuracy: 0.968,
        },
    }
}

/// Returns the Table 3 catalogue of all five models.
pub fn catalog() -> Vec<ModelSpec> {
    ModelKind::ALL.iter().map(|k| spec(*k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_qos_targets_match_paper() {
        assert_eq!(spec(ModelKind::Ncf).qos_ms, 5.0);
        assert_eq!(spec(ModelKind::Rm2).qos_ms, 350.0);
        assert_eq!(spec(ModelKind::Wnd).qos_ms, 25.0);
        assert_eq!(spec(ModelKind::MtWnd).qos_ms, 25.0);
        assert_eq!(spec(ModelKind::Dien).qos_ms, 35.0);
    }

    #[test]
    fn qos_microsecond_conversion() {
        assert_eq!(spec(ModelKind::Ncf).qos_us(), 5_000);
        assert_eq!(spec(ModelKind::Rm2).qos_us(), 350_000);
    }

    #[test]
    fn catalog_has_five_unique_models() {
        let cat = catalog();
        assert_eq!(cat.len(), 5);
        let mut kinds: Vec<_> = cat.iter().map(|s| s.kind).collect();
        kinds.dedup();
        assert_eq!(kinds.len(), 5);
    }

    #[test]
    fn batch_size_cap_is_1000() {
        for m in catalog() {
            assert_eq!(m.max_batch_size, 1000);
        }
    }

    #[test]
    fn short_names_match_figures() {
        let names: Vec<_> = ModelKind::ALL.iter().map(|k| k.short_name()).collect();
        assert_eq!(names, vec!["NCF", "RM2", "WND", "MT-WND", "DIEN"]);
    }

    #[test]
    fn display_from_str_round_trips_for_all_models() {
        for kind in ModelKind::ALL {
            let parsed: ModelKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
            // Case-insensitive parsing.
            let lower: ModelKind = kind.short_name().to_lowercase().parse().unwrap();
            assert_eq!(lower, kind);
            // The round trip lands on the same spec, reference accuracy
            // included, and every published accuracy is a sane (0, 1] value.
            let round = spec(parsed);
            assert_eq!(round, spec(kind));
            assert_eq!(round.accuracy.to_bits(), spec(kind).accuracy.to_bits());
            assert!(round.accuracy > 0.0 && round.accuracy <= 1.0);
        }
        assert!("resnet".parse::<ModelKind>().is_err());
    }

    #[test]
    fn kind_level_qos_shorthand_matches_the_spec() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.qos_us(), spec(kind).qos_us());
        }
        assert_eq!(ModelKind::Ncf.qos_us(), 5_000);
        assert_eq!(ModelKind::Rm2.qos_us(), 350_000);
    }
}

//! Latency profiles of (model, instance type) pairs.
//!
//! The paper observes (Sec. 5.1, "Remarks on assumptions and overhead") that
//! ML inference latency is highly predictable and almost perfectly linear in
//! the query batch size (Pearson correlation > 0.99, end-to-end variance
//! < 0.5 % of the mean), because each instance serves exactly one query at a
//! time with no resource contention.  We therefore model the service latency
//! of a batch-`b` query as
//!
//! ```text
//! latency_ms(b) = intercept_ms + slope_ms * b        (+ optional noise)
//! ```
//!
//! The optional additive Gaussian noise reproduces the robustness experiment
//! of Fig. 16(b), where 5 % white noise is injected into latency predictions
//! to emulate cloud performance variability.

use crate::mlmodel::ModelKind;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Typed construction error for latency profiles and batch-axis grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyError {
    /// The intercept was negative or not finite.
    InvalidIntercept {
        /// The offending intercept, in milliseconds.
        intercept_ms: f64,
    },
    /// The slope was zero, negative, or not finite (larger batches must be
    /// slower).
    InvalidSlope {
        /// The offending slope, in milliseconds per request.
        slope_ms: f64,
    },
    /// A batch grid had no points.
    EmptyGrid,
    /// Batch sizes in a grid were not strictly increasing.
    UnsortedGrid {
        /// Index of the first out-of-order point.
        index: usize,
    },
    /// A grid latency was zero, negative, or not finite.
    InvalidGridLatency {
        /// Index of the offending point.
        index: usize,
    },
    /// Latency decreased between two adjacent grid points: the batch axis
    /// must be monotone non-decreasing.
    NonMonotoneGrid {
        /// Index of the point whose latency undercuts its predecessor.
        index: usize,
    },
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyError::InvalidIntercept { intercept_ms } => {
                write!(
                    f,
                    "intercept must be finite and non-negative, got {intercept_ms}"
                )
            }
            LatencyError::InvalidSlope { slope_ms } => {
                write!(f, "slope must be finite and positive, got {slope_ms}")
            }
            LatencyError::EmptyGrid => write!(f, "batch latency grid has no points"),
            LatencyError::UnsortedGrid { index } => {
                write!(
                    f,
                    "grid batch sizes must be strictly increasing (point {index})"
                )
            }
            LatencyError::InvalidGridLatency { index } => {
                write!(
                    f,
                    "grid latency must be finite and positive (point {index})"
                )
            }
            LatencyError::NonMonotoneGrid { index } => {
                write!(
                    f,
                    "grid latency must be non-decreasing in batch size (point {index})"
                )
            }
        }
    }
}

impl std::error::Error for LatencyError {}

/// Linear latency profile of one model on one instance type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Fixed per-query overhead in milliseconds (dispatch, data movement).
    pub intercept_ms: f64,
    /// Marginal cost of one additional request in the batch, in milliseconds.
    pub slope_ms: f64,
}

impl LatencyProfile {
    /// Creates a profile; both coefficients must be finite and non-negative,
    /// and the slope must be strictly positive so larger batches are slower.
    pub fn new(intercept_ms: f64, slope_ms: f64) -> Self {
        match Self::try_new(intercept_ms, slope_ms) {
            Ok(profile) => profile,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`Self::new`]: reports invalid coefficients as a typed
    /// [`LatencyError`] instead of panicking.
    pub fn try_new(intercept_ms: f64, slope_ms: f64) -> Result<Self, LatencyError> {
        if !intercept_ms.is_finite() || intercept_ms < 0.0 {
            return Err(LatencyError::InvalidIntercept { intercept_ms });
        }
        if !slope_ms.is_finite() || slope_ms <= 0.0 {
            return Err(LatencyError::InvalidSlope { slope_ms });
        }
        Ok(Self {
            intercept_ms,
            slope_ms,
        })
    }

    /// Deterministic service latency of a batch-`batch` query, in milliseconds.
    #[inline]
    pub fn latency_ms(&self, batch: u32) -> f64 {
        self.intercept_ms + self.slope_ms * batch as f64
    }

    /// Deterministic service latency in microseconds (simulator time unit).
    #[inline]
    pub fn latency_us(&self, batch: u32) -> u64 {
        (self.latency_ms(batch) * 1000.0).round().max(1.0) as u64
    }

    /// The largest batch size whose latency stays within `qos_ms`, or `None`
    /// if even a single-request query violates the target.  This is the
    /// QoS-respecting region boundary `s` of the upper-bound analysis
    /// (paper Fig. 6).
    pub fn max_batch_within(&self, qos_ms: f64) -> Option<u32> {
        if self.latency_ms(1) > qos_ms {
            return None;
        }
        let b = ((qos_ms - self.intercept_ms) / self.slope_ms).floor();
        Some(b.max(1.0) as u32)
    }

    /// Steady-state throughput, in queries per second, when continuously
    /// serving queries of the given batch size.
    #[inline]
    pub fn throughput_qps(&self, batch: u32) -> f64 {
        1000.0 / self.latency_ms(batch)
    }
}

/// Piecewise-linear latency over an explicit batch-size grid — the measured
/// batch axis of a profile when the perfectly-linear model of
/// [`LatencyProfile`] is too coarse (batched serving amortizes the fixed
/// overhead unevenly across batch regimes).
///
/// Construction validates the grid shape: batch sizes strictly increasing,
/// latencies finite, positive, and **monotone non-decreasing** in batch size.
/// Lookups interpolate linearly between knots and *clamp* at the edges of
/// the grid — a batch below the first knot costs the first knot's latency
/// and a batch beyond the last knot costs the last knot's, never a negative
/// or runaway extrapolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchLatencyGrid {
    points: Vec<(u32, f64)>,
}

impl BatchLatencyGrid {
    /// Builds a grid from `(batch size, latency in ms)` knots, validating
    /// the shape (see the type docs).
    pub fn try_new(points: Vec<(u32, f64)>) -> Result<Self, LatencyError> {
        if points.is_empty() {
            return Err(LatencyError::EmptyGrid);
        }
        for (index, &(batch, latency_ms)) in points.iter().enumerate() {
            if index > 0 && batch <= points[index - 1].0 {
                return Err(LatencyError::UnsortedGrid { index });
            }
            if !latency_ms.is_finite() || latency_ms <= 0.0 {
                return Err(LatencyError::InvalidGridLatency { index });
            }
            if index > 0 && latency_ms < points[index - 1].1 {
                return Err(LatencyError::NonMonotoneGrid { index });
            }
        }
        Ok(Self { points })
    }

    /// Samples a linear profile at the given batch sizes — the bridge from
    /// the paper's calibrated lines to an explicit grid.
    pub fn from_profile(profile: &LatencyProfile, batches: &[u32]) -> Result<Self, LatencyError> {
        Self::try_new(
            batches
                .iter()
                .map(|&b| (b, profile.latency_ms(b)))
                .collect(),
        )
    }

    /// The validated `(batch size, latency in ms)` knots.
    pub fn points(&self) -> &[(u32, f64)] {
        &self.points
    }

    /// Latency of a batch-`batch` query in milliseconds: linear
    /// interpolation between the bracketing knots, clamped to the first /
    /// last knot outside the grid.
    pub fn latency_ms(&self, batch: u32) -> f64 {
        let first = self.points[0];
        let last = self.points[self.points.len() - 1];
        if batch <= first.0 {
            return first.1;
        }
        if batch >= last.0 {
            return last.1;
        }
        // Index of the first knot with knot.0 >= batch; the checks above
        // guarantee a bracketing pair exists.
        let hi = self.points.partition_point(|&(b, _)| b < batch);
        let (b0, l0) = self.points[hi - 1];
        let (b1, l1) = self.points[hi];
        let t = (batch - b0) as f64 / (b1 - b0) as f64;
        l0 + t * (l1 - l0)
    }

    /// Latency in microseconds (simulator time unit), at least 1 µs.
    pub fn latency_us(&self, batch: u32) -> u64 {
        (self.latency_ms(batch) * 1000.0).round().max(1.0) as u64
    }
}

/// Latency-prediction noise model (Fig. 16(b) robustness experiment).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// Fully deterministic latency (the paper's default assumption).
    None,
    /// Additive Gaussian white noise with standard deviation
    /// `std_fraction * latency` (the paper injects 5 % variance).
    Gaussian {
        /// Noise standard deviation as a fraction of the nominal latency.
        std_fraction: f64,
    },
}

impl NoiseModel {
    /// Applies the noise model to a nominal latency (milliseconds).  The
    /// result is clamped to at least 5 % of the nominal value so service
    /// times remain physically meaningful.
    pub fn apply<R: Rng + ?Sized>(&self, nominal_ms: f64, rng: &mut R) -> f64 {
        match self {
            NoiseModel::None => nominal_ms,
            NoiseModel::Gaussian { std_fraction } => {
                // Box–Muller transform; avoids a hard dependency on rand_distr here.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let noisy = nominal_ms * (1.0 + std_fraction * z);
                noisy.max(0.05 * nominal_ms)
            }
        }
    }
}

/// Calibrated latency profiles for every (model, instance type) pair.
///
/// Instance types are keyed by their cloud name (e.g. `"g4dn.xlarge"`), so a
/// table can be shared across pools that pick subsets of the catalogue.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyTable {
    entries: HashMap<ModelKind, HashMap<String, LatencyProfile>>,
}

impl LatencyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the profile for a (model, instance type) pair.
    pub fn insert(&mut self, model: ModelKind, instance_name: &str, profile: LatencyProfile) {
        self.entries
            .entry(model)
            .or_default()
            .insert(instance_name.to_string(), profile);
    }

    /// Looks up the profile for a (model, instance type) pair.
    pub fn get(&self, model: ModelKind, instance_name: &str) -> Option<LatencyProfile> {
        self.entries
            .get(&model)
            .and_then(|m| m.get(instance_name))
            .copied()
    }

    /// Looks up the profile, panicking with a descriptive message when the
    /// pair has not been calibrated.  Used on hot paths where absence is a
    /// programming error rather than a runtime condition.
    pub fn expect(&self, model: ModelKind, instance_name: &str) -> LatencyProfile {
        self.get(model, instance_name).unwrap_or_else(|| {
            panic!("no latency calibration for model {model} on instance {instance_name}")
        })
    }

    /// Number of calibrated pairs.
    pub fn len(&self) -> usize {
        self.entries.values().map(|m| m.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all `(model, instance name, profile)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (ModelKind, &str, LatencyProfile)> + '_ {
        self.entries
            .iter()
            .flat_map(|(m, inner)| inner.iter().map(move |(n, p)| (*m, n.as_str(), *p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn latency_is_linear_in_batch_size() {
        let p = LatencyProfile::new(2.0, 0.5);
        assert_eq!(p.latency_ms(0), 2.0);
        assert_eq!(p.latency_ms(10), 7.0);
        assert_eq!(p.latency_ms(100), 52.0);
        // Perfect linearity implies perfect correlation with batch size,
        // consistent with the paper's Pearson > 0.99 observation.
        let d1 = p.latency_ms(20) - p.latency_ms(10);
        let d2 = p.latency_ms(30) - p.latency_ms(20);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn microsecond_conversion_rounds_up_to_at_least_one() {
        let p = LatencyProfile::new(0.0, 0.0005);
        assert_eq!(p.latency_us(1), 1);
        let q = LatencyProfile::new(1.5, 0.1);
        assert_eq!(q.latency_us(10), 2500);
    }

    #[test]
    fn max_batch_within_qos() {
        let p = LatencyProfile::new(2.0, 0.1);
        // 2 + 0.1 b <= 12  =>  b <= 100
        assert_eq!(p.max_batch_within(12.0), Some(100));
        // Even one request is too slow for a 1 ms target.
        assert_eq!(p.max_batch_within(1.0), None);
        // Boundary: exactly one request fits.
        assert_eq!(p.max_batch_within(2.1), Some(1));
    }

    #[test]
    fn throughput_is_inverse_latency() {
        let p = LatencyProfile::new(5.0, 0.05);
        let qps = p.throughput_qps(100);
        assert!((qps - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "slope must be finite and positive")]
    fn rejects_zero_slope() {
        LatencyProfile::new(1.0, 0.0);
    }

    #[test]
    fn try_new_reports_bad_coefficients_without_panicking() {
        assert_eq!(
            LatencyProfile::try_new(-1.0, 0.5),
            Err(LatencyError::InvalidIntercept { intercept_ms: -1.0 })
        );
        assert!(matches!(
            LatencyProfile::try_new(1.0, f64::NAN),
            Err(LatencyError::InvalidSlope { .. })
        ));
        assert!(LatencyProfile::try_new(1.0, 0.5).is_ok());
    }

    #[test]
    fn batch_grid_interpolates_and_clamps_at_the_edges() {
        let grid = BatchLatencyGrid::try_new(vec![(8, 4.0), (64, 10.0), (256, 40.0)]).unwrap();
        // Interior points interpolate linearly between bracketing knots.
        assert!((grid.latency_ms(36) - 7.0).abs() < 1e-12);
        assert!((grid.latency_ms(160) - 25.0).abs() < 1e-12);
        // Knots are exact.
        assert_eq!(grid.latency_ms(8), 4.0);
        assert_eq!(grid.latency_ms(64), 10.0);
        assert_eq!(grid.latency_ms(256), 40.0);
        // Edges clamp instead of extrapolating: a batch below the first knot
        // costs the first knot's latency, above the last knot the last's.
        assert_eq!(grid.latency_ms(1), 4.0);
        assert_eq!(grid.latency_ms(1000), 40.0);
        assert_eq!(grid.latency_us(1000), 40_000);
    }

    #[test]
    fn batch_grid_from_profile_matches_the_line_on_its_knots() {
        let p = LatencyProfile::new(2.0, 0.5);
        let grid = BatchLatencyGrid::from_profile(&p, &[1, 10, 100]).unwrap();
        assert_eq!(grid.latency_ms(10), p.latency_ms(10));
        assert_eq!(grid.latency_ms(100), p.latency_ms(100));
        // Beyond the sampled grid the grid clamps while the line keeps
        // climbing.
        assert!(grid.latency_ms(500) < p.latency_ms(500));
    }

    #[test]
    fn batch_grid_rejects_malformed_inputs() {
        assert_eq!(
            BatchLatencyGrid::try_new(Vec::new()),
            Err(LatencyError::EmptyGrid)
        );
        assert_eq!(
            BatchLatencyGrid::try_new(vec![(8, 1.0), (8, 2.0)]),
            Err(LatencyError::UnsortedGrid { index: 1 })
        );
        assert_eq!(
            BatchLatencyGrid::try_new(vec![(8, 1.0), (4, 2.0)]),
            Err(LatencyError::UnsortedGrid { index: 1 })
        );
        assert_eq!(
            BatchLatencyGrid::try_new(vec![(8, 0.0)]),
            Err(LatencyError::InvalidGridLatency { index: 0 })
        );
        // The monotone batch axis is validated at construction: a dip in
        // latency between adjacent knots is a typed error.
        assert_eq!(
            BatchLatencyGrid::try_new(vec![(8, 5.0), (16, 4.0)]),
            Err(LatencyError::NonMonotoneGrid { index: 1 })
        );
        // A flat segment is allowed (non-decreasing, not strictly increasing).
        assert!(BatchLatencyGrid::try_new(vec![(8, 5.0), (16, 5.0)]).is_ok());
    }

    #[test]
    fn noise_none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(NoiseModel::None.apply(10.0, &mut rng), 10.0);
    }

    #[test]
    fn gaussian_noise_stays_near_nominal_and_positive() {
        let mut rng = StdRng::seed_from_u64(42);
        let noise = NoiseModel::Gaussian { std_fraction: 0.05 };
        let mut sum = 0.0;
        for _ in 0..2000 {
            let v = noise.apply(100.0, &mut rng);
            assert!(v > 0.0);
            sum += v;
        }
        let mean = sum / 2000.0;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean} drifted too far");
    }

    #[test]
    fn table_insert_and_lookup() {
        let mut t = LatencyTable::new();
        assert!(t.is_empty());
        t.insert(
            ModelKind::Ncf,
            "g4dn.xlarge",
            LatencyProfile::new(1.0, 0.01),
        );
        assert_eq!(t.len(), 1);
        let p = t.get(ModelKind::Ncf, "g4dn.xlarge").unwrap();
        assert_eq!(p.intercept_ms, 1.0);
        assert!(t.get(ModelKind::Rm2, "g4dn.xlarge").is_none());
    }

    #[test]
    #[should_panic(expected = "no latency calibration")]
    fn expect_panics_on_missing_pair() {
        let t = LatencyTable::new();
        t.expect(ModelKind::Dien, "t3.xlarge");
    }
}

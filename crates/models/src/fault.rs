//! Failure domains and correlated fault processes.
//!
//! PR 5's preemptions are per-instance and independent: a spot notice kills
//! the instances of one offering, and nothing else moves.  Real clouds fail
//! in *correlated* ways — a zone outage wipes every pool in the zone at
//! once, capacity purchases are rejected while a zone is short, and
//! instances degrade into stragglers instead of dying cleanly.  This module
//! gives those modes a first-class vocabulary:
//!
//! * a [`FailureDomain`] places an offering in the cloud's zone/region
//!   hierarchy (every offering lives somewhere; the default is the single
//!   `global/global` domain, which reproduces the domain-blind world);
//! * a [`FaultEvent`] is one correlated occurrence — [`ZoneOutage`],
//!   [`CapacityShortage`] or [`Straggler`] — and a [`FaultProcess`] is the
//!   scripted, fully deterministic set of them a run replays;
//! * a [`PurchaseRejected`] is the typed error a purchase attempt returns
//!   while its target domain is down or short, instead of silently
//!   succeeding.
//!
//! Like [`PreemptionProcess`](crate::market::PreemptionProcess), a fault
//! process is a pure value: materializing it twice at the same horizon
//! yields the same events, so the simulator's replay is reproducible
//! bit-for-bit and an *empty* process is indistinguishable from no process
//! at all (property-tested in `kairos-sim/tests/proptest_fault.rs`).
//!
//! [`ZoneOutage`]: FaultEvent::ZoneOutage
//! [`CapacityShortage`]: FaultEvent::CapacityShortage
//! [`Straggler`]: FaultEvent::Straggler

use serde::{Deserialize, Serialize};
use std::fmt;

/// Microseconds of virtual time (mirrors `kairos_workload::TimeUs`).
pub type FaultTimeUs = u64;

/// A placement in the cloud's failure hierarchy: a zone within a region.
///
/// Domains are compared structurally; two offerings share a fate exactly
/// when a fault's domain [`covers`](FailureDomain::covers) both of their
/// placements.  The zone `"*"` is the region-level wildcard: a fault scoped
/// to `region/*` covers every zone of the region.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FailureDomain {
    /// The region, e.g. `"us-east-1"`.
    pub region: String,
    /// The zone within the region, e.g. `"us-east-1a"`, or `"*"` for the
    /// whole region (only meaningful on a fault's domain, not a placement).
    pub zone: String,
}

impl FailureDomain {
    /// The single default domain every un-placed offering lives in.
    pub fn global() -> Self {
        Self {
            region: "global".to_string(),
            zone: "global".to_string(),
        }
    }

    /// A zone placement within a region.
    pub fn zone(region: &str, zone: &str) -> Self {
        Self {
            region: region.to_string(),
            zone: zone.to_string(),
        }
    }

    /// The whole-region wildcard domain (covers every zone of the region).
    pub fn region(region: &str) -> Self {
        Self {
            region: region.to_string(),
            zone: "*".to_string(),
        }
    }

    /// Display label, e.g. `"us-east-1/us-east-1a"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.region, self.zone)
    }

    /// Whether a fault scoped to `self` reaches an offering placed at
    /// `placement`: same region, and either an exact zone match or the
    /// region-level wildcard.
    pub fn covers(&self, placement: &FailureDomain) -> bool {
        self.region == placement.region && (self.zone == "*" || self.zone == placement.zone)
    }
}

impl Default for FailureDomain {
    fn default() -> Self {
        Self::global()
    }
}

impl fmt::Display for FailureDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.region, self.zone)
    }
}

/// One correlated fault occurrence of a run's scripted [`FaultProcess`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Every live instance whose placement the domain covers gets a
    /// preemption-style notice at `start_us` (drain, then forced kill after
    /// the process's notice window), and purchases into the domain are
    /// rejected until `start_us + duration_us`.
    ZoneOutage {
        /// The domain that goes dark.
        domain: FailureDomain,
        /// When the outage begins.
        start_us: FaultTimeUs,
        /// How long the domain stays dark (must be positive).
        duration_us: FaultTimeUs,
    },
    /// Purchases into the domain return [`PurchaseRejected`] during
    /// `[start_us, end_us)`; live instances keep running.
    CapacityShortage {
        /// The domain that runs short.
        domain: FailureDomain,
        /// When the shortage begins.
        start_us: FaultTimeUs,
        /// When capacity becomes purchasable again (must exceed `start_us`).
        end_us: FaultTimeUs,
    },
    /// One live instance of the offering degrades at `at_us`: its throughput
    /// is scaled by `slowdown` for the rest of the run.  The victim is the
    /// lowest-indexed live non-straggler instance of the offering at onset —
    /// a pure function of the event history, so replays are deterministic.
    Straggler {
        /// When the degradation sets in.
        at_us: FaultTimeUs,
        /// Pool/offering coordinate the victim is drawn from.
        offering: usize,
        /// Throughput multiplier in `(0, 1]` (0.25 = a 4x slower instance).
        slowdown: f64,
    },
}

impl FaultEvent {
    /// The virtual time the event first takes effect.
    pub fn at_us(&self) -> FaultTimeUs {
        match self {
            FaultEvent::ZoneOutage { start_us, .. }
            | FaultEvent::CapacityShortage { start_us, .. } => *start_us,
            FaultEvent::Straggler { at_us, .. } => *at_us,
        }
    }
}

/// A typed validation error from [`FaultProcess::try_new`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A zone outage had a zero duration.
    EmptyOutage,
    /// A capacity shortage's window was empty (`end_us <= start_us`).
    EmptyShortage,
    /// A straggler slowdown was outside `(0, 1]` or not finite.
    InvalidSlowdown {
        /// The offending multiplier.
        slowdown: f64,
    },
    /// A stochastic process rate was negative or not finite.
    InvalidRate {
        /// The offending rate, in events per hour.
        rate_per_hour: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::EmptyOutage => write!(f, "zone outage must have a positive duration"),
            FaultError::EmptyShortage => {
                write!(f, "capacity shortage window must end after it starts")
            }
            FaultError::InvalidSlowdown { slowdown } => {
                write!(f, "straggler slowdown must lie in (0, 1], got {slowdown}")
            }
            FaultError::InvalidRate { rate_per_hour } => {
                write!(
                    f,
                    "stochastic fault rate must be finite and non-negative, got {rate_per_hour}"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// The scripted set of correlated faults a run replays.
///
/// A process is plain data — no RNG, no clock — so materializing it twice
/// yields identical events, and [`FaultProcess::default`] (no events) leaves
/// an attached engine bit-identical to one that never heard of faults.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultProcess {
    events: Vec<FaultEvent>,
    notice_us: Option<FaultTimeUs>,
}

impl FaultProcess {
    /// Default notice window between an outage notice and the forced kill:
    /// 200 ms of virtual time, matching
    /// [`TraceMarket::DEFAULT_NOTICE_US`](crate::market::TraceMarket::DEFAULT_NOTICE_US).
    pub const DEFAULT_NOTICE_US: FaultTimeUs = 200_000;

    /// Validates and builds a process from its events.
    pub fn try_new(events: Vec<FaultEvent>) -> Result<Self, FaultError> {
        for event in &events {
            match event {
                FaultEvent::ZoneOutage { duration_us, .. } => {
                    if *duration_us == 0 {
                        return Err(FaultError::EmptyOutage);
                    }
                }
                FaultEvent::CapacityShortage {
                    start_us, end_us, ..
                } => {
                    if end_us <= start_us {
                        return Err(FaultError::EmptyShortage);
                    }
                }
                FaultEvent::Straggler { slowdown, .. } => {
                    if !(slowdown.is_finite() && *slowdown > 0.0 && *slowdown <= 1.0) {
                        return Err(FaultError::InvalidSlowdown {
                            slowdown: *slowdown,
                        });
                    }
                }
            }
        }
        Ok(Self {
            events,
            notice_us: None,
        })
    }

    /// [`Self::try_new`], panicking on validation failure.
    ///
    /// # Panics
    /// Panics if an event fails validation.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        Self::try_new(events).expect("invalid fault process")
    }

    /// A **seeded, deterministic** Poisson outage calendar: zone outages of
    /// `domain` arrive as a Poisson process of `rate_per_hour` over
    /// `[0, horizon_us)`, each lasting `duration_us`.  The inter-arrival
    /// gaps are drawn from a splitmix64 stream keyed by `seed` alone — no
    /// global RNG, no clock — so the same `(rate, seed, horizon, duration)`
    /// always materializes the identical calendar, and a rate of `0` yields
    /// an *empty* process that leaves an attached engine bit-identical to
    /// one with no faults at all (property-tested in
    /// `kairos-sim/tests/proptest_fault.rs`).
    pub fn poisson(
        rate_per_hour: f64,
        seed: u64,
        horizon_us: FaultTimeUs,
        duration_us: FaultTimeUs,
        domain: FailureDomain,
    ) -> Result<Self, FaultError> {
        if !(rate_per_hour.is_finite() && rate_per_hour >= 0.0) {
            return Err(FaultError::InvalidRate { rate_per_hour });
        }
        let mut events = Vec::new();
        if rate_per_hour > 0.0 {
            let mean_gap_us = 3_600_000_000.0 / rate_per_hour;
            let mut state = seed;
            let mut at = 0.0f64;
            loop {
                // splitmix64 step, mapped to a uniform draw in (0, 1].
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let uniform = ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
                at += -uniform.ln() * mean_gap_us;
                if at >= horizon_us as f64 {
                    break;
                }
                events.push(FaultEvent::ZoneOutage {
                    domain: domain.clone(),
                    start_us: at as FaultTimeUs,
                    duration_us,
                });
            }
        }
        Self::try_new(events)
    }

    /// Overrides the outage notice window.
    #[must_use]
    pub fn with_notice(mut self, notice_us: FaultTimeUs) -> Self {
        self.notice_us = Some(notice_us);
        self
    }

    /// The events, in declaration order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the process carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Grace period between an outage notice and the forced kill.
    pub fn notice_us(&self) -> FaultTimeUs {
        self.notice_us.unwrap_or(Self::DEFAULT_NOTICE_US)
    }
}

/// Why a purchase was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectionCause {
    /// The target domain is inside an active zone outage.
    ZoneOutage,
    /// The target domain is inside an active capacity shortage.
    CapacityShortage,
}

/// The typed error a purchase attempt returns while its target domain is
/// down or short — the caller sees the rejection instead of a silently
/// successful add, and can retry with backoff against another domain.
#[derive(Debug, Clone, PartialEq)]
pub struct PurchaseRejected {
    /// Pool/offering coordinate of the attempted purchase.
    pub type_index: usize,
    /// The domain the purchase targeted.
    pub domain: FailureDomain,
    /// When the attempt was made.
    pub at_us: FaultTimeUs,
    /// Which fault mode rejected it.
    pub cause: RejectionCause,
}

impl fmt::Display for PurchaseRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cause = match self.cause {
            RejectionCause::ZoneOutage => "zone outage",
            RejectionCause::CapacityShortage => "capacity shortage",
        };
        write!(
            f,
            "purchase of type {} rejected at t={}us: {cause} in {}",
            self.type_index, self.at_us, self.domain
        )
    }
}

impl std::error::Error for PurchaseRejected {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_coverage_follows_the_zone_region_hierarchy() {
        let a = FailureDomain::zone("us-east-1", "us-east-1a");
        let b = FailureDomain::zone("us-east-1", "us-east-1b");
        let other = FailureDomain::zone("eu-west-1", "eu-west-1a");
        assert!(a.covers(&a));
        assert!(!a.covers(&b));
        let region = FailureDomain::region("us-east-1");
        assert!(region.covers(&a));
        assert!(region.covers(&b));
        assert!(!region.covers(&other));
        assert_eq!(FailureDomain::default(), FailureDomain::global());
        assert_eq!(a.label(), "us-east-1/us-east-1a");
        assert_eq!(a.to_string(), a.label());
    }

    #[test]
    fn fault_process_validation_catches_degenerate_events() {
        assert_eq!(
            FaultProcess::try_new(vec![FaultEvent::ZoneOutage {
                domain: FailureDomain::global(),
                start_us: 5,
                duration_us: 0,
            }])
            .unwrap_err(),
            FaultError::EmptyOutage
        );
        assert_eq!(
            FaultProcess::try_new(vec![FaultEvent::CapacityShortage {
                domain: FailureDomain::global(),
                start_us: 10,
                end_us: 10,
            }])
            .unwrap_err(),
            FaultError::EmptyShortage
        );
        assert_eq!(
            FaultProcess::try_new(vec![FaultEvent::Straggler {
                at_us: 1,
                offering: 0,
                slowdown: 0.0,
            }])
            .unwrap_err(),
            FaultError::InvalidSlowdown { slowdown: 0.0 }
        );
        assert!(FaultProcess::try_new(vec![FaultEvent::Straggler {
            at_us: 1,
            offering: 0,
            slowdown: 1.0,
        }])
        .is_ok());
    }

    #[test]
    fn fault_process_is_deterministic_plain_data() {
        let events = vec![
            FaultEvent::ZoneOutage {
                domain: FailureDomain::zone("r", "a"),
                start_us: 1_000,
                duration_us: 2_000,
            },
            FaultEvent::Straggler {
                at_us: 500,
                offering: 1,
                slowdown: 0.5,
            },
        ];
        let p = FaultProcess::new(events.clone());
        assert_eq!(p.events(), p.clone().events(), "pure value");
        assert_eq!(p.events(), &events[..]);
        assert_eq!(p.notice_us(), FaultProcess::DEFAULT_NOTICE_US);
        assert_eq!(p.clone().with_notice(77).notice_us(), 77);
        assert!(!p.is_empty());
        assert!(FaultProcess::default().is_empty());
        assert_eq!(events[0].at_us(), 1_000);
        assert_eq!(events[1].at_us(), 500);
    }

    #[test]
    fn poisson_calendar_is_seeded_and_deterministic() {
        let hour = 3_600_000_000u64;
        let a =
            FaultProcess::poisson(4.0, 7, 3 * hour, 60_000_000, FailureDomain::global()).unwrap();
        let b =
            FaultProcess::poisson(4.0, 7, 3 * hour, 60_000_000, FailureDomain::global()).unwrap();
        assert_eq!(a, b, "same seed, same calendar");
        assert!(!a.is_empty(), "a 4/hour process over 3 hours fires");
        // Roughly Poisson: expect ~12 events, accept a wide band.
        assert!((3..=30).contains(&a.events().len()), "{}", a.events().len());
        // Every event is an in-horizon outage with the requested shape.
        for event in a.events() {
            match event {
                FaultEvent::ZoneOutage {
                    start_us,
                    duration_us,
                    ..
                } => {
                    assert!(*start_us < 3 * hour);
                    assert_eq!(*duration_us, 60_000_000);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        // A different seed draws a different calendar.
        let c =
            FaultProcess::poisson(4.0, 8, 3 * hour, 60_000_000, FailureDomain::global()).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_rate_zero_is_the_empty_process() {
        let p = FaultProcess::poisson(0.0, 42, 3_600_000_000, 1, FailureDomain::global()).unwrap();
        assert!(p.is_empty());
        assert_eq!(p, FaultProcess::default());
        assert_eq!(
            FaultProcess::poisson(-1.0, 0, 1, 1, FailureDomain::global()).unwrap_err(),
            FaultError::InvalidRate {
                rate_per_hour: -1.0
            }
        );
        assert!(FaultError::InvalidRate {
            rate_per_hour: -1.0
        }
        .to_string()
        .contains("non-negative"));
    }

    #[test]
    fn purchase_rejected_formats_its_cause() {
        let e = PurchaseRejected {
            type_index: 2,
            domain: FailureDomain::zone("us-east-1", "us-east-1a"),
            at_us: 42,
            cause: RejectionCause::ZoneOutage,
        };
        let text = e.to_string();
        assert!(text.contains("zone outage"));
        assert!(text.contains("us-east-1a"));
    }
}

//! Model variants: the third axis of the Kairos search space.
//!
//! INFaaS's *model-less* abstraction observes that a served model is really a
//! family of interchangeable **variants** — the full-precision reference plus
//! quantized, distilled, or accelerator-compiled derivatives — that trade
//! accuracy for latency and memory.  This module carries that family as data:
//! a [`ModelVariant`] describes one member (its accuracy, memory footprint,
//! and latency relative to the reference), and a validated [`VariantCatalog`]
//! groups the members per [`ModelKind`] with exactly one full-precision
//! *reference* variant per model.
//!
//! The catalogue **lowers** rather than leaks: [`VariantCatalog::effective_models`]
//! flattens (model × variant) into per-variant [`EffectiveModel`] lanes, each
//! with its own concrete [`LatencyTable`], exactly like
//! [`OfferingCatalog::effective_pool`](crate::market::OfferingCatalog::effective_pool)
//! lowers purchase options to a plain pool.  Engines, schedulers, and
//! assignment solvers keep operating on ordinary latency tables and never
//! learn that variants exist.

use crate::latency::{LatencyProfile, LatencyTable};
use crate::mlmodel::{spec, ModelKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Typed construction error for model variants and variant catalogues,
/// mirroring [`CatalogError`](crate::market::CatalogError) /
/// [`LatencyError`](crate::latency::LatencyError): malformed externally
/// supplied variant data is reported, never panicked on.
#[derive(Debug, Clone, PartialEq)]
pub enum VariantError {
    /// The accuracy was not a finite value in (0, 1].
    InvalidAccuracy {
        /// The offending accuracy.
        accuracy: f64,
    },
    /// The memory footprint was zero.
    InvalidMemory {
        /// The offending footprint, in MiB.
        memory_mb: u32,
    },
    /// The latency speedup factor was zero, negative, or not finite.
    InvalidSpeedup {
        /// The offending speedup factor.
        speedup: f64,
    },
    /// A catalogue held no variants at all.
    EmptyCatalog,
    /// Two variants of the same model shared a name.
    DuplicateVariant {
        /// The model both variants derive from.
        base: ModelKind,
        /// The repeated variant name.
        name: String,
    },
    /// A model had no full-precision reference variant.
    NoReference {
        /// The model missing its reference.
        base: ModelKind,
    },
    /// A model had more than one reference variant.
    MultipleReferences {
        /// The over-referenced model.
        base: ModelKind,
    },
    /// A reference variant altered the base latency (a reference must serve
    /// at full precision: unit speedup, no per-type overrides).
    ReferenceNotFullPrecision {
        /// The model whose reference was altered.
        base: ModelKind,
    },
    /// A derived variant claimed higher accuracy than its reference —
    /// quantizing or distilling cannot *gain* accuracy.
    AccuracyAboveReference {
        /// The model the variant derives from.
        base: ModelKind,
        /// The offending variant.
        name: String,
    },
    /// A derived variant claimed a larger memory footprint than its
    /// reference — compression cannot grow the model.
    MemoryAboveReference {
        /// The model the variant derives from.
        base: ModelKind,
        /// The offending variant.
        name: String,
    },
}

impl fmt::Display for VariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantError::InvalidAccuracy { accuracy } => {
                write!(f, "accuracy must be finite and in (0, 1], got {accuracy}")
            }
            VariantError::InvalidMemory { memory_mb } => {
                write!(f, "memory footprint must be positive, got {memory_mb} MiB")
            }
            VariantError::InvalidSpeedup { speedup } => {
                write!(f, "speedup must be finite and positive, got {speedup}")
            }
            VariantError::EmptyCatalog => write!(f, "variant catalogue holds no variants"),
            VariantError::DuplicateVariant { base, name } => {
                write!(f, "model {base} declares variant `{name}` twice")
            }
            VariantError::NoReference { base } => {
                write!(f, "model {base} has no full-precision reference variant")
            }
            VariantError::MultipleReferences { base } => {
                write!(f, "model {base} has more than one reference variant")
            }
            VariantError::ReferenceNotFullPrecision { base } => {
                write!(
                    f,
                    "model {base}'s reference variant must keep the base latency \
                     (unit speedup, no per-type overrides)"
                )
            }
            VariantError::AccuracyAboveReference { base, name } => {
                write!(
                    f,
                    "variant `{name}` of model {base} claims higher accuracy than the reference"
                )
            }
            VariantError::MemoryAboveReference { base, name } => {
                write!(
                    f,
                    "variant `{name}` of model {base} claims a larger footprint than the reference"
                )
            }
        }
    }
}

impl std::error::Error for VariantError {}

/// One member of a model's variant family: a concrete servable artifact with
/// its own accuracy, memory footprint, and latency behaviour.
///
/// Latency is expressed *relative to the reference*: a uniform `speedup`
/// factor divides the base profile's coefficients on every instance type,
/// and explicit per-type [`LatencyProfile`] overrides win over the uniform
/// factor (an accelerator-compiled variant is much faster on the GPU type
/// than its uniform factor suggests, say).  The reference variant must keep
/// the base latency exactly (unit speedup, no overrides) so a
/// reference-only catalogue reproduces the un-varianted system bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelVariant {
    /// Variant name, unique within its model family (e.g. `fp32`, `int8`).
    pub name: String,
    /// The model this variant derives from.
    pub base: ModelKind,
    /// Delivered accuracy in (0, 1]; at most the reference's accuracy.
    pub accuracy: f64,
    /// Resident memory footprint in MiB.
    pub memory_mb: u32,
    /// Uniform latency speedup over the reference (2.0 = twice as fast on
    /// every type).  The reference itself has speedup 1.0.
    pub speedup: f64,
    /// Per-instance-type latency overrides, keyed by instance type name.
    /// An override replaces the uniformly scaled profile for that type.
    pub overrides: HashMap<String, LatencyProfile>,
    /// Whether this is the model's full-precision reference variant.
    pub reference: bool,
}

/// Reference memory footprint per model, in MiB — a plausible resident size
/// for each Table 3 architecture, used by the built-in catalogues.
fn reference_memory_mb(kind: ModelKind) -> u32 {
    match kind {
        ModelKind::Ncf => 512,
        ModelKind::Rm2 => 8_192,
        ModelKind::Wnd => 1_024,
        ModelKind::MtWnd => 1_280,
        ModelKind::Dien => 2_048,
    }
}

impl ModelVariant {
    /// Creates a derived (non-reference) variant, validating every field.
    pub fn try_new(
        name: &str,
        base: ModelKind,
        accuracy: f64,
        memory_mb: u32,
        speedup: f64,
    ) -> Result<Self, VariantError> {
        if !accuracy.is_finite() || accuracy <= 0.0 || accuracy > 1.0 {
            return Err(VariantError::InvalidAccuracy { accuracy });
        }
        if memory_mb == 0 {
            return Err(VariantError::InvalidMemory { memory_mb });
        }
        if !speedup.is_finite() || speedup <= 0.0 {
            return Err(VariantError::InvalidSpeedup { speedup });
        }
        Ok(Self {
            name: name.to_string(),
            base,
            accuracy,
            memory_mb,
            speedup,
            overrides: HashMap::new(),
            reference: false,
        })
    }

    /// The full-precision reference variant of a model: the Table 3 accuracy
    /// ([`ModelSpec::accuracy`](crate::mlmodel::ModelSpec::accuracy)), unit
    /// speedup, no overrides.
    pub fn reference(base: ModelKind) -> Self {
        Self {
            name: "fp32".to_string(),
            base,
            accuracy: spec(base).accuracy,
            memory_mb: reference_memory_mb(base),
            speedup: 1.0,
            overrides: HashMap::new(),
            reference: true,
        }
    }

    /// Adds (or replaces) a per-type latency override.
    ///
    /// # Panics
    /// Panics if called on a reference variant — references must keep the
    /// base latency (use a derived variant for compiled artifacts).
    pub fn with_override(mut self, instance_name: &str, profile: LatencyProfile) -> Self {
        assert!(
            !self.reference,
            "the reference variant must keep the base latency"
        );
        self.overrides.insert(instance_name.to_string(), profile);
        self
    }

    /// The `model/variant` lane label used in figures and switch logs.
    pub fn lane_name(&self) -> String {
        format!("{}/{}", self.base, self.name)
    }

    /// The variant's latency profile on one instance type, given the
    /// reference profile there: an explicit override if present, otherwise
    /// the reference profile with both coefficients divided by `speedup`.
    /// At unit speedup the reference profile is returned unchanged (bit for
    /// bit), which is what makes reference-only lowering exact.
    pub fn profile_on(&self, instance_name: &str, base_profile: LatencyProfile) -> LatencyProfile {
        if let Some(p) = self.overrides.get(instance_name) {
            return *p;
        }
        if self.speedup == 1.0 {
            return base_profile;
        }
        LatencyProfile {
            intercept_ms: base_profile.intercept_ms / self.speedup,
            slope_ms: base_profile.slope_ms / self.speedup,
        }
    }
}

/// One flattened (model, variant) lane: a synthetic model with its own
/// concrete latency table, ready to drop into a `ServiceSpec` — the
/// lowering output consumed by engines and planners that know nothing about
/// variants.
#[derive(Debug, Clone)]
pub struct EffectiveModel {
    /// The model this lane serves.
    pub base: ModelKind,
    /// The variant's name within the family.
    pub variant: String,
    /// Delivered accuracy of the lane.
    pub accuracy: f64,
    /// Resident memory footprint in MiB.
    pub memory_mb: u32,
    /// Whether this lane serves the full-precision reference.
    pub reference: bool,
    /// The lane's own latency table (entries keyed under `base`).
    pub latency: LatencyTable,
}

impl EffectiveModel {
    /// The `model/variant` lane label used in figures and switch logs.
    pub fn lane_name(&self) -> String {
        format!("{}/{}", self.base, self.variant)
    }
}

/// A validated family-of-variants catalogue: per model, exactly one
/// full-precision reference plus any number of derived variants, each less
/// accurate and no larger than the reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantCatalog {
    /// Variants grouped per model, reference first, then accuracy
    /// descending (name as the deterministic tie-break).
    families: Vec<(ModelKind, Vec<ModelVariant>)>,
}

impl VariantCatalog {
    /// Builds a catalogue from a flat variant list, validating the family
    /// structure: at least one variant; per model exactly one reference (at
    /// full precision), unique names, and accuracy/memory monotone vs the
    /// reference.  Families keep [`ModelKind::ALL`] order; variants within
    /// a family are sorted reference-first then accuracy-descending.
    pub fn try_new(variants: Vec<ModelVariant>) -> Result<Self, VariantError> {
        if variants.is_empty() {
            return Err(VariantError::EmptyCatalog);
        }
        for v in &variants {
            // Re-validate fields so hand-built structs go through the same
            // gate as `try_new`-constructed ones.
            if !v.accuracy.is_finite() || v.accuracy <= 0.0 || v.accuracy > 1.0 {
                return Err(VariantError::InvalidAccuracy {
                    accuracy: v.accuracy,
                });
            }
            if v.memory_mb == 0 {
                return Err(VariantError::InvalidMemory {
                    memory_mb: v.memory_mb,
                });
            }
            if !v.speedup.is_finite() || v.speedup <= 0.0 {
                return Err(VariantError::InvalidSpeedup { speedup: v.speedup });
            }
            if v.reference && (v.speedup != 1.0 || !v.overrides.is_empty()) {
                return Err(VariantError::ReferenceNotFullPrecision { base: v.base });
            }
        }
        let mut families: Vec<(ModelKind, Vec<ModelVariant>)> = Vec::new();
        for kind in ModelKind::ALL {
            let family: Vec<ModelVariant> = variants
                .iter()
                .filter(|v| v.base == kind)
                .cloned()
                .collect();
            if family.is_empty() {
                continue;
            }
            for (i, v) in family.iter().enumerate() {
                if family[i + 1..].iter().any(|w| w.name == v.name) {
                    return Err(VariantError::DuplicateVariant {
                        base: kind,
                        name: v.name.clone(),
                    });
                }
            }
            let mut refs = family.iter().filter(|v| v.reference);
            let Some(reference) = refs.next() else {
                return Err(VariantError::NoReference { base: kind });
            };
            if refs.next().is_some() {
                return Err(VariantError::MultipleReferences { base: kind });
            }
            for v in &family {
                if !v.reference && v.accuracy > reference.accuracy {
                    return Err(VariantError::AccuracyAboveReference {
                        base: kind,
                        name: v.name.clone(),
                    });
                }
                if !v.reference && v.memory_mb > reference.memory_mb {
                    return Err(VariantError::MemoryAboveReference {
                        base: kind,
                        name: v.name.clone(),
                    });
                }
            }
            let mut sorted = family;
            sorted.sort_by(|a, b| {
                b.reference
                    .cmp(&a.reference)
                    .then(b.accuracy.total_cmp(&a.accuracy))
                    .then(a.name.cmp(&b.name))
            });
            families.push((kind, sorted));
        }
        Ok(Self { families })
    }

    /// A catalogue holding only each model's full-precision reference — the
    /// degenerate family under which every variant-aware component must
    /// reproduce the un-varianted system bit for bit.
    pub fn reference_only(models: &[ModelKind]) -> Self {
        Self::try_new(models.iter().map(|&k| ModelVariant::reference(k)).collect())
            .expect("reference variants are always valid")
    }

    /// The demonstration catalogue used by figures and examples: per model,
    /// the full-precision reference plus an `int8` post-training-quantized
    /// variant (~1.5 points of accuracy for ~1.8x speed) and a `distilled`
    /// student (~4 points for ~2.8x).
    pub fn paper_variants() -> Self {
        let mut variants = Vec::new();
        for kind in ModelKind::ALL {
            let reference = ModelVariant::reference(kind);
            let int8 = ModelVariant::try_new(
                "int8",
                kind,
                reference.accuracy - 0.015,
                (reference.memory_mb / 4).max(1),
                1.8,
            )
            .expect("int8 variant is valid");
            let distilled = ModelVariant::try_new(
                "distilled",
                kind,
                reference.accuracy - 0.04,
                (reference.memory_mb / 8).max(1),
                2.8,
            )
            .expect("distilled variant is valid");
            variants.push(reference);
            variants.push(int8);
            variants.push(distilled);
        }
        Self::try_new(variants).expect("the demonstration catalogue is valid")
    }

    /// The models with a family in this catalogue, in [`ModelKind::ALL`]
    /// order.
    pub fn models(&self) -> Vec<ModelKind> {
        self.families.iter().map(|(k, _)| *k).collect()
    }

    /// A model's family, reference first then accuracy descending; empty if
    /// the catalogue does not cover the model.
    pub fn variants_for(&self, base: ModelKind) -> &[ModelVariant] {
        self.families
            .iter()
            .find(|(k, _)| *k == base)
            .map(|(_, f)| f.as_slice())
            .unwrap_or(&[])
    }

    /// A model's full-precision reference variant, if the catalogue covers
    /// the model.
    pub fn reference(&self, base: ModelKind) -> Option<&ModelVariant> {
        self.variants_for(base).iter().find(|v| v.reference)
    }

    /// Total number of variants across all families.
    pub fn len(&self) -> usize {
        self.families.iter().map(|(_, f)| f.len()).sum()
    }

    /// Whether the catalogue is empty (it never is: construction rejects
    /// empty input).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// **The lowering step.**  Flattens (model × variant) into synthetic
    /// per-variant model lanes: every lane carries its own concrete
    /// [`LatencyTable`] derived from `base` (the calibrated reference
    /// table), with the variant's uniform speedup applied per type and
    /// explicit overrides winning.  Downstream engines, schedulers, and
    /// assignment solvers consume the lanes as ordinary models and run
    /// unchanged — the exact trick
    /// [`OfferingCatalog::effective_pool`](crate::market::OfferingCatalog::effective_pool)
    /// plays for purchase options.
    ///
    /// Lanes come out family by family in [`ModelKind::ALL`] order,
    /// reference lane first within each family.  A reference lane's table is
    /// a verbatim copy of the base table's entries for its model.
    pub fn effective_models(&self, base: &LatencyTable) -> Vec<EffectiveModel> {
        let mut lanes = Vec::with_capacity(self.len());
        for (kind, family) in &self.families {
            // The base table's entries for this model, in deterministic
            // (sorted-by-type-name) order.
            let mut entries: Vec<(&str, LatencyProfile)> = base
                .iter()
                .filter(|(m, _, _)| m == kind)
                .map(|(_, n, p)| (n, p))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            for variant in family {
                let mut latency = LatencyTable::new();
                for &(name, profile) in &entries {
                    latency.insert(*kind, name, variant.profile_on(name, profile));
                }
                lanes.push(EffectiveModel {
                    base: *kind,
                    variant: variant.name.clone(),
                    accuracy: variant.accuracy,
                    memory_mb: variant.memory_mb,
                    reference: variant.reference,
                    latency,
                });
            }
        }
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::paper_calibration;
    use crate::instance::ec2;

    fn pool_names() -> Vec<String> {
        ec2::paper_pool().into_iter().map(|t| t.name).collect()
    }

    #[test]
    fn reference_variant_carries_the_published_accuracy() {
        for kind in ModelKind::ALL {
            let r = ModelVariant::reference(kind);
            assert!(r.reference);
            assert_eq!(r.accuracy, spec(kind).accuracy);
            assert_eq!(r.speedup, 1.0);
            assert!(r.overrides.is_empty());
        }
    }

    #[test]
    fn try_new_rejects_malformed_fields() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                ModelVariant::try_new("x", ModelKind::Wnd, bad, 64, 2.0),
                Err(VariantError::InvalidAccuracy { .. })
            ));
        }
        assert!(matches!(
            ModelVariant::try_new("x", ModelKind::Wnd, 0.9, 0, 2.0),
            Err(VariantError::InvalidMemory { .. })
        ));
        for bad in [0.0, -1.0, f64::INFINITY] {
            assert!(matches!(
                ModelVariant::try_new("x", ModelKind::Wnd, 0.9, 64, bad),
                Err(VariantError::InvalidSpeedup { .. })
            ));
        }
        assert!(ModelVariant::try_new("x", ModelKind::Wnd, 0.9, 64, 2.0).is_ok());
    }

    #[test]
    fn catalog_enforces_the_family_structure() {
        assert_eq!(
            VariantCatalog::try_new(Vec::new()),
            Err(VariantError::EmptyCatalog)
        );
        // No reference.
        let derived = ModelVariant::try_new("int8", ModelKind::Wnd, 0.9, 64, 2.0).unwrap();
        assert_eq!(
            VariantCatalog::try_new(vec![derived.clone()]),
            Err(VariantError::NoReference {
                base: ModelKind::Wnd
            })
        );
        // Two references.
        assert_eq!(
            VariantCatalog::try_new(vec![
                ModelVariant::reference(ModelKind::Wnd),
                ModelVariant::reference(ModelKind::Wnd),
            ]),
            Err(VariantError::DuplicateVariant {
                base: ModelKind::Wnd,
                name: "fp32".to_string()
            })
        );
        let mut second = ModelVariant::reference(ModelKind::Wnd);
        second.name = "fp32-copy".to_string();
        assert_eq!(
            VariantCatalog::try_new(vec![ModelVariant::reference(ModelKind::Wnd), second]),
            Err(VariantError::MultipleReferences {
                base: ModelKind::Wnd
            })
        );
        // Duplicate derived names.
        assert_eq!(
            VariantCatalog::try_new(vec![
                ModelVariant::reference(ModelKind::Wnd),
                derived.clone(),
                derived.clone(),
            ]),
            Err(VariantError::DuplicateVariant {
                base: ModelKind::Wnd,
                name: "int8".to_string()
            })
        );
        // A tampered reference (speedup != 1) is rejected.
        let mut fast_ref = ModelVariant::reference(ModelKind::Wnd);
        fast_ref.speedup = 2.0;
        assert_eq!(
            VariantCatalog::try_new(vec![fast_ref]),
            Err(VariantError::ReferenceNotFullPrecision {
                base: ModelKind::Wnd
            })
        );
        // Accuracy above the reference is rejected.
        let eager = ModelVariant::try_new("magic", ModelKind::Wnd, 0.999, 64, 2.0).unwrap();
        assert_eq!(
            VariantCatalog::try_new(vec![ModelVariant::reference(ModelKind::Wnd), eager]),
            Err(VariantError::AccuracyAboveReference {
                base: ModelKind::Wnd,
                name: "magic".to_string()
            })
        );
        // Memory above the reference is rejected.
        let bloated = ModelVariant::try_new("bloat", ModelKind::Wnd, 0.9, 1_000_000, 2.0).unwrap();
        assert_eq!(
            VariantCatalog::try_new(vec![ModelVariant::reference(ModelKind::Wnd), bloated]),
            Err(VariantError::MemoryAboveReference {
                base: ModelKind::Wnd,
                name: "bloat".to_string()
            })
        );
        // A well-formed family validates and sorts reference-first.
        let ok = VariantCatalog::try_new(vec![derived, ModelVariant::reference(ModelKind::Wnd)])
            .unwrap();
        assert_eq!(ok.len(), 2);
        assert!(ok.variants_for(ModelKind::Wnd)[0].reference);
        assert_eq!(ok.reference(ModelKind::Wnd).unwrap().name, "fp32");
    }

    #[test]
    fn effective_models_lower_reference_lanes_verbatim() {
        let table = paper_calibration();
        let catalog = VariantCatalog::reference_only(&ModelKind::ALL);
        let lanes = catalog.effective_models(&table);
        assert_eq!(lanes.len(), 5);
        for (lane, kind) in lanes.iter().zip(ModelKind::ALL) {
            assert_eq!(lane.base, kind);
            assert!(lane.reference);
            for name in pool_names() {
                let base = table.expect(kind, &name);
                let lowered = lane.latency.expect(kind, &name);
                assert_eq!(base.intercept_ms.to_bits(), lowered.intercept_ms.to_bits());
                assert_eq!(base.slope_ms.to_bits(), lowered.slope_ms.to_bits());
            }
        }
    }

    #[test]
    fn effective_models_scale_derived_lanes_and_apply_overrides() {
        let table = paper_calibration();
        let compiled = ModelVariant::try_new("compiled", ModelKind::Wnd, 0.95, 128, 2.0)
            .unwrap()
            .with_override("g4dn.xlarge", LatencyProfile::new(0.125, 0.001));
        let catalog =
            VariantCatalog::try_new(vec![ModelVariant::reference(ModelKind::Wnd), compiled])
                .unwrap();
        let lanes = catalog.effective_models(&table);
        assert_eq!(lanes.len(), 2);
        let lane = &lanes[1];
        assert_eq!(lane.variant, "compiled");
        assert_eq!(lane.lane_name(), "WND/compiled");
        // Overridden type: the explicit profile wins.
        let gpu = lane.latency.expect(ModelKind::Wnd, "g4dn.xlarge");
        assert_eq!(gpu.intercept_ms, 0.125);
        assert_eq!(gpu.slope_ms, 0.001);
        // Non-overridden types: uniformly scaled by 1/speedup.
        let base = table.expect(ModelKind::Wnd, "r5n.large");
        let scaled = lane.latency.expect(ModelKind::Wnd, "r5n.large");
        assert!((scaled.intercept_ms - base.intercept_ms / 2.0).abs() < 1e-12);
        assert!((scaled.slope_ms - base.slope_ms / 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_variants_catalogue_is_valid_and_ordered() {
        let catalog = VariantCatalog::paper_variants();
        assert_eq!(catalog.models(), ModelKind::ALL.to_vec());
        assert_eq!(catalog.len(), 15);
        assert!(!catalog.is_empty());
        for kind in ModelKind::ALL {
            let family = catalog.variants_for(kind);
            assert_eq!(family.len(), 3);
            assert!(family[0].reference);
            // Accuracy strictly descends: fp32 > int8 > distilled.
            assert!(family[0].accuracy > family[1].accuracy);
            assert!(family[1].accuracy > family[2].accuracy);
            assert_eq!(family[1].name, "int8");
            assert_eq!(family[2].name, "distilled");
        }
    }
}

//! Serverless container economics: cold-start profiles and keep-alive
//! policies.
//!
//! Kairos' baseline billing model rents every instance from provisioning
//! until retirement, so a replica serving a low-QPS model burns money while
//! idle and the system can never scale a lane to zero.  The serverless lane
//! flips that: an instance idle past its *keep-alive* deadline is **parked**
//! (the container is torn down and billing stops), and the next dispatch to
//! a parked container pays a *cold start* — container init plus model load —
//! before service begins.  This module is the vocabulary of that trade-off:
//!
//! * a [`ColdStartProfile`] prices the cold start per instance type (a GPU
//!   box loads a model far slower than it serves a query);
//! * a [`KeepAlivePolicy`] decides how long an idle container survives:
//!   [`Fixed`](KeepAlivePolicy::Fixed) keeps it warm for a constant window,
//!   while [`Hybrid`](KeepAlivePolicy::Hybrid) keeps a histogram of the
//!   idle gaps that *ended in reuse* and parks at a percentile of that
//!   distribution — the histogram-of-idle-times policy of dslab-faas'
//!   `coldstart.rs`, which adapts the window per workload instead of
//!   guessing one constant for hot and sparse lanes alike;
//! * an [`IdleHistogram`] is the observation state the hybrid policy reads.
//!
//! Like the fault and market processes, everything here is plain validated
//! data: policies carry no clock and no RNG, so a replay under the same
//! policy is reproducible bit-for-bit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Microseconds of virtual time (mirrors `kairos_workload::TimeUs`).
pub type ServerlessTimeUs = u64;

/// Cost of materializing one cold container on an instance type: the
/// container/runtime init plus loading the model replica into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColdStartCost {
    /// Container and runtime initialization, in µs of virtual time.
    pub container_init_us: ServerlessTimeUs,
    /// Loading the model replica into the container, in µs.
    pub model_load_us: ServerlessTimeUs,
}

impl ColdStartCost {
    /// A cold-start cost from its two phases.
    pub fn new(container_init_us: ServerlessTimeUs, model_load_us: ServerlessTimeUs) -> Self {
        Self {
            container_init_us,
            model_load_us,
        }
    }

    /// Total latency a dispatch to a parked container pays before service.
    pub fn total_us(&self) -> ServerlessTimeUs {
        self.container_init_us + self.model_load_us
    }
}

/// Per-instance-type cold-start pricing: either one uniform
/// [`ColdStartCost`] for every type, or exactly one per pool type (in pool
/// order) — the same one-or-one-per-type shape as the sharing degradation
/// curves.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColdStartProfile {
    costs: Vec<ColdStartCost>,
}

impl ColdStartProfile {
    /// One cold-start cost applied to every instance type.
    pub fn uniform(cost: ColdStartCost) -> Self {
        Self { costs: vec![cost] }
    }

    /// One cold-start cost per pool type, in pool order.
    ///
    /// # Panics
    /// Panics if `costs` is empty.
    pub fn per_type(costs: Vec<ColdStartCost>) -> Self {
        assert!(
            !costs.is_empty(),
            "a cold-start profile needs at least one cost entry"
        );
        Self { costs }
    }

    /// Number of cost entries (1 for a uniform profile).
    pub fn num_entries(&self) -> usize {
        self.costs.len()
    }

    /// The cold-start cost of instance type `type_index` (uniform profiles
    /// answer for every index).
    ///
    /// # Panics
    /// Panics if the profile is per-type and `type_index` is out of range.
    pub fn cost(&self, type_index: usize) -> ColdStartCost {
        if self.costs.len() == 1 {
            self.costs[0]
        } else {
            self.costs[type_index]
        }
    }
}

/// A typed validation error from the [`KeepAlivePolicy`] constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerlessError {
    /// A fixed keep-alive window of zero would park a container the instant
    /// it goes idle *and* the instant it is created — degenerate thrashing.
    ZeroKeepAlive,
    /// A hybrid policy's histogram had no buckets.
    NoBuckets,
    /// A hybrid policy's histogram bucket width was zero.
    ZeroBucketWidth,
    /// A hybrid policy's percentile was outside `(0, 1]` or not finite.
    InvalidPercentile {
        /// The offending percentile.
        percentile: f64,
    },
}

impl fmt::Display for ServerlessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerlessError::ZeroKeepAlive => {
                write!(f, "fixed keep-alive window must be positive")
            }
            ServerlessError::NoBuckets => {
                write!(f, "hybrid keep-alive histogram needs at least one bucket")
            }
            ServerlessError::ZeroBucketWidth => {
                write!(f, "hybrid keep-alive bucket width must be positive")
            }
            ServerlessError::InvalidPercentile { percentile } => {
                write!(
                    f,
                    "hybrid keep-alive percentile must lie in (0, 1], got {percentile}"
                )
            }
        }
    }
}

impl std::error::Error for ServerlessError {}

/// How long an idle container survives before it is parked.
///
/// Built through the validating constructors [`KeepAlivePolicy::fixed`] and
/// [`KeepAlivePolicy::hybrid`]; the fields are public so policies remain
/// plain inspectable data, but hand-built degenerate values (zero windows,
/// percentiles outside `(0, 1]`) are rejected at construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KeepAlivePolicy {
    /// Park after a constant idle window.
    Fixed {
        /// Idle time after which the container is parked, in µs (positive).
        idle_us: ServerlessTimeUs,
    },
    /// Park at a percentile of the observed idle-gap distribution: the
    /// engine records every idle gap that ended in a reuse into an
    /// [`IdleHistogram`], and the keep-alive window is the smallest bucket
    /// boundary covering `percentile` of those observations.  Until the
    /// histogram has observations the window defaults to the histogram's
    /// full span (`bucket_width_us × num_buckets`) — keep warm while
    /// learning, then tighten.
    Hybrid {
        /// Width of one histogram bucket, in µs (positive).
        bucket_width_us: ServerlessTimeUs,
        /// Number of histogram buckets (positive); gaps beyond the span
        /// land in the last bucket.
        num_buckets: usize,
        /// Fraction of observed idle gaps the window must cover, in
        /// `(0, 1]`.
        percentile: f64,
    },
}

impl KeepAlivePolicy {
    /// A validated fixed keep-alive window.
    pub fn fixed(idle_us: ServerlessTimeUs) -> Result<Self, ServerlessError> {
        if idle_us == 0 {
            return Err(ServerlessError::ZeroKeepAlive);
        }
        Ok(Self::Fixed { idle_us })
    }

    /// A validated hybrid (histogram-of-idle-times) policy.
    pub fn hybrid(
        bucket_width_us: ServerlessTimeUs,
        num_buckets: usize,
        percentile: f64,
    ) -> Result<Self, ServerlessError> {
        if num_buckets == 0 {
            return Err(ServerlessError::NoBuckets);
        }
        if bucket_width_us == 0 {
            return Err(ServerlessError::ZeroBucketWidth);
        }
        if !(percentile.is_finite() && percentile > 0.0 && percentile <= 1.0) {
            return Err(ServerlessError::InvalidPercentile { percentile });
        }
        Ok(Self::Hybrid {
            bucket_width_us,
            num_buckets,
            percentile,
        })
    }

    /// The observation state this policy reads: a sized histogram for
    /// hybrid policies, an empty placeholder for fixed ones.
    pub fn histogram(&self) -> IdleHistogram {
        match self {
            Self::Fixed { .. } => IdleHistogram::new(1, 1),
            Self::Hybrid {
                bucket_width_us,
                num_buckets,
                ..
            } => IdleHistogram::new(*bucket_width_us, *num_buckets),
        }
    }

    /// The keep-alive window to grant an idle container now, given the
    /// observations so far.
    pub fn keep_alive_us(&self, observed: &IdleHistogram) -> ServerlessTimeUs {
        match self {
            Self::Fixed { idle_us } => *idle_us,
            Self::Hybrid { percentile, .. } => observed
                .percentile_us(*percentile)
                .unwrap_or_else(|| observed.span_us()),
        }
    }

    /// A deterministic fingerprint of the policy's parameters (FNV-1a), for
    /// folding the policy into plan-cache knowledge signatures: two policies
    /// fingerprint equal iff their parameters are equal.
    pub fn signature_bits(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        match self {
            Self::Fixed { idle_us } => {
                mix(1);
                mix(*idle_us);
            }
            Self::Hybrid {
                bucket_width_us,
                num_buckets,
                percentile,
            } => {
                mix(2);
                mix(*bucket_width_us);
                mix(*num_buckets as u64);
                mix(percentile.to_bits());
            }
        }
        hash
    }
}

/// Histogram of idle gaps that ended in a container reuse — the observation
/// state behind [`KeepAlivePolicy::Hybrid`].  Gap `g` lands in bucket
/// `min(g / bucket_width_us, num_buckets - 1)`; the percentile query answers
/// the upper edge of the first bucket whose cumulative count covers the
/// requested fraction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleHistogram {
    bucket_width_us: ServerlessTimeUs,
    counts: Vec<u64>,
    total: u64,
}

impl IdleHistogram {
    /// An empty histogram of `num_buckets` buckets, each `bucket_width_us`
    /// wide.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(bucket_width_us: ServerlessTimeUs, num_buckets: usize) -> Self {
        assert!(bucket_width_us > 0, "bucket width must be positive");
        assert!(num_buckets > 0, "need at least one bucket");
        Self {
            bucket_width_us,
            counts: vec![0; num_buckets],
            total: 0,
        }
    }

    /// Records one observed idle gap (µs).  Gaps beyond the span land in
    /// the last bucket.
    pub fn record(&mut self, idle_us: ServerlessTimeUs) {
        let bucket = ((idle_us / self.bucket_width_us) as usize).min(self.counts.len() - 1);
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The histogram's full span in µs (`bucket_width × buckets`) — the
    /// keep-warm-while-learning default of the hybrid policy.
    pub fn span_us(&self) -> ServerlessTimeUs {
        self.bucket_width_us * self.counts.len() as ServerlessTimeUs
    }

    /// The upper edge of the first bucket whose cumulative count reaches
    /// `percentile` of all observations, or `None` when nothing has been
    /// recorded yet.
    pub fn percentile_us(&self, percentile: f64) -> Option<ServerlessTimeUs> {
        if self.total == 0 {
            return None;
        }
        let needed = (percentile * self.total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= needed {
                return Some(self.bucket_width_us * (bucket as ServerlessTimeUs + 1));
            }
        }
        Some(self.span_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_profile_uniform_answers_for_every_type() {
        let profile = ColdStartProfile::uniform(ColdStartCost::new(150_000, 350_000));
        assert_eq!(profile.num_entries(), 1);
        assert_eq!(profile.cost(0).total_us(), 500_000);
        assert_eq!(profile.cost(7).total_us(), 500_000);
        let per_type = ColdStartProfile::per_type(vec![
            ColdStartCost::new(100_000, 200_000),
            ColdStartCost::new(50_000, 100_000),
        ]);
        assert_eq!(per_type.cost(1).total_us(), 150_000);
    }

    #[test]
    #[should_panic(expected = "at least one cost entry")]
    fn empty_cold_start_profile_rejected() {
        ColdStartProfile::per_type(vec![]);
    }

    #[test]
    fn keep_alive_constructors_validate() {
        assert_eq!(
            KeepAlivePolicy::fixed(0).unwrap_err(),
            ServerlessError::ZeroKeepAlive
        );
        assert!(KeepAlivePolicy::fixed(10_000_000).is_ok());
        assert_eq!(
            KeepAlivePolicy::hybrid(1_000_000, 0, 0.9).unwrap_err(),
            ServerlessError::NoBuckets
        );
        assert_eq!(
            KeepAlivePolicy::hybrid(0, 10, 0.9).unwrap_err(),
            ServerlessError::ZeroBucketWidth
        );
        assert_eq!(
            KeepAlivePolicy::hybrid(1_000_000, 10, 1.5).unwrap_err(),
            ServerlessError::InvalidPercentile { percentile: 1.5 }
        );
        assert_eq!(
            KeepAlivePolicy::hybrid(1_000_000, 10, 0.0).unwrap_err(),
            ServerlessError::InvalidPercentile { percentile: 0.0 }
        );
        assert!(KeepAlivePolicy::hybrid(1_000_000, 10, 1.0).is_ok());
        // Errors format.
        assert!(ServerlessError::ZeroKeepAlive.to_string().contains("fixed"));
    }

    #[test]
    fn fixed_policy_window_is_constant() {
        let policy = KeepAlivePolicy::fixed(10_000_000).unwrap();
        let mut hist = policy.histogram();
        assert_eq!(policy.keep_alive_us(&hist), 10_000_000);
        hist.record(123);
        assert_eq!(policy.keep_alive_us(&hist), 10_000_000);
    }

    #[test]
    fn hybrid_policy_learns_the_idle_gap_percentile() {
        let policy = KeepAlivePolicy::hybrid(1_000_000, 60, 0.9).unwrap();
        let mut hist = policy.histogram();
        // No observations yet: keep warm for the whole span.
        assert_eq!(policy.keep_alive_us(&hist), 60_000_000);
        // Ten gaps of ~2 s, one of ~30 s: the 90th percentile sits at the
        // 2-3 s bucket edge.
        for _ in 0..10 {
            hist.record(2_100_000);
        }
        hist.record(30_500_000);
        assert_eq!(hist.total(), 11);
        assert_eq!(policy.keep_alive_us(&hist), 3_000_000);
        // Covering everything reaches the long gap's bucket edge.
        assert_eq!(hist.percentile_us(1.0), Some(31_000_000));
    }

    #[test]
    fn histogram_clamps_overflow_gaps_to_the_last_bucket() {
        let mut hist = IdleHistogram::new(1_000, 4);
        hist.record(1_000_000); // far beyond the 4 ms span
        assert_eq!(hist.percentile_us(1.0), Some(4_000));
        assert_eq!(hist.span_us(), 4_000);
    }

    #[test]
    fn signature_bits_distinguish_policies() {
        let a = KeepAlivePolicy::fixed(10_000_000).unwrap();
        let b = KeepAlivePolicy::fixed(60_000_000).unwrap();
        let c = KeepAlivePolicy::hybrid(1_000_000, 60, 0.9).unwrap();
        let d = KeepAlivePolicy::hybrid(1_000_000, 60, 0.95).unwrap();
        let bits = [
            a.signature_bits(),
            b.signature_bits(),
            c.signature_bits(),
            d.signature_bits(),
        ];
        for i in 0..bits.len() {
            for j in i + 1..bits.len() {
                assert_ne!(bits[i], bits[j], "policies {i} and {j} collide");
            }
        }
        assert_eq!(
            a.signature_bits(),
            KeepAlivePolicy::fixed(10_000_000).unwrap().signature_bits()
        );
    }
}

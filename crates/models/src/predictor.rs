//! Online latency prediction (paper Sec. 5.1, "Remarks on assumptions and
//! overhead").
//!
//! Kairos needs the `L` matrix entries — the predicted latency of every queued
//! query on every instance — but it does not assume any offline profiling.
//! Instead it "starts with a linear model but does not rely on the model
//! accuracy because it will quickly transition into a lookup table after
//! processing more queries".  This module implements exactly that: a
//! per-instance-type predictor that
//!
//! 1. records every observed `(batch size, latency)` pair,
//! 2. answers exact-batch-size queries from a lookup table of observed means,
//! 3. falls back to an online least-squares linear fit for unseen batch sizes,
//! 4. and, before it has seen at least two distinct batch sizes, falls back to
//!    an optional prior profile (or a conservative default).

use crate::latency::LatencyProfile;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Online latency predictor for a single (model, instance type) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlinePredictor {
    /// Sum statistics for the least-squares fit.
    n: f64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
    /// Mean observed latency per exact batch size (the lookup table).
    observed: HashMap<u32, (f64, u32)>,
    /// Optional prior used before enough observations are available.
    prior: Option<LatencyProfile>,
}

impl OnlinePredictor {
    /// Creates a predictor with no prior knowledge.
    pub fn new() -> Self {
        Self {
            n: 0.0,
            sum_x: 0.0,
            sum_y: 0.0,
            sum_xx: 0.0,
            sum_xy: 0.0,
            observed: HashMap::new(),
            prior: None,
        }
    }

    /// Creates a predictor seeded with a prior latency profile (used when a
    /// rough estimate is available, e.g. from a sibling instance type).
    pub fn with_prior(prior: LatencyProfile) -> Self {
        let mut p = Self::new();
        p.prior = Some(prior);
        p
    }

    /// Records an observed query: batch size and measured latency (ms).
    pub fn observe(&mut self, batch: u32, latency_ms: f64) {
        assert!(
            latency_ms.is_finite() && latency_ms > 0.0,
            "latency must be positive"
        );
        let x = batch as f64;
        self.n += 1.0;
        self.sum_x += x;
        self.sum_y += latency_ms;
        self.sum_xx += x * x;
        self.sum_xy += x * latency_ms;
        let entry = self.observed.entry(batch).or_insert((0.0, 0));
        entry.1 += 1;
        // Running mean of observations for this exact batch size.
        entry.0 += (latency_ms - entry.0) / entry.1 as f64;
    }

    /// Number of observations recorded so far.
    pub fn observations(&self) -> u64 {
        self.n as u64
    }

    /// Number of distinct batch sizes in the lookup table.
    pub fn distinct_batches(&self) -> usize {
        self.observed.len()
    }

    /// Whether the linear model can be fit (at least two distinct batch sizes).
    pub fn has_fit(&self) -> bool {
        self.distinct_batches() >= 2
    }

    /// The current least-squares linear fit `(intercept_ms, slope_ms)`, if a
    /// fit is possible.
    pub fn linear_fit(&self) -> Option<(f64, f64)> {
        if !self.has_fit() {
            return None;
        }
        let denom = self.n * self.sum_xx - self.sum_x * self.sum_x;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (self.n * self.sum_xy - self.sum_x * self.sum_y) / denom;
        let intercept = (self.sum_y - slope * self.sum_x) / self.n;
        Some((intercept, slope))
    }

    /// Predicts the latency (ms) of a query with the given batch size.
    ///
    /// Resolution order: exact lookup-table hit → linear fit → prior →
    /// conservative default (1 ms + 1 ms per request) so the scheduler always
    /// has *some* number to work with during the first few queries.
    pub fn predict(&self, batch: u32) -> f64 {
        if let Some(&(mean, _)) = self.observed.get(&batch) {
            return mean;
        }
        if let Some((intercept, slope)) = self.linear_fit() {
            let estimate = intercept + slope * batch as f64;
            if estimate > 0.0 {
                return estimate;
            }
        }
        if let Some(prior) = self.prior {
            return prior.latency_ms(batch);
        }
        1.0 + batch as f64
    }

    /// Mean absolute relative error of the predictor against a ground-truth
    /// profile, evaluated on the given batch sizes (used in tests and the
    /// noise-robustness experiments).
    pub fn relative_error_against(&self, truth: &LatencyProfile, batches: &[u32]) -> f64 {
        assert!(!batches.is_empty(), "need at least one batch size");
        let mut total = 0.0;
        for &b in batches {
            let t = truth.latency_ms(b);
            total += ((self.predict(b) - t) / t).abs();
        }
        total / batches.len() as f64
    }
}

impl Default for OnlinePredictor {
    fn default() -> Self {
        Self::new()
    }
}

/// A bank of online predictors, one per instance-type name, as held by the
/// Kairos central controller.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PredictorBank {
    predictors: HashMap<String, OnlinePredictor>,
}

impl PredictorBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observation for an instance type.  The common case (type
    /// already known) is a plain map lookup: the name is only copied into an
    /// owned `String` on the *first* observation of a type, so the
    /// per-completion hot path allocates nothing.
    pub fn observe(&mut self, instance_name: &str, batch: u32, latency_ms: f64) {
        if let Some(predictor) = self.predictors.get_mut(instance_name) {
            predictor.observe(batch, latency_ms);
        } else {
            let mut predictor = OnlinePredictor::new();
            predictor.observe(batch, latency_ms);
            self.predictors.insert(instance_name.to_string(), predictor);
        }
    }

    /// Predicts latency for a batch on an instance type (conservative default
    /// when the type has never been observed).
    pub fn predict(&self, instance_name: &str, batch: u32) -> f64 {
        self.predictors
            .get(instance_name)
            .map(|p| p.predict(batch))
            .unwrap_or(1.0 + batch as f64)
    }

    /// Access the predictor of one instance type, if it exists.
    pub fn get(&self, instance_name: &str) -> Option<&OnlinePredictor> {
        self.predictors.get(instance_name)
    }

    /// Total number of observations across all instance types.
    pub fn total_observations(&self) -> u64 {
        self.predictors.values().map(|p| p.observations()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_table_takes_precedence_over_fit() {
        let mut p = OnlinePredictor::new();
        p.observe(10, 5.0);
        p.observe(20, 9.0);
        p.observe(10, 7.0); // mean for batch 10 becomes 6.0
        assert!((p.predict(10) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_exact_linear_data() {
        let mut p = OnlinePredictor::new();
        let truth = LatencyProfile::new(3.0, 0.25);
        for b in [1u32, 5, 17, 40, 100, 400] {
            p.observe(b, truth.latency_ms(b));
        }
        let (intercept, slope) = p.linear_fit().unwrap();
        assert!((intercept - 3.0).abs() < 1e-6);
        assert!((slope - 0.25).abs() < 1e-9);
        // Unseen batch size is predicted through the fit.
        assert!((p.predict(250) - truth.latency_ms(250)).abs() < 1e-6);
        assert!(p.relative_error_against(&truth, &[2, 33, 750]) < 1e-6);
    }

    #[test]
    fn no_fit_with_single_batch_size() {
        let mut p = OnlinePredictor::new();
        p.observe(64, 10.0);
        p.observe(64, 10.0);
        assert!(!p.has_fit());
        assert!(p.linear_fit().is_none());
        // Exact batch still answered from the table.
        assert_eq!(p.predict(64), 10.0);
    }

    #[test]
    fn prior_used_before_observations() {
        let p = OnlinePredictor::with_prior(LatencyProfile::new(2.0, 0.5));
        assert!((p.predict(10) - 7.0).abs() < 1e-9);
        let q = OnlinePredictor::new();
        assert_eq!(q.predict(10), 11.0); // conservative default
    }

    #[test]
    fn observations_counter() {
        let mut p = OnlinePredictor::new();
        assert_eq!(p.observations(), 0);
        p.observe(1, 1.0);
        p.observe(2, 2.0);
        assert_eq!(p.observations(), 2);
        assert_eq!(p.distinct_batches(), 2);
    }

    #[test]
    #[should_panic(expected = "latency must be positive")]
    fn rejects_nonpositive_latency() {
        OnlinePredictor::new().observe(1, 0.0);
    }

    #[test]
    fn bank_tracks_per_instance_predictors() {
        let mut bank = PredictorBank::new();
        bank.observe("g4dn.xlarge", 100, 20.0);
        bank.observe("g4dn.xlarge", 200, 35.0);
        bank.observe("r5n.large", 100, 80.0);
        assert_eq!(bank.total_observations(), 3);
        assert!(bank.predict("g4dn.xlarge", 100) < bank.predict("r5n.large", 100));
        // Unknown instance types fall back to the conservative default.
        assert_eq!(bank.predict("unknown", 5), 6.0);
        assert!(bank.get("g4dn.xlarge").unwrap().has_fit());
    }
}

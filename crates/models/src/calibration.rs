//! Calibrated latency table for the paper's five models on the four EC2
//! instance types.
//!
//! The original evaluation measures these latencies on real AWS instances.
//! Those measurements are not available, so the constants below are a
//! synthetic calibration chosen to preserve the *structural* properties the
//! paper's results rely on (see DESIGN.md, "Substitutions"):
//!
//! 1. The GPU base type (`g4dn.xlarge`) meets QoS for every batch size up to
//!    the 1000-request cap, for every model.
//! 2. Each CPU auxiliary type has a model-dependent QoS cutoff `s` well below
//!    1000: it can serve small queries within QoS but not large ones.
//! 3. On the small-batch mass of the workload, the cheap auxiliary types
//!    deliver *more throughput per dollar* than the base type, which is what
//!    makes heterogeneous configurations attractive (paper Sec. 4).
//! 4. The advantage differs per model: embedding-dominated RM2 benefits the
//!    most from cheap CPU instances (the paper reports 2.03x), while the
//!    compute-heavy MT-WND benefits the least (1.25x).
//!
//! All constants are in milliseconds: `latency = intercept + slope * batch`.

use crate::latency::{LatencyProfile, LatencyTable};
use crate::mlmodel::ModelKind;

/// One calibration row: instance type name, intercept (ms), slope (ms/request).
type Row = (&'static str, f64, f64);

/// Calibration constants per model.  Order of rows: G1, C1, C2, C3.
fn rows(model: ModelKind) -> [Row; 4] {
    match model {
        // NCF: tiny MLP, 5 ms QoS.  GPU has relatively high fixed dispatch
        // overhead compared to the arithmetic, so cheap CPUs shine on small
        // batches (paper reports 1.68x).
        ModelKind::Ncf => [
            ("g4dn.xlarge", 0.80, 0.0025),
            ("c5n.2xlarge", 0.25, 0.0100),
            ("r5n.large", 0.30, 0.0160),
            ("t3.xlarge", 0.35, 0.0260),
        ],
        // RM2: large embedding tables dominate; memory-bound work maps well to
        // CPU hosts and the GPU pays a large data-movement overhead per query,
        // so heterogeneity helps the most (paper reports 2.03x).
        ModelKind::Rm2 => [
            ("g4dn.xlarge", 60.0, 0.2400),
            ("c5n.2xlarge", 6.0, 0.5500),
            ("r5n.large", 6.0, 0.8000),
            ("t3.xlarge", 10.0, 1.5000),
        ],
        // WND: medium dense model, 25 ms QoS (paper reports 1.34x).
        ModelKind::Wnd => [
            ("g4dn.xlarge", 4.0, 0.0160),
            ("c5n.2xlarge", 2.0, 0.0800),
            ("r5n.large", 2.5, 0.1300),
            ("t3.xlarge", 3.0, 0.2000),
        ],
        // MT-WND: several parallel DNN towers; CPUs struggle, so the gain from
        // heterogeneity is the smallest (paper reports 1.25x).
        ModelKind::MtWnd => [
            ("g4dn.xlarge", 4.0, 0.0170),
            ("c5n.2xlarge", 3.0, 0.1300),
            ("r5n.large", 3.5, 0.1900),
            ("t3.xlarge", 5.0, 0.3000),
        ],
        // DIEN: GRU-based sequence model, 35 ms QoS (paper reports 1.43x).
        ModelKind::Dien => [
            ("g4dn.xlarge", 5.0, 0.0250),
            ("c5n.2xlarge", 2.5, 0.1000),
            ("r5n.large", 3.0, 0.1600),
            ("t3.xlarge", 3.5, 0.2100),
        ],
    }
}

/// Builds the full calibrated latency table for all five models on the four
/// paper instance types.
pub fn paper_calibration() -> LatencyTable {
    let mut table = LatencyTable::new();
    for model in ModelKind::ALL {
        for (name, intercept, slope) in rows(model) {
            table.insert(model, name, LatencyProfile::new(intercept, slope));
        }
    }
    table
}

/// Builds the calibration restricted to a single model (convenience for the
/// benchmark harnesses).
pub fn calibration_for(model: ModelKind) -> LatencyTable {
    let mut table = LatencyTable::new();
    for (name, intercept, slope) in rows(model) {
        table.insert(model, name, LatencyProfile::new(intercept, slope));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ec2;
    use crate::mlmodel::{spec, MAX_BATCH_SIZE};

    #[test]
    fn every_pair_is_calibrated() {
        let t = paper_calibration();
        assert_eq!(t.len(), 5 * 4);
        for model in ModelKind::ALL {
            for inst in ec2::paper_pool() {
                assert!(
                    t.get(model, &inst.name).is_some(),
                    "{model} on {}",
                    inst.name
                );
            }
        }
    }

    #[test]
    fn base_instance_meets_qos_for_all_batch_sizes() {
        // Structural property 1: only the GPU can serve the largest query
        // within QoS for every model (it is the base type of the paper).
        let t = paper_calibration();
        for model in ModelKind::ALL {
            let qos = spec(model).qos_ms;
            let gpu = t.expect(model, "g4dn.xlarge");
            assert!(
                gpu.latency_ms(MAX_BATCH_SIZE) <= qos,
                "{model}: GPU latency {} exceeds QoS {qos}",
                gpu.latency_ms(MAX_BATCH_SIZE)
            );
        }
    }

    #[test]
    fn auxiliary_instances_cannot_serve_largest_queries() {
        // Structural property 2: every CPU type has a cutoff below the cap.
        let t = paper_calibration();
        for model in ModelKind::ALL {
            let qos = spec(model).qos_ms;
            for inst in &ec2::paper_pool()[1..] {
                let p = t.expect(model, &inst.name);
                let cutoff = p.max_batch_within(qos);
                assert!(
                    cutoff.is_none() || cutoff.unwrap() < MAX_BATCH_SIZE,
                    "{model} on {} should not meet QoS at the batch cap",
                    inst.name
                );
                // ...but each can serve at least small queries.
                assert!(
                    cutoff.unwrap_or(0) >= 30,
                    "{model} on {}: cutoff too small to be useful",
                    inst.name
                );
            }
        }
    }

    #[test]
    fn cheapest_auxiliary_has_better_small_batch_throughput_per_dollar() {
        // Structural property 3: on a representative small batch, r5n.large
        // offers more QPS per dollar than the GPU — the economic driver of
        // heterogeneous serving.
        let t = paper_calibration();
        let pool = ec2::paper_pool();
        let gpu_price = pool[0].price_per_hour;
        let r5n_price = pool[2].price_per_hour;
        for model in ModelKind::ALL {
            let small_batch = 64;
            let gpu = t.expect(model, "g4dn.xlarge");
            let r5n = t.expect(model, "r5n.large");
            let gpu_eff = gpu.throughput_qps(small_batch) / gpu_price;
            let r5n_eff = r5n.throughput_qps(small_batch) / r5n_price;
            assert!(
                r5n_eff > gpu_eff,
                "{model}: r5n {r5n_eff:.1} QPS/$ should beat GPU {gpu_eff:.1} QPS/$"
            );
        }
    }

    #[test]
    fn rm2_benefits_more_than_mtwnd() {
        // Structural property 4: the per-dollar advantage of the cheap CPU is
        // larger for RM2 than for MT-WND, matching the paper's ordering of
        // heterogeneity gains (2.03x vs 1.25x).
        let t = paper_calibration();
        let pool = ec2::paper_pool();
        let advantage = |model: ModelKind| {
            let gpu = t.expect(model, "g4dn.xlarge");
            let r5n = t.expect(model, "r5n.large");
            (r5n.throughput_qps(64) / pool[2].price_per_hour)
                / (gpu.throughput_qps(64) / pool[0].price_per_hour)
        };
        assert!(advantage(ModelKind::Rm2) > advantage(ModelKind::MtWnd));
    }

    #[test]
    fn calibration_for_single_model_has_four_rows() {
        let t = calibration_for(ModelKind::Wnd);
        assert_eq!(t.len(), 4);
        assert!(t.get(ModelKind::Rm2, "g4dn.xlarge").is_none());
    }
}

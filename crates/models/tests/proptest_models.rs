//! Property-based tests for the domain model crate.

use kairos_models::{
    calibration::paper_calibration,
    config::{enumerate_configs, Config, EnumerationOptions, PoolSpec},
    instance::ec2,
    latency::LatencyProfile,
    mlmodel::ModelKind,
    predictor::OnlinePredictor,
};
use proptest::prelude::*;

fn paper_pool() -> PoolSpec {
    PoolSpec::new(ec2::paper_pool())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn latency_monotone_in_batch_size(
        intercept in 0.0f64..100.0,
        slope in 0.001f64..5.0,
        b1 in 1u32..1000,
        b2 in 1u32..1000,
    ) {
        let p = LatencyProfile::new(intercept, slope);
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(p.latency_ms(lo) <= p.latency_ms(hi));
        prop_assert!(p.latency_us(lo) <= p.latency_us(hi));
    }

    #[test]
    fn max_batch_within_is_consistent(
        intercept in 0.0f64..50.0,
        slope in 0.01f64..2.0,
        qos in 1.0f64..500.0,
    ) {
        let p = LatencyProfile::new(intercept, slope);
        match p.max_batch_within(qos) {
            None => prop_assert!(p.latency_ms(1) > qos),
            Some(b) => {
                prop_assert!(p.latency_ms(b) <= qos + 1e-9);
                // One more request either exceeds the target or hits the b>=1 clamp.
                if p.latency_ms(b + 1) <= qos {
                    prop_assert_eq!(b, 1);
                }
            }
        }
    }

    #[test]
    fn config_cost_additive_and_monotone(
        counts in prop::collection::vec(0usize..8, 4),
        extra_type in 0usize..4,
    ) {
        let pool = paper_pool();
        let config = Config::new(counts);
        let bigger = config.with_one_more(extra_type);
        prop_assert!(config.is_sub_config_of(&bigger));
        let expected_increase = pool.price(extra_type);
        prop_assert!((bigger.cost(&pool) - config.cost(&pool) - expected_increase).abs() < 1e-9);
    }

    #[test]
    fn enumeration_monotone_in_budget(budget_small in 1.0f64..3.0, delta in 0.1f64..2.0) {
        let pool = paper_pool();
        let small = enumerate_configs(&pool, &EnumerationOptions::with_budget(budget_small));
        let large = enumerate_configs(&pool, &EnumerationOptions::with_budget(budget_small + delta));
        prop_assert!(large.len() >= small.len());
        // Every small-budget configuration is also affordable under the larger budget.
        for c in &small {
            prop_assert!(large.contains(c));
        }
    }

    #[test]
    fn predictor_converges_on_linear_truth(
        intercept in 0.1f64..20.0,
        slope in 0.01f64..1.0,
        batches in prop::collection::vec(1u32..1000, 2..30),
    ) {
        prop_assume!(batches.iter().collect::<std::collections::HashSet<_>>().len() >= 2);
        let truth = LatencyProfile::new(intercept, slope);
        let mut predictor = OnlinePredictor::new();
        for &b in &batches {
            predictor.observe(b, truth.latency_ms(b));
        }
        // Observed batch sizes are answered exactly; unseen ones via the fit.
        for &b in &batches {
            prop_assert!((predictor.predict(b) - truth.latency_ms(b)).abs() < 1e-6);
        }
        let err = predictor.relative_error_against(&truth, &[1, 250, 999]);
        prop_assert!(err < 1e-4, "relative error too large: {err}");
    }

    #[test]
    fn squared_distance_is_symmetric_and_nonnegative(
        a in prop::collection::vec(0usize..12, 4),
        b in prop::collection::vec(0usize..12, 4),
    ) {
        let ca = Config::new(a);
        let cb = Config::new(b);
        prop_assert_eq!(ca.squared_distance(&cb), cb.squared_distance(&ca));
        prop_assert!(ca.squared_distance(&cb) >= 0.0);
        prop_assert_eq!(ca.squared_distance(&ca), 0.0);
    }
}

#[test]
fn calibration_serializes_round_trip() {
    let table = paper_calibration();
    let json = serde_json::to_string(&table).unwrap();
    let back: kairos_models::LatencyTable = serde_json::from_str(&json).unwrap();
    for model in ModelKind::ALL {
        for inst in ec2::paper_pool() {
            assert_eq!(table.get(model, &inst.name), back.get(model, &inst.name));
        }
    }
}

//! Query traces: pre-generated sequences of queries with arrival timestamps.
//!
//! A trace couples an arrival process with a batch-size distribution so that
//! the same query sequence can be replayed against different schedulers and
//! configurations — exactly how the paper compares schemes under identical
//! load.  Traces can be serialized to JSON for reproducibility.

use crate::arrival::ArrivalProcess;
use crate::batch::BatchSizeDistribution;
use crate::query::{Query, TimeUs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Specification from which a trace is generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Arrival process of the queries.
    pub arrival: ArrivalProcess,
    /// Distribution of query batch sizes.
    pub batch_sizes: BatchSizeDistribution,
    /// Duration of the trace in virtual seconds.
    pub duration_s: f64,
    /// RNG seed so traces are reproducible.
    pub seed: u64,
}

impl TraceSpec {
    /// Convenience constructor for the evaluation default: Poisson arrivals
    /// with the production-like log-normal batch mix.
    pub fn production(rate_qps: f64, duration_s: f64, seed: u64) -> Self {
        Self {
            arrival: ArrivalProcess::Poisson { rate_qps },
            batch_sizes: BatchSizeDistribution::production_default(),
            duration_s,
            seed,
        }
    }

    /// Generates the trace described by this specification.
    pub fn generate(&self) -> Trace {
        assert!(self.duration_s > 0.0, "duration must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let horizon_us = (self.duration_s * 1e6) as TimeUs;
        let mut queries = Vec::new();
        let mut t: TimeUs = 0;
        let mut id = 0u64;
        loop {
            let gap = self.arrival.next_gap_us(&mut rng);
            t += gap;
            if t > horizon_us {
                break;
            }
            let batch = self.batch_sizes.sample(&mut rng);
            queries.push(Query::new(id, batch, t));
            id += 1;
            // Bursts would loop forever (gap 0); cap them at a generous size.
            if matches!(self.arrival, ArrivalProcess::Burst) && queries.len() >= 10_000 {
                break;
            }
        }
        Trace {
            spec: Some(self.clone()),
            queries,
        }
    }
}

/// A concrete sequence of queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The specification the trace was generated from, when known.
    pub spec: Option<TraceSpec>,
    /// Queries sorted by arrival time.
    pub queries: Vec<Query>,
}

impl Trace {
    /// Builds a trace directly from a list of queries (sorted by arrival).
    pub fn from_queries(mut queries: Vec<Query>) -> Self {
        queries.sort_by_key(|q| (q.arrival_us, q.id));
        Self {
            spec: None,
            queries,
        }
    }

    /// Number of queries in the trace.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Duration spanned by the trace in virtual microseconds (0 if empty).
    pub fn duration_us(&self) -> TimeUs {
        self.queries.last().map(|q| q.arrival_us).unwrap_or(0)
    }

    /// Offered load of the trace in queries per second.
    pub fn offered_qps(&self) -> f64 {
        if self.queries.len() < 2 {
            return 0.0;
        }
        self.queries.len() as f64 / (self.duration_us() as f64 / 1e6)
    }

    /// Mean batch size across the trace.
    pub fn mean_batch_size(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|q| q.batch_size as f64)
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// Fraction of queries with batch size at most `threshold`.
    pub fn fraction_at_most(&self, threshold: u32) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .filter(|q| q.batch_size <= threshold)
            .count() as f64
            / self.queries.len() as f64
    }

    /// Partitions the trace into `num_models` per-model sub-traces, indexed
    /// by [`ModelId`](crate::ModelId): sub-trace `m` holds exactly the
    /// queries tagged model `m`, in their original order with their original
    /// ids and arrival times.  This is the shard boundary of the sharded
    /// engine — the union of the sub-traces is the input trace, query for
    /// query, so a per-shard replay sees precisely the arrivals the combined
    /// replay would deliver to that model's lane.
    ///
    /// The sub-traces carry no [`TraceSpec`] (they are projections, not
    /// generated traces).
    ///
    /// # Panics
    /// Panics if a query's model index is not covered by `num_models`.
    pub fn split_by_model(&self, num_models: usize) -> Vec<Trace> {
        // Count first so each shard is one exact allocation instead of a
        // growth-doubling sequence (multi-gigabyte traces pay dearly for the
        // transient 2x peak).
        let mut counts = vec![0usize; num_models];
        for q in &self.queries {
            assert!(
                q.model.index() < num_models,
                "query {} targets model {} but only {num_models} shards were requested",
                q.id,
                q.model
            );
            counts[q.model.index()] += 1;
        }
        let mut shards: Vec<Vec<Query>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for q in &self.queries {
            shards[q.model.index()].push(*q);
        }
        shards
            .into_iter()
            .map(|queries| Trace {
                spec: None,
                queries,
            })
            .collect()
    }

    /// Serializes the trace to a JSON string.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes a trace from a JSON string.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = TraceSpec::production(200.0, 2.0, 42);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        let c = TraceSpec::production(200.0, 2.0, 43).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn offered_load_matches_spec_rate() {
        let spec = TraceSpec::production(300.0, 5.0, 7);
        let trace = spec.generate();
        let qps = trace.offered_qps();
        assert!((qps - 300.0).abs() < 30.0, "offered load {qps}");
        assert!(trace.duration_us() <= 5_000_000);
    }

    #[test]
    fn arrivals_are_sorted_and_ids_unique() {
        let trace = TraceSpec::production(500.0, 2.0, 1).generate();
        assert!(trace
            .queries
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us));
        let mut ids: Vec<_> = trace.queries.iter().map(|q| q.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), trace.len());
    }

    #[test]
    fn from_queries_sorts_by_arrival() {
        let trace = Trace::from_queries(vec![Query::new(2, 10, 500), Query::new(1, 20, 100)]);
        assert_eq!(trace.queries[0].id, 1);
        assert_eq!(trace.mean_batch_size(), 15.0);
        assert_eq!(trace.fraction_at_most(10), 0.5);
    }

    #[test]
    fn split_by_model_partitions_without_perturbing_queries() {
        use crate::ModelId;
        let queries = vec![
            Query::for_model(0, ModelId::new(1), 4, 100),
            Query::for_model(1, ModelId::new(0), 8, 200),
            Query::for_model(2, ModelId::new(1), 2, 300),
        ];
        let trace = Trace::from_queries(queries.clone());
        let shards = trace.split_by_model(3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].queries, vec![queries[1]]);
        assert_eq!(shards[1].queries, vec![queries[0], queries[2]]);
        assert!(shards[2].is_empty());
        // The union, re-sorted by (arrival, id), is the input trace.
        let union: Vec<Query> = shards.iter().flat_map(|s| s.queries.clone()).collect();
        assert_eq!(Trace::from_queries(union).queries, trace.queries);
    }

    #[test]
    #[should_panic(expected = "targets model")]
    fn split_by_model_rejects_uncovered_models() {
        use crate::ModelId;
        let trace = Trace::from_queries(vec![Query::for_model(0, ModelId::new(2), 1, 10)]);
        trace.split_by_model(2);
    }

    #[test]
    fn json_round_trip() {
        let trace = TraceSpec::production(100.0, 1.0, 3).generate();
        let json = trace.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn empty_trace_statistics_are_zero() {
        let t = Trace::from_queries(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.offered_qps(), 0.0);
        assert_eq!(t.mean_batch_size(), 0.0);
        assert_eq!(t.duration_us(), 0);
    }
}

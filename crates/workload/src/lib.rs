//! # kairos-workload
//!
//! Workload generation for the Kairos inference-serving reproduction:
//! query types (model-tagged via [`ModelId`]), batch-size distributions
//! (production-like log-normal, Gaussian, uniform, empirical), per-model
//! query mixes ([`MixSpec`]), Poisson/uniform/burst arrival processes,
//! reproducible traces (single-model [`TraceSpec`], multi-model
//! [`MixedTraceSpec`]), multi-phase non-stationary workloads (step changes,
//! bursts, diurnal ramps — [`PhasedArrival`]), and the online query monitor
//! Kairos uses to estimate the batch-size and model mix (paper Sec. 5.2).
//!
//! ```
//! use kairos_workload::{TraceSpec, QueryMonitor};
//!
//! // Reproducible production-like trace: 200 QPS Poisson, log-normal batches.
//! let trace = TraceSpec::production(200.0, 2.0, 42).generate();
//! assert!(!trace.is_empty());
//!
//! // The monitor tracks the recent batch-size mix the estimator needs.
//! let mut monitor = QueryMonitor::new();
//! for q in &trace.queries {
//!     monitor.observe(q.batch_size);
//! }
//! assert!(monitor.fraction_at_most(1000) > 0.99);
//! ```

#![warn(missing_docs)]

pub mod arrival;
pub mod batch;
pub mod mix;
pub mod monitor;
pub mod phased;
pub mod query;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use batch::BatchSizeDistribution;
pub use mix::{MixComponent, MixSpec, MixedTraceSpec};
pub use monitor::{QueryMonitor, DEFAULT_WINDOW};
pub use phased::{Phase, PhasedArrival};
pub use query::{ModelId, Query, TimeUs};
pub use trace::{Trace, TraceSpec};

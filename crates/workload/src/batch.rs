//! Query batch-size distributions.
//!
//! The paper's evaluation is driven by the production trace of query batch
//! sizes from Meta's recommendation services \[17\], which is heavily skewed
//! towards small batches; the robustness experiments additionally use
//! Gaussian batch sizes (Fig. 16a) and a log-normal → Gaussian shift
//! (Fig. 12).  Since the production trace is not redistributable, this module
//! provides parametric generators whose shapes cover the same regimes, plus
//! an empirical distribution backed by an explicit sample list.
//!
//! All samplers clamp to `[1, max_batch]` — the paper caps queries at 1000
//! requests (Sec. 5.1).

use kairos_models::MAX_BATCH_SIZE;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};
use serde::{Deserialize, Serialize};

/// A parametric (or empirical) distribution over query batch sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatchSizeDistribution {
    /// Log-normal distribution parameterized by its *median* and the sigma of
    /// the underlying normal.  This is the default "production-like" mix:
    /// most queries are small, with a heavy tail of large batches.
    LogNormal {
        /// Median batch size (i.e. `exp(mu)` of the underlying normal).
        median: f64,
        /// Standard deviation of the underlying normal distribution.
        sigma: f64,
    },
    /// Gaussian batch sizes (Fig. 16a / Fig. 12 after the shift).
    Gaussian {
        /// Mean batch size.
        mean: f64,
        /// Standard deviation of the batch size.
        std_dev: f64,
    },
    /// Uniform batch sizes over an inclusive range.
    Uniform {
        /// Smallest batch size.
        min: u32,
        /// Largest batch size.
        max: u32,
    },
    /// Every query has the same batch size (useful in unit tests).
    Fixed(u32),
    /// Empirical distribution: sample uniformly from an explicit list (e.g. a
    /// recorded trace of batch sizes).
    Empirical(Vec<u32>),
}

impl BatchSizeDistribution {
    /// The default production-like mix used throughout the evaluation: median
    /// 120 requests, sigma 1.0, which puts ~85 % of queries below batch 330
    /// while still producing occasional near-cap queries.
    pub fn production_default() -> Self {
        BatchSizeDistribution::LogNormal {
            median: 120.0,
            sigma: 1.0,
        }
    }

    /// The Gaussian mix used by the robustness experiments (Fig. 16a).
    pub fn gaussian_default() -> Self {
        BatchSizeDistribution::Gaussian {
            mean: 250.0,
            std_dev: 120.0,
        }
    }

    /// Draws one batch size, clamped to `[1, MAX_BATCH_SIZE]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.sample_with_cap(rng, MAX_BATCH_SIZE)
    }

    /// Draws one batch size, clamped to `[1, cap]`.
    pub fn sample_with_cap<R: Rng + ?Sized>(&self, rng: &mut R, cap: u32) -> u32 {
        assert!(cap >= 1, "cap must be at least 1");
        let raw = match self {
            BatchSizeDistribution::LogNormal { median, sigma } => {
                assert!(
                    *median > 0.0 && *sigma > 0.0,
                    "log-normal parameters must be positive"
                );
                let dist = LogNormal::new(median.ln(), *sigma).expect("valid log-normal");
                dist.sample(rng)
            }
            BatchSizeDistribution::Gaussian { mean, std_dev } => {
                assert!(*std_dev > 0.0, "standard deviation must be positive");
                let dist = Normal::new(*mean, *std_dev).expect("valid normal");
                dist.sample(rng)
            }
            BatchSizeDistribution::Uniform { min, max } => {
                assert!(min <= max, "uniform range must be non-empty");
                return (rng.gen_range(*min..=*max)).clamp(1, cap);
            }
            BatchSizeDistribution::Fixed(b) => return (*b).clamp(1, cap),
            BatchSizeDistribution::Empirical(samples) => {
                assert!(!samples.is_empty(), "empirical distribution needs samples");
                let idx = rng.gen_range(0..samples.len());
                return samples[idx].clamp(1, cap);
            }
        };
        (raw.round().max(1.0) as u32).clamp(1, cap)
    }

    /// Draws `n` batch sizes.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Monte-Carlo estimate of the fraction of queries whose batch size is at
    /// most `threshold` (the `f` parameter of the upper-bound analysis,
    /// paper Fig. 6).  Kairos itself estimates this online from a query
    /// monitor window; this helper is used by tests and the oracle baseline.
    pub fn fraction_at_most<R: Rng + ?Sized>(
        &self,
        threshold: u32,
        rng: &mut R,
        samples: usize,
    ) -> f64 {
        assert!(samples > 0, "need at least one sample");
        let below = (0..samples)
            .filter(|_| self.sample(rng) <= threshold)
            .count();
        below as f64 / samples as f64
    }

    /// Monte-Carlo estimate of the `q`-th batch-size quantile
    /// (`0.0 <= q <= 1.0`), the inverse of [`Self::fraction_at_most`]:
    /// the smallest drawn batch size with at least a `q` fraction of the
    /// sample at or below it.  Useful for sizing a dynamic batcher's fuse
    /// cap against the offered mix (e.g. its p90) instead of guessing.
    pub fn quantile<R: Rng + ?Sized>(&self, q: f64, rng: &mut R, samples: usize) -> u32 {
        assert!(samples > 0, "need at least one sample");
        assert!(
            (0.0..=1.0).contains(&q) && q.is_finite(),
            "quantile must lie in [0, 1], got {q}"
        );
        let mut drawn = self.sample_many(rng, samples);
        drawn.sort_unstable();
        // ceil(q * n) draws fall at or below the answer; the index clamps
        // so q = 0 is the minimum and q = 1 the maximum.
        let rank = (q * samples as f64).ceil() as usize;
        drawn[rank.saturating_sub(1).min(samples - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_within_cap() {
        let mut rng = StdRng::seed_from_u64(7);
        for dist in [
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::gaussian_default(),
            BatchSizeDistribution::Uniform { min: 1, max: 5000 },
            BatchSizeDistribution::Fixed(4000),
            BatchSizeDistribution::Empirical(vec![1, 10, 2000]),
        ] {
            for _ in 0..500 {
                let b = dist.sample(&mut rng);
                assert!((1..=MAX_BATCH_SIZE).contains(&b), "{dist:?} produced {b}");
            }
        }
    }

    #[test]
    fn lognormal_median_is_approximately_right() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = BatchSizeDistribution::LogNormal {
            median: 120.0,
            sigma: 1.0,
        };
        let mut samples = dist.sample_many(&mut rng, 20_000);
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        assert!((median - 120.0).abs() < 15.0, "median {median}");
    }

    #[test]
    fn production_mix_is_small_query_heavy() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = BatchSizeDistribution::production_default();
        let f = dist.fraction_at_most(330, &mut rng, 20_000);
        assert!(f > 0.75, "expected most queries below 330, got {f}");
        let tail = 1.0 - dist.fraction_at_most(800, &mut rng, 20_000);
        assert!(
            tail > 0.005,
            "expected a non-trivial large-batch tail, got {tail}"
        );
    }

    #[test]
    fn gaussian_mean_is_approximately_right() {
        let mut rng = StdRng::seed_from_u64(5);
        let dist = BatchSizeDistribution::Gaussian {
            mean: 250.0,
            std_dev: 50.0,
        };
        let samples = dist.sample_many(&mut rng, 10_000);
        let mean: f64 = samples.iter().map(|&b| b as f64).sum::<f64>() / samples.len() as f64;
        assert!((mean - 250.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn fixed_distribution_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = BatchSizeDistribution::Fixed(64);
        assert!(dist.sample_many(&mut rng, 100).iter().all(|&b| b == 64));
    }

    #[test]
    fn empirical_only_emits_listed_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = BatchSizeDistribution::Empirical(vec![5, 50, 500]);
        for _ in 0..200 {
            let b = dist.sample(&mut rng);
            assert!([5, 50, 500].contains(&b));
        }
    }

    #[test]
    fn quantile_inverts_fraction_at_most() {
        let mut rng = StdRng::seed_from_u64(13);
        let dist = BatchSizeDistribution::production_default();
        // The log-normal median is the 50 % point by construction.
        let p50 = dist.quantile(0.5, &mut rng, 20_000);
        assert!((p50 as f64 - 120.0).abs() < 15.0, "p50 {p50}");
        // Quantiles are monotone in q and bounded by the sample extremes.
        let p10 = dist.quantile(0.1, &mut rng, 20_000);
        let p90 = dist.quantile(0.9, &mut rng, 20_000);
        assert!(p10 < p50 && p50 < p90, "{p10} / {p50} / {p90}");
        // Round trip: the mass at or below the p90 estimate is ~0.9.
        let f = dist.fraction_at_most(p90, &mut rng, 20_000);
        assert!((f - 0.9).abs() < 0.02, "fraction at p90 was {f}");
        // Degenerate mixes collapse every quantile to the single value.
        let fixed = BatchSizeDistribution::Fixed(64);
        assert_eq!(fixed.quantile(0.0, &mut rng, 100), 64);
        assert_eq!(fixed.quantile(1.0, &mut rng, 100), 64);
    }

    #[test]
    fn serde_round_trip() {
        let dist = BatchSizeDistribution::production_default();
        let json = serde_json::to_string(&dist).unwrap();
        let back: BatchSizeDistribution = serde_json::from_str(&json).unwrap();
        assert_eq!(dist, back);
    }
}

//! Multi-phase workloads: arrival processes whose rate and batch mix change
//! over time.
//!
//! The single-phase [`TraceSpec`](crate::trace::TraceSpec) replays a
//! stationary workload; real serving systems face *load shifts* — step
//! changes in rate, short bursts, diurnal ramps, and drifting batch mixes
//! (paper Sec. 6, Fig. 12).  A [`PhasedArrival`] composes per-phase arrival
//! processes and batch-size distributions into one trace with
//! **deterministic phase boundaries**: phase `k` starts exactly at the sum of
//! the preceding phase durations, regardless of the random arrival draws
//! inside each phase, so experiments can measure behaviour "at the boundary"
//! reproducibly.

use crate::arrival::ArrivalProcess;
use crate::batch::BatchSizeDistribution;
use crate::mix::MixSpec;
use crate::query::{ModelId, Query, TimeUs};
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One stationary segment of a phased workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Duration of the phase in virtual seconds.
    pub duration_s: f64,
    /// Arrival process active during the phase.
    pub arrival: ArrivalProcess,
    /// Per-model composition of queries arriving during the phase.  Single
    /// model workloads use a single-entry mix, which samples with exactly the
    /// RNG draws of the bare batch distribution it wraps.
    pub mix: MixSpec,
}

impl Phase {
    /// Convenience constructor: Poisson arrivals at `rate_qps` with the given
    /// single-model batch mix for `duration_s` seconds (thin wrapper over
    /// [`Phase::poisson_mix`] with model [`ModelId::DEFAULT`]).
    pub fn poisson(rate_qps: f64, batch_sizes: BatchSizeDistribution, duration_s: f64) -> Self {
        Self::poisson_mix(
            rate_qps,
            MixSpec::single(ModelId::DEFAULT, batch_sizes),
            duration_s,
        )
    }

    /// Poisson arrivals at `rate_qps` whose queries follow a multi-model
    /// [`MixSpec`] for `duration_s` seconds.
    pub fn poisson_mix(rate_qps: f64, mix: MixSpec, duration_s: f64) -> Self {
        Self {
            duration_s,
            arrival: ArrivalProcess::Poisson { rate_qps },
            mix,
        }
    }
}

/// A non-stationary arrival process composed of consecutive [`Phase`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedArrival {
    /// The phases, played back-to-back in order.
    pub phases: Vec<Phase>,
    /// RNG seed; each phase draws from an independent stream derived from it,
    /// so editing one phase never perturbs the others.
    pub seed: u64,
}

impl PhasedArrival {
    /// Builds a phased workload from explicit phases.
    ///
    /// # Panics
    /// Panics if `phases` is empty or any phase has a non-positive duration.
    pub fn new(phases: Vec<Phase>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|p| p.duration_s > 0.0),
            "phase durations must be positive"
        );
        Self { phases, seed }
    }

    /// A step change: `before_s` seconds at `low_qps`, then `after_s` seconds
    /// at `high_qps`, with the same batch mix throughout.  The canonical
    /// "can the system scale out?" scenario.
    pub fn step_change(
        low_qps: f64,
        high_qps: f64,
        batch_sizes: BatchSizeDistribution,
        before_s: f64,
        after_s: f64,
        seed: u64,
    ) -> Self {
        Self::new(
            vec![
                Phase::poisson(low_qps, batch_sizes.clone(), before_s),
                Phase::poisson(high_qps, batch_sizes, after_s),
            ],
            seed,
        )
    }

    /// A step change in the batch mix at a constant rate: the Fig. 12
    /// scenario, where the query *composition* shifts (e.g. log-normal to
    /// Gaussian) and the optimal heterogeneous configuration moves with it.
    pub fn mix_shift(
        rate_qps: f64,
        before: BatchSizeDistribution,
        after: BatchSizeDistribution,
        before_s: f64,
        after_s: f64,
        seed: u64,
    ) -> Self {
        Self::new(
            vec![
                Phase::poisson(rate_qps, before, before_s),
                Phase::poisson(rate_qps, after, after_s),
            ],
            seed,
        )
    }

    /// A transient burst: `base_qps` everywhere except a `burst_s`-second
    /// window at `burst_qps` starting after `lead_s` seconds.
    pub fn burst(
        base_qps: f64,
        burst_qps: f64,
        batch_sizes: BatchSizeDistribution,
        lead_s: f64,
        burst_s: f64,
        tail_s: f64,
        seed: u64,
    ) -> Self {
        Self::new(
            vec![
                Phase::poisson(base_qps, batch_sizes.clone(), lead_s),
                Phase::poisson(burst_qps, batch_sizes.clone(), burst_s),
                Phase::poisson(base_qps, batch_sizes, tail_s),
            ],
            seed,
        )
    }

    /// A diurnal ramp: `steps` equal-length phases whose rates trace one
    /// sinusoidal period between `min_qps` and `max_qps` over `total_s`
    /// seconds (a compressed day).
    pub fn diurnal(
        min_qps: f64,
        max_qps: f64,
        batch_sizes: BatchSizeDistribution,
        steps: usize,
        total_s: f64,
        seed: u64,
    ) -> Self {
        assert!(steps >= 2, "a ramp needs at least two steps");
        assert!(min_qps > 0.0 && max_qps >= min_qps, "invalid rate range");
        let mid = (min_qps + max_qps) / 2.0;
        let amplitude = (max_qps - min_qps) / 2.0;
        let phases = (0..steps)
            .map(|k| {
                // Trough at the start and end, peak mid-period.
                let angle = 2.0 * std::f64::consts::PI * (k as f64 + 0.5) / steps as f64;
                let rate = mid - amplitude * angle.cos();
                Phase::poisson(
                    rate.max(min_qps),
                    batch_sizes.clone(),
                    total_s / steps as f64,
                )
            })
            .collect();
        Self::new(phases, seed)
    }

    /// Virtual start time of each phase, in microseconds.  `boundaries()[0]`
    /// is always 0; the slice has one entry per phase.
    pub fn boundaries_us(&self) -> Vec<TimeUs> {
        let mut out = Vec::with_capacity(self.phases.len());
        let mut t = 0u64;
        for p in &self.phases {
            out.push(t);
            t += (p.duration_s * 1e6) as TimeUs;
        }
        out
    }

    /// Total duration across all phases, in microseconds.
    pub fn total_duration_us(&self) -> TimeUs {
        self.phases
            .iter()
            .map(|p| (p.duration_s * 1e6) as TimeUs)
            .sum()
    }

    /// Mean offered rate across the whole workload, in queries per second.
    pub fn mean_rate_qps(&self) -> f64 {
        let total_s: f64 = self.phases.iter().map(|p| p.duration_s).sum();
        self.phases
            .iter()
            .map(|p| p.arrival.rate_qps() * p.duration_s)
            .sum::<f64>()
            / total_s
    }

    /// Generates the trace: each phase's queries are drawn from its own
    /// deterministic RNG stream and clipped to the phase window, so phase `k`
    /// always starts at `boundaries_us()[k]`.
    pub fn generate(&self) -> Trace {
        let mut queries = Vec::new();
        let mut id = 0u64;
        let boundaries = self.boundaries_us();
        for (k, phase) in self.phases.iter().enumerate() {
            // Independent stream per phase (splitmix-style offset) so phases
            // do not share draws.
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let start = boundaries[k];
            let end = start + (phase.duration_s * 1e6) as TimeUs;
            let mut t = start;
            loop {
                t += phase.arrival.next_gap_us(&mut rng);
                if t >= end {
                    break;
                }
                let (model, batch) = phase.mix.sample(&mut rng);
                queries.push(Query::for_model(id, model, batch, t));
                id += 1;
            }
        }
        Trace {
            spec: None,
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> BatchSizeDistribution {
        BatchSizeDistribution::production_default()
    }

    #[test]
    fn boundaries_are_deterministic_and_exact() {
        let p = PhasedArrival::step_change(50.0, 200.0, mix(), 2.0, 3.0, 7);
        assert_eq!(p.boundaries_us(), vec![0, 2_000_000]);
        assert_eq!(p.total_duration_us(), 5_000_000);
        // No query generated in phase 1 crosses the boundary.
        let trace = p.generate();
        let phase1: Vec<_> = trace
            .queries
            .iter()
            .filter(|q| q.arrival_us < 2_000_000)
            .collect();
        assert!(!phase1.is_empty());
        assert!(trace.queries.iter().all(|q| q.arrival_us < 5_000_000));
    }

    #[test]
    fn step_change_shifts_the_offered_rate() {
        let p = PhasedArrival::step_change(50.0, 400.0, mix(), 4.0, 4.0, 11);
        let trace = p.generate();
        let before = trace
            .queries
            .iter()
            .filter(|q| q.arrival_us < 4_000_000)
            .count() as f64
            / 4.0;
        let after = trace
            .queries
            .iter()
            .filter(|q| q.arrival_us >= 4_000_000)
            .count() as f64
            / 4.0;
        assert!((before - 50.0).abs() < 15.0, "before {before}");
        assert!((after - 400.0).abs() < 50.0, "after {after}");
        assert!((p.mean_rate_qps() - 225.0).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = PhasedArrival::burst(40.0, 300.0, mix(), 1.0, 0.5, 1.0, 3);
        assert_eq!(p.generate(), p.generate());
        let other = PhasedArrival::burst(40.0, 300.0, mix(), 1.0, 0.5, 1.0, 4);
        assert_ne!(p.generate(), other.generate());
    }

    #[test]
    fn editing_a_later_phase_does_not_perturb_earlier_phases() {
        let a = PhasedArrival::step_change(80.0, 200.0, mix(), 2.0, 2.0, 9);
        let mut b = a.clone();
        b.phases[1] = Phase::poisson(500.0, mix(), 2.0);
        let qa: Vec<_> = a
            .generate()
            .queries
            .into_iter()
            .filter(|q| q.arrival_us < 2_000_000)
            .map(|q| (q.arrival_us, q.batch_size))
            .collect();
        let qb: Vec<_> = b
            .generate()
            .queries
            .into_iter()
            .filter(|q| q.arrival_us < 2_000_000)
            .map(|q| (q.arrival_us, q.batch_size))
            .collect();
        assert_eq!(qa, qb, "phase 0 must be independent of phase 1");
    }

    #[test]
    fn diurnal_ramp_peaks_mid_period() {
        let p = PhasedArrival::diurnal(50.0, 500.0, mix(), 8, 8.0, 5);
        assert_eq!(p.phases.len(), 8);
        let rates: Vec<f64> = p.phases.iter().map(|ph| ph.arrival.rate_qps()).collect();
        let peak = rates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((3..=4).contains(&peak), "peak at step {peak}");
        assert!(rates[0] < rates[peak] / 2.0);
        // Queries are globally sorted even across phase boundaries.
        let trace = p.generate();
        assert!(trace
            .queries
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us));
        let ids: Vec<u64> = trace.queries.iter().map(|q| q.id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mix_shift_changes_batch_composition() {
        let p = PhasedArrival::mix_shift(
            100.0,
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::gaussian_default(),
            3.0,
            3.0,
            21,
        );
        let trace = p.generate();
        let mean = |pred: &dyn Fn(&Query) -> bool| {
            let v: Vec<f64> = trace
                .queries
                .iter()
                .filter(|q| pred(q))
                .map(|q| q.batch_size as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let before = mean(&|q: &Query| q.arrival_us < 3_000_000);
        let after = mean(&|q: &Query| q.arrival_us >= 3_000_000);
        assert!(
            after > before + 20.0,
            "gaussian mix should skew larger: {before} -> {after}"
        );
        // The log-normal mix is dominated by small queries; the Gaussian mix
        // has almost none — this is what moves the optimal configuration.
        let small = |lo: TimeUs, hi: TimeUs| {
            let (n, total) = trace
                .queries
                .iter()
                .filter(|q| (lo..hi).contains(&q.arrival_us))
                .fold((0usize, 0usize), |(n, t), q| {
                    (n + usize::from(q.batch_size <= 100), t + 1)
                });
            n as f64 / total as f64
        };
        assert!(small(0, 3_000_000) > 2.0 * small(3_000_000, 6_000_000));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_list_rejected() {
        PhasedArrival::new(vec![], 0);
    }

    #[test]
    fn multi_model_phases_tag_queries_with_their_models() {
        use crate::mix::MixSpec;
        use crate::query::ModelId;
        let multi = MixSpec::from_shares(
            &[0.7, 0.3],
            &[mix(), BatchSizeDistribution::gaussian_default()],
        );
        let p = PhasedArrival::new(
            vec![
                Phase::poisson_mix(200.0, multi.clone(), 2.0),
                // Second phase drops model 1 from the stream entirely.
                Phase::poisson_mix(200.0, MixSpec::single(ModelId::new(0), mix()), 2.0),
            ],
            13,
        );
        let trace = p.generate();
        let phase0 = trace.queries.iter().filter(|q| q.arrival_us < 2_000_000);
        let models: std::collections::HashSet<_> = phase0.map(|q| q.model).collect();
        assert_eq!(models.len(), 2, "both models must appear in phase 0");
        assert!(trace
            .queries
            .iter()
            .filter(|q| q.arrival_us >= 2_000_000)
            .all(|q| q.model == ModelId::new(0)));
    }
}

//! Query arrival processes.
//!
//! The paper generates query inter-arrivals from a Poisson process at rates
//! of hundreds of queries per second (Sec. 7), the standard model for online
//! inference serving studies.  A deterministic (uniform-spacing) process is
//! also provided for tests and for the capacity search, where a smooth ramp
//! is easier to reason about.

use crate::query::TimeUs;
use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// A stochastic process generating query inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival times with the given mean
    /// rate in queries per second.
    Poisson {
        /// Mean arrival rate in queries per second.
        rate_qps: f64,
    },
    /// Deterministic arrivals, exactly `rate_qps` queries per second equally
    /// spaced.
    Uniform {
        /// Arrival rate in queries per second.
        rate_qps: f64,
    },
    /// All queries arrive in a single burst at time zero (stress test of the
    /// queueing behaviour).
    Burst,
}

impl ArrivalProcess {
    /// Mean arrival rate of the process in queries per second (`f64::INFINITY`
    /// for a burst).
    pub fn rate_qps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Uniform { rate_qps } => {
                *rate_qps
            }
            ArrivalProcess::Burst => f64::INFINITY,
        }
    }

    /// Returns a copy of the process with its rate replaced (bursts are
    /// unchanged).  Used by the allowable-throughput ramp.
    pub fn with_rate(&self, rate_qps: f64) -> Self {
        assert!(rate_qps > 0.0, "rate must be positive");
        match self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate_qps },
            ArrivalProcess::Uniform { .. } => ArrivalProcess::Uniform { rate_qps },
            ArrivalProcess::Burst => ArrivalProcess::Burst,
        }
    }

    /// Draws the gap until the next arrival, in microseconds.
    pub fn next_gap_us<R: Rng + ?Sized>(&self, rng: &mut R) -> TimeUs {
        match self {
            ArrivalProcess::Poisson { rate_qps } => {
                assert!(*rate_qps > 0.0, "rate must be positive");
                // Exponential with mean 1/rate seconds = 1e6/rate microseconds.
                let exp = Exp::new(*rate_qps).expect("valid rate");
                let gap_seconds: f64 = exp.sample(rng);
                (gap_seconds * 1e6).round().max(1.0) as TimeUs
            }
            ArrivalProcess::Uniform { rate_qps } => {
                assert!(*rate_qps > 0.0, "rate must be positive");
                ((1e6 / rate_qps).round().max(1.0)) as TimeUs
            }
            ArrivalProcess::Burst => 0,
        }
    }

    /// Generates the arrival timestamps of `n` queries starting at `start_us`.
    pub fn arrival_times<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        start_us: TimeUs,
    ) -> Vec<TimeUs> {
        let mut out = Vec::with_capacity(n);
        let mut t = start_us;
        for i in 0..n {
            if i > 0 || !matches!(self, ArrivalProcess::Burst) {
                t += self.next_gap_us(rng);
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ArrivalProcess::Poisson { rate_qps: 200.0 };
        let n = 20_000usize;
        let total_us: u64 = (0..n).map(|_| p.next_gap_us(&mut rng)).sum();
        let measured_rate = n as f64 / (total_us as f64 / 1e6);
        assert!((measured_rate - 200.0).abs() < 10.0, "rate {measured_rate}");
    }

    #[test]
    fn uniform_gaps_are_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ArrivalProcess::Uniform { rate_qps: 100.0 };
        assert_eq!(p.next_gap_us(&mut rng), 10_000);
    }

    #[test]
    fn burst_arrives_at_once() {
        let mut rng = StdRng::seed_from_u64(2);
        let times = ArrivalProcess::Burst.arrival_times(&mut rng, 5, 123);
        assert_eq!(times, vec![123; 5]);
    }

    #[test]
    fn arrival_times_are_monotone() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = ArrivalProcess::Poisson { rate_qps: 500.0 };
        let times = p.arrival_times(&mut rng, 1000, 0);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times.len(), 1000);
    }

    #[test]
    fn with_rate_swaps_rate_only() {
        let p = ArrivalProcess::Poisson { rate_qps: 10.0 };
        assert_eq!(
            p.with_rate(50.0),
            ArrivalProcess::Poisson { rate_qps: 50.0 }
        );
        assert_eq!(p.with_rate(50.0).rate_qps(), 50.0);
        assert_eq!(ArrivalProcess::Burst.with_rate(5.0), ArrivalProcess::Burst);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn with_rate_rejects_zero() {
        ArrivalProcess::Poisson { rate_qps: 1.0 }.with_rate(0.0);
    }
}

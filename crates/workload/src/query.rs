//! Inference queries.
//!
//! A *query* is a batch of individual inference requests submitted together
//! (paper Sec. 3/4): its scheduler-relevant attributes are the target model,
//! the batch size and the arrival time.  Simulator time is expressed in
//! integer microseconds for determinism.
//!
//! # Model identity
//!
//! Multi-model serving tags every query with a [`ModelId`] — a *compact
//! interned index*, not a string.  The id is an index into whatever
//! model table the surrounding system maintains (the simulator's service
//! catalogue, `kairos_core`'s `InferenceService` lanes), so hot-path lookups
//! keyed by model are array indexing, never string hashing.  Single-model
//! deployments use [`ModelId::DEFAULT`] throughout; [`Query::new`] is the
//! single-model constructor and behaves exactly as it did before models were
//! first-class.

use serde::{Deserialize, Serialize};

/// Virtual time in microseconds.
pub type TimeUs = u64;

/// Compact interned identity of a served model: an index into the model
/// table of the surrounding system (service catalogue, controller lanes).
///
/// `ModelId` is deliberately *not* a model name — resolving metadata (QoS
/// target, latency profiles) is an array index wherever it appears on a hot
/// path.  Ids are dense and assigned by the component that owns the model
/// list, in list order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ModelId(pub u16);

// Serialized transparently as the bare index (hand-written: the vendored
// serde shim's derive does not support `#[serde(transparent)]`).
impl Serialize for ModelId {
    fn to_value(&self) -> serde::json::Value {
        self.0.to_value()
    }
}

impl Deserialize for ModelId {
    fn from_value(value: &serde::json::Value) -> Result<Self, serde::json::Error> {
        u16::from_value(value).map(ModelId)
    }
}

impl ModelId {
    /// The model id of single-model deployments (index 0).
    pub const DEFAULT: ModelId = ModelId(0);

    /// Builds an id from a dense table index.
    ///
    /// # Panics
    /// Panics if the index does not fit the compact representation.
    pub fn new(index: usize) -> Self {
        assert!(index <= u16::MAX as usize, "model index {index} too large");
        ModelId(index as u16)
    }

    /// The table index this id stands for.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One inference query: a batch of requests for one model arriving at a
/// point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// Unique, monotonically increasing identifier.
    pub id: u64,
    /// The model this query must be served by.
    pub model: ModelId,
    /// Number of requests batched into this query (1..=1000 in the paper).
    pub batch_size: u32,
    /// Arrival time at the serving system, in virtual microseconds.
    pub arrival_us: TimeUs,
}

impl Query {
    /// Creates a single-model query (model [`ModelId::DEFAULT`]).
    ///
    /// # Panics
    /// Panics if the batch size is zero.
    pub fn new(id: u64, batch_size: u32, arrival_us: TimeUs) -> Self {
        Self::for_model(id, ModelId::DEFAULT, batch_size, arrival_us)
    }

    /// Creates a query tagged with the model it must be served by.
    ///
    /// # Panics
    /// Panics if the batch size is zero.
    pub fn for_model(id: u64, model: ModelId, batch_size: u32, arrival_us: TimeUs) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        Self {
            id,
            model,
            batch_size,
            arrival_us,
        }
    }

    /// Time this query has already spent waiting at `now` (the `W_i` term of
    /// the QoS constraint, paper Eq. 3).
    pub fn waiting_time_us(&self, now: TimeUs) -> TimeUs {
        now.saturating_sub(self.arrival_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiting_time_is_elapsed_since_arrival() {
        let q = Query::new(1, 32, 1_000);
        assert_eq!(q.waiting_time_us(1_500), 500);
        assert_eq!(q.waiting_time_us(1_000), 0);
        // Clock never went backwards, but guard against underflow anyway.
        assert_eq!(q.waiting_time_us(500), 0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        Query::new(1, 0, 0);
    }

    #[test]
    fn default_constructor_uses_the_default_model() {
        assert_eq!(Query::new(1, 32, 0).model, ModelId::DEFAULT);
        let tagged = Query::for_model(2, ModelId::new(3), 16, 10);
        assert_eq!(tagged.model.index(), 3);
        assert_eq!(tagged.model.to_string(), "m3");
    }

    #[test]
    #[should_panic(expected = "model index")]
    fn oversized_model_index_rejected() {
        ModelId::new(usize::MAX);
    }
}

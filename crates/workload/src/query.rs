//! Inference queries.
//!
//! A *query* is a batch of individual inference requests submitted together
//! (paper Sec. 3/4): its only scheduler-relevant attributes are the batch
//! size and the arrival time.  Simulator time is expressed in integer
//! microseconds for determinism.

use serde::{Deserialize, Serialize};

/// Virtual time in microseconds.
pub type TimeUs = u64;

/// One inference query: a batch of requests arriving at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// Unique, monotonically increasing identifier.
    pub id: u64,
    /// Number of requests batched into this query (1..=1000 in the paper).
    pub batch_size: u32,
    /// Arrival time at the serving system, in virtual microseconds.
    pub arrival_us: TimeUs,
}

impl Query {
    /// Creates a query.
    ///
    /// # Panics
    /// Panics if the batch size is zero.
    pub fn new(id: u64, batch_size: u32, arrival_us: TimeUs) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        Self {
            id,
            batch_size,
            arrival_us,
        }
    }

    /// Time this query has already spent waiting at `now` (the `W_i` term of
    /// the QoS constraint, paper Eq. 3).
    pub fn waiting_time_us(&self, now: TimeUs) -> TimeUs {
        now.saturating_sub(self.arrival_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiting_time_is_elapsed_since_arrival() {
        let q = Query::new(1, 32, 1_000);
        assert_eq!(q.waiting_time_us(1_500), 500);
        assert_eq!(q.waiting_time_us(1_000), 0);
        // Clock never went backwards, but guard against underflow anyway.
        assert_eq!(q.waiting_time_us(500), 0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        Query::new(1, 0, 0);
    }
}

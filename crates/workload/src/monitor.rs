//! Online query monitoring.
//!
//! Kairos's upper-bound estimator needs the batch-size distribution of the
//! incoming query stream — specifically the fraction `f` of queries at or
//! below a cutoff `s` (paper Sec. 5.2, "Remarks on assumptions and overhead":
//! "This is done via query monitoring to keep track of a number of most
//! recent queries (e.g., 10000 queries), and does not require extra
//! profiling").  [`QueryMonitor`] is exactly that sliding window.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default window length used by the paper (10 000 most recent queries).
pub const DEFAULT_WINDOW: usize = 10_000;

/// Sliding window over the batch sizes of the most recent queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryMonitor {
    capacity: usize,
    window: VecDeque<u32>,
}

impl QueryMonitor {
    /// Creates a monitor with the paper's default window of 10 000 queries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_WINDOW)
    }

    /// Creates a monitor with a custom window length.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            window: VecDeque::with_capacity(capacity.min(16_384)),
        }
    }

    /// Records the batch size of a newly arrived query, evicting the oldest
    /// entry once the window is full.
    pub fn observe(&mut self, batch_size: u32) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(batch_size);
    }

    /// Records a whole slice of batch sizes.
    pub fn observe_all(&mut self, batch_sizes: &[u32]) {
        for &b in batch_sizes {
            self.observe(b);
        }
    }

    /// Number of queries currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no queries have been observed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Fraction `f` of observed queries with batch size at most `threshold`
    /// (returns 0 when the window is empty).
    pub fn fraction_at_most(&self, threshold: u32) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().filter(|&&b| b <= threshold).count() as f64 / self.window.len() as f64
    }

    /// Mean batch size of queries in the window at most `threshold` (None if
    /// no such query exists).  Used to derive the representative "small query"
    /// an auxiliary instance serves.
    pub fn mean_at_most(&self, threshold: u32) -> Option<f64> {
        let below: Vec<u32> = self
            .window
            .iter()
            .copied()
            .filter(|&b| b <= threshold)
            .collect();
        if below.is_empty() {
            return None;
        }
        Some(below.iter().map(|&b| b as f64).sum::<f64>() / below.len() as f64)
    }

    /// Mean batch size of queries in the window strictly above `threshold`
    /// (None if no such query exists).  This is the representative `s+` query
    /// of the upper-bound analysis.
    pub fn mean_above(&self, threshold: u32) -> Option<f64> {
        let above: Vec<u32> = self
            .window
            .iter()
            .copied()
            .filter(|&b| b > threshold)
            .collect();
        if above.is_empty() {
            return None;
        }
        Some(above.iter().map(|&b| b as f64).sum::<f64>() / above.len() as f64)
    }

    /// Mean batch size over the whole window (None when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        Some(self.window.iter().map(|&b| b as f64).sum::<f64>() / self.window.len() as f64)
    }

    /// Largest batch size observed in the window.
    pub fn max_batch(&self) -> Option<u32> {
        self.window.iter().copied().max()
    }

    /// Iterates over the batch sizes in the window (oldest first) without
    /// copying them out — used by cheap fingerprints of the window contents.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.window.iter().copied()
    }

    /// A copy of the batch sizes currently in the window (oldest first).
    /// This is the sample handed to the throughput upper-bound estimator.
    pub fn snapshot(&self) -> Vec<u32> {
        self.window.iter().copied().collect()
    }
}

impl Default for QueryMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest() {
        let mut m = QueryMonitor::with_capacity(3);
        m.observe_all(&[1, 2, 3, 4]);
        assert_eq!(m.len(), 3);
        // 1 was evicted, so the fraction at most 1 is now zero.
        assert_eq!(m.fraction_at_most(1), 0.0);
        assert_eq!(m.fraction_at_most(4), 1.0);
    }

    #[test]
    fn fraction_and_means() {
        let mut m = QueryMonitor::with_capacity(100);
        m.observe_all(&[10, 20, 30, 400, 600]);
        assert!((m.fraction_at_most(30) - 0.6).abs() < 1e-12);
        assert_eq!(m.mean_at_most(30), Some(20.0));
        assert_eq!(m.mean_above(30), Some(500.0));
        assert_eq!(m.max_batch(), Some(600));
        assert_eq!(m.mean(), Some((10.0 + 20.0 + 30.0 + 400.0 + 600.0) / 5.0));
    }

    #[test]
    fn empty_window_defaults() {
        let m = QueryMonitor::new();
        assert!(m.is_empty());
        assert_eq!(m.fraction_at_most(100), 0.0);
        assert_eq!(m.mean_at_most(100), None);
        assert_eq!(m.mean_above(100), None);
        assert_eq!(m.max_batch(), None);
    }

    #[test]
    fn default_capacity_matches_paper() {
        assert_eq!(DEFAULT_WINDOW, 10_000);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        QueryMonitor::with_capacity(0);
    }
}

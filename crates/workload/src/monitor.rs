//! Online query monitoring.
//!
//! Kairos's upper-bound estimator needs the batch-size distribution of the
//! incoming query stream — specifically the fraction `f` of queries at or
//! below a cutoff `s` (paper Sec. 5.2, "Remarks on assumptions and overhead":
//! "This is done via query monitoring to keep track of a number of most
//! recent queries (e.g., 10000 queries), and does not require extra
//! profiling").  [`QueryMonitor`] is exactly that sliding window.
//!
//! Multi-model serving additionally needs the *observed per-model mix* of
//! the stream (which share of recent queries targeted which model) to split
//! a shared budget across models.  The window therefore stores
//! `(model, batch size)` pairs, capped by the same ring-buffer eviction as
//! before, and maintains per-model counts incrementally so
//! [`QueryMonitor::mix`] is O(models), not O(window) — callers no longer
//! re-derive the mix by re-sampling the stream.

use crate::query::ModelId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default window length used by the paper (10 000 most recent queries).
pub const DEFAULT_WINDOW: usize = 10_000;

/// Sliding window over the `(model, batch size)` of the most recent queries.
///
/// Beyond the window itself the monitor keeps **index-mapped sparse**
/// per-model structures, sized for mixes with thousands of mostly-idle
/// lanes: each model's batch sizes live in their own ring (so
/// [`QueryMonitor::snapshot_for`] copies one lane instead of filtering the
/// whole window), and the set of models with at least one entry is a sorted
/// sparse index (so [`QueryMonitor::mix`] walks the active lanes, not every
/// allocated slot).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryMonitor {
    capacity: usize,
    window: VecDeque<(ModelId, u32)>,
    /// Incrementally maintained count of window entries per model index.
    model_counts: Vec<usize>,
    /// Per-model batch sizes, oldest first.  Eviction order within one model
    /// follows window order, so popping this ring's front on a window
    /// eviction keeps the two views consistent.
    per_model: Vec<VecDeque<u32>>,
    /// Sorted indices of models with a nonzero window count — the sparse
    /// active set behind [`Self::mix`].
    active: Vec<usize>,
}

impl QueryMonitor {
    /// Creates a monitor with the paper's default window of 10 000 queries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_WINDOW)
    }

    /// Creates a monitor with a custom window length.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            window: VecDeque::with_capacity(capacity.min(16_384)),
            model_counts: Vec::new(),
            per_model: Vec::new(),
            active: Vec::new(),
        }
    }

    /// Records the batch size of a newly arrived single-model query
    /// (model [`ModelId::DEFAULT`]), evicting the oldest entry once the
    /// window is full.
    pub fn observe(&mut self, batch_size: u32) {
        self.observe_tagged(ModelId::DEFAULT, batch_size);
    }

    /// Records a newly arrived query for a specific model, evicting the
    /// oldest entry once the window is full.
    pub fn observe_tagged(&mut self, model: ModelId, batch_size: u32) {
        if self.window.len() == self.capacity {
            if let Some((evicted, _)) = self.window.pop_front() {
                let e = evicted.index();
                self.model_counts[e] -= 1;
                self.per_model[e].pop_front();
                if self.model_counts[e] == 0 {
                    if let Ok(pos) = self.active.binary_search(&e) {
                        self.active.remove(pos);
                    }
                }
            }
        }
        let m = model.index();
        if self.model_counts.len() <= m {
            self.model_counts.resize(m + 1, 0);
            self.per_model.resize_with(m + 1, VecDeque::new);
        }
        if self.model_counts[m] == 0 {
            if let Err(pos) = self.active.binary_search(&m) {
                self.active.insert(pos, m);
            }
        }
        self.model_counts[m] += 1;
        self.per_model[m].push_back(batch_size);
        self.window.push_back((model, batch_size));
    }

    /// Records a whole slice of single-model batch sizes.
    pub fn observe_all(&mut self, batch_sizes: &[u32]) {
        for &b in batch_sizes {
            self.observe(b);
        }
    }

    /// Number of queries currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no queries have been observed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The observed per-model mix of the window: every model with at least
    /// one recent query, with its fraction of the window, in model-index
    /// order.  Empty when nothing has been observed.  O(active models) — the
    /// sparse active set is maintained at observe/evict time, so a window
    /// whose mix touches a handful of a few thousand allocated lanes never
    /// scans the idle ones.
    pub fn mix(&self) -> Vec<(ModelId, f64)> {
        let total = self.window.len();
        if total == 0 {
            return Vec::new();
        }
        self.active
            .iter()
            .map(|&index| {
                (
                    ModelId::new(index),
                    self.model_counts[index] as f64 / total as f64,
                )
            })
            .collect()
    }

    /// Sorted indices of models with at least one query in the window — the
    /// sparse iteration order for callers that fan out per-model work.
    pub fn active_models(&self) -> &[usize] {
        &self.active
    }

    /// Number of window entries targeting `model` (O(1)).
    pub fn model_count(&self, model: ModelId) -> usize {
        self.model_counts.get(model.index()).copied().unwrap_or(0)
    }

    /// Fraction `f` of observed queries with batch size at most `threshold`
    /// (returns 0 when the window is empty).
    pub fn fraction_at_most(&self, threshold: u32) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().filter(|&&(_, b)| b <= threshold).count() as f64
            / self.window.len() as f64
    }

    /// Mean batch size of queries in the window at most `threshold` (None if
    /// no such query exists).  Used to derive the representative "small query"
    /// an auxiliary instance serves.
    pub fn mean_at_most(&self, threshold: u32) -> Option<f64> {
        let (sum, count) = self
            .window
            .iter()
            .filter(|&&(_, b)| b <= threshold)
            .fold((0.0f64, 0usize), |(s, n), &(_, b)| (s + b as f64, n + 1));
        (count > 0).then(|| sum / count as f64)
    }

    /// Mean batch size of queries in the window strictly above `threshold`
    /// (None if no such query exists).  This is the representative `s+` query
    /// of the upper-bound analysis.
    pub fn mean_above(&self, threshold: u32) -> Option<f64> {
        let (sum, count) = self
            .window
            .iter()
            .filter(|&&(_, b)| b > threshold)
            .fold((0.0f64, 0usize), |(s, n), &(_, b)| (s + b as f64, n + 1));
        (count > 0).then(|| sum / count as f64)
    }

    /// Mean batch size over the whole window (None when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        Some(self.window.iter().map(|&(_, b)| b as f64).sum::<f64>() / self.window.len() as f64)
    }

    /// Largest batch size observed in the window.
    pub fn max_batch(&self) -> Option<u32> {
        self.window.iter().map(|&(_, b)| b).max()
    }

    /// Iterates over the batch sizes in the window (oldest first) without
    /// copying them out — used by cheap fingerprints of the window contents.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.window.iter().map(|&(_, b)| b)
    }

    /// Iterates over the `(model, batch size)` pairs in the window (oldest
    /// first).
    pub fn iter_tagged(&self) -> impl Iterator<Item = (ModelId, u32)> + '_ {
        self.window.iter().copied()
    }

    /// A copy of the batch sizes currently in the window (oldest first).
    /// This is the sample handed to the throughput upper-bound estimator.
    pub fn snapshot(&self) -> Vec<u32> {
        self.window.iter().map(|&(_, b)| b).collect()
    }

    /// The batch sizes of one model's queries in the window (oldest first) —
    /// the per-model sample a per-model planner hands to its estimator.
    /// O(entries for that model): the per-model rings are maintained at
    /// observe/evict time, so this never filters the full window.
    pub fn snapshot_for(&self, model: ModelId) -> Vec<u32> {
        self.per_model
            .get(model.index())
            .map(|ring| ring.iter().copied().collect())
            .unwrap_or_default()
    }
}

impl Default for QueryMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest() {
        let mut m = QueryMonitor::with_capacity(3);
        m.observe_all(&[1, 2, 3, 4]);
        assert_eq!(m.len(), 3);
        // 1 was evicted, so the fraction at most 1 is now zero.
        assert_eq!(m.fraction_at_most(1), 0.0);
        assert_eq!(m.fraction_at_most(4), 1.0);
    }

    #[test]
    fn fraction_and_means() {
        let mut m = QueryMonitor::with_capacity(100);
        m.observe_all(&[10, 20, 30, 400, 600]);
        assert!((m.fraction_at_most(30) - 0.6).abs() < 1e-12);
        assert_eq!(m.mean_at_most(30), Some(20.0));
        assert_eq!(m.mean_above(30), Some(500.0));
        assert_eq!(m.max_batch(), Some(600));
        assert_eq!(m.mean(), Some((10.0 + 20.0 + 30.0 + 400.0 + 600.0) / 5.0));
    }

    #[test]
    fn empty_window_defaults() {
        let m = QueryMonitor::new();
        assert!(m.is_empty());
        assert_eq!(m.fraction_at_most(100), 0.0);
        assert_eq!(m.mean_at_most(100), None);
        assert_eq!(m.mean_above(100), None);
        assert_eq!(m.max_batch(), None);
        assert!(m.mix().is_empty());
    }

    #[test]
    fn mix_tracks_per_model_shares_across_eviction() {
        let mut m = QueryMonitor::with_capacity(4);
        m.observe_tagged(ModelId::new(0), 10);
        m.observe_tagged(ModelId::new(1), 20);
        m.observe_tagged(ModelId::new(1), 30);
        m.observe_tagged(ModelId::new(2), 40);
        assert_eq!(
            m.mix(),
            vec![
                (ModelId::new(0), 0.25),
                (ModelId::new(1), 0.5),
                (ModelId::new(2), 0.25),
            ]
        );
        // Evicting the only model-0 entry drops it from the mix entirely.
        m.observe_tagged(ModelId::new(2), 50);
        assert_eq!(m.model_count(ModelId::new(0)), 0);
        assert_eq!(
            m.mix(),
            vec![(ModelId::new(1), 0.5), (ModelId::new(2), 0.5)]
        );
        assert_eq!(m.snapshot_for(ModelId::new(1)), vec![20, 30]);
        assert_eq!(m.iter_tagged().count(), 4);
    }

    #[test]
    fn untagged_observations_count_towards_the_default_model() {
        let mut m = QueryMonitor::new();
        m.observe_all(&[5, 6]);
        assert_eq!(m.mix(), vec![(ModelId::DEFAULT, 1.0)]);
        assert_eq!(m.snapshot(), vec![5, 6]);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![5, 6]);
    }

    #[test]
    fn sparse_lanes_track_the_window_across_eviction() {
        // A thousand-lane id space with three live lanes: the active set
        // stays sparse and the per-model rings match a full-window filter.
        let mut m = QueryMonitor::with_capacity(6);
        for (lane, batch) in [(999, 1u32), (7, 2), (999, 3), (400, 4), (7, 5), (999, 6)] {
            m.observe_tagged(ModelId::new(lane), batch);
        }
        assert_eq!(m.active_models(), &[7, 400, 999]);
        assert_eq!(m.snapshot_for(ModelId::new(999)), vec![1, 3, 6]);
        assert_eq!(m.snapshot_for(ModelId::new(7)), vec![2, 5]);
        assert_eq!(m.snapshot_for(ModelId::new(123)), Vec::<u32>::new());
        // The window is full: the next observation evicts (999, 1).
        m.observe_tagged(ModelId::new(400), 7);
        assert_eq!(m.snapshot_for(ModelId::new(999)), vec![3, 6]);
        assert_eq!(m.snapshot_for(ModelId::new(400)), vec![4, 7]);
        // Drain lane 7 entirely: it leaves the active set.
        m.observe_tagged(ModelId::new(400), 8); // evicts (7, 2)
        m.observe_tagged(ModelId::new(400), 9); // evicts (999, 3)
        m.observe_tagged(ModelId::new(400), 10); // evicts (400, 4)
        m.observe_tagged(ModelId::new(400), 11); // evicts (7, 5)
        assert_eq!(m.model_count(ModelId::new(7)), 0);
        assert_eq!(m.active_models(), &[400, 999]);
        // Every sparse view still agrees with the ground-truth window.
        for lane in [7usize, 400, 999] {
            let expected: Vec<u32> = m
                .iter_tagged()
                .filter(|(model, _)| model.index() == lane)
                .map(|(_, b)| b)
                .collect();
            assert_eq!(m.snapshot_for(ModelId::new(lane)), expected, "lane {lane}");
        }
    }

    #[test]
    fn default_capacity_matches_paper() {
        assert_eq!(DEFAULT_WINDOW, 10_000);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        QueryMonitor::with_capacity(0);
    }
}

//! Multi-model query mixes.
//!
//! Production inference clusters rarely serve one model: the paper's five
//! models (NCF at 5 ms through RM2 at 350 ms, Table 3) would in practice
//! share one fleet, each contributing a *share* of the arriving query stream
//! with its own batch-size composition.  A [`MixSpec`] describes such a mix —
//! per-model rate share plus per-model batch distribution — and is the
//! multi-model generalization of a bare
//! [`BatchSizeDistribution`]: a single-entry
//! mix samples *exactly* like the wrapped distribution (same RNG draw
//! sequence), so every single-model trace remains bit-identical to the
//! pre-multi-model code paths.
//!
//! [`MixedTraceSpec`] couples a mix with an arrival process into a
//! reproducible stationary multi-model trace, mirroring
//! [`TraceSpec`](crate::TraceSpec) for the single-model case.

use crate::arrival::ArrivalProcess;
use crate::batch::BatchSizeDistribution;
use crate::query::{ModelId, Query, TimeUs};
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One model's contribution to a query mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixComponent {
    /// The model these queries target.
    pub model: ModelId,
    /// Relative rate share of the model (normalized over the mix).
    pub share: f64,
    /// Batch-size composition of this model's queries.
    pub batch_sizes: BatchSizeDistribution,
}

/// A per-model query mix: rate shares plus batch distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixSpec {
    components: Vec<MixComponent>,
}

impl MixSpec {
    /// Builds a mix from explicit components.
    ///
    /// # Panics
    /// Panics if `components` is empty, any share is non-positive, or two
    /// components target the same model.
    pub fn new(components: Vec<MixComponent>) -> Self {
        assert!(!components.is_empty(), "a mix needs at least one model");
        assert!(
            components.iter().all(|c| c.share > 0.0),
            "mix shares must be positive"
        );
        for (i, a) in components.iter().enumerate() {
            assert!(
                components[i + 1..].iter().all(|b| b.model != a.model),
                "duplicate model {} in mix",
                a.model
            );
        }
        Self { components }
    }

    /// A single-model mix: the thin wrapper the single-model constructors
    /// reduce to.  Sampling it consumes exactly the RNG draws of sampling
    /// `batch_sizes` directly.
    pub fn single(model: ModelId, batch_sizes: BatchSizeDistribution) -> Self {
        Self {
            components: vec![MixComponent {
                model,
                share: 1.0,
                batch_sizes,
            }],
        }
    }

    /// A mix over models `0..shares.len()` with one batch distribution per
    /// model, ids assigned in slice order.
    ///
    /// # Panics
    /// Panics on empty input or mismatched lengths.
    pub fn from_shares(shares: &[f64], batch_sizes: &[BatchSizeDistribution]) -> Self {
        assert_eq!(
            shares.len(),
            batch_sizes.len(),
            "one batch distribution per share"
        );
        Self::new(
            shares
                .iter()
                .zip(batch_sizes)
                .enumerate()
                .map(|(i, (&share, dist))| MixComponent {
                    model: ModelId::new(i),
                    share,
                    batch_sizes: dist.clone(),
                })
                .collect(),
        )
    }

    /// The mix components, in declaration order.
    pub fn components(&self) -> &[MixComponent] {
        &self.components
    }

    /// Number of models in the mix.
    pub fn num_models(&self) -> usize {
        self.components.len()
    }

    /// One past the largest model index in the mix — the length a dense
    /// per-model table must have to cover every component.
    pub fn model_table_len(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.model.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Normalized rate share of a model (0 when absent from the mix).
    pub fn rate_share(&self, model: ModelId) -> f64 {
        let total: f64 = self.components.iter().map(|c| c.share).sum();
        self.components
            .iter()
            .find(|c| c.model == model)
            .map(|c| c.share / total)
            .unwrap_or(0.0)
    }

    /// Draws one query's `(model, batch size)`.  Single-entry mixes skip the
    /// model draw entirely, preserving the single-model RNG stream.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (ModelId, u32) {
        let component = if self.components.len() == 1 {
            &self.components[0]
        } else {
            let total: f64 = self.components.iter().map(|c| c.share).sum();
            let mut point = rng.gen::<f64>() * total;
            let mut picked = &self.components[self.components.len() - 1];
            for c in &self.components {
                if point < c.share {
                    picked = c;
                    break;
                }
                point -= c.share;
            }
            picked
        };
        (component.model, component.batch_sizes.sample(rng))
    }
}

/// Specification of a stationary multi-model trace: one arrival process
/// whose queries are tagged and batched according to a [`MixSpec`].  The
/// multi-model sibling of [`TraceSpec`](crate::TraceSpec).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedTraceSpec {
    /// Arrival process of the combined query stream.
    pub arrival: ArrivalProcess,
    /// Per-model composition of the stream.
    pub mix: MixSpec,
    /// Duration of the trace in virtual seconds.
    pub duration_s: f64,
    /// RNG seed so traces are reproducible.
    pub seed: u64,
}

impl MixedTraceSpec {
    /// Poisson arrivals at `rate_qps` with the given mix.
    pub fn poisson(rate_qps: f64, mix: MixSpec, duration_s: f64, seed: u64) -> Self {
        Self {
            arrival: ArrivalProcess::Poisson { rate_qps },
            mix,
            duration_s,
            seed,
        }
    }

    /// Generates the trace described by this specification.
    ///
    /// # Panics
    /// Panics if the duration is non-positive.
    pub fn generate(&self) -> Trace {
        assert!(self.duration_s > 0.0, "duration must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let horizon_us = (self.duration_s * 1e6) as TimeUs;
        let mut queries = Vec::new();
        let mut t: TimeUs = 0;
        let mut id = 0u64;
        loop {
            t += self.arrival.next_gap_us(&mut rng);
            if t > horizon_us {
                break;
            }
            let (model, batch) = self.mix.sample(&mut rng);
            queries.push(Query::for_model(id, model, batch, t));
            id += 1;
            // Bursts would loop forever (gap 0); cap them at a generous size.
            if matches!(self.arrival, ArrivalProcess::Burst) && queries.len() >= 10_000 {
                break;
            }
        }
        Trace {
            spec: None,
            queries,
        }
    }

    /// Generates the trace and partitions it into per-model shard traces
    /// (see [`Trace::split_by_model`]).  A **single** sequential RNG stream
    /// draws the combined trace exactly as [`Self::generate`] does — the
    /// per-model streams are projections of it, not independent generators —
    /// so the shard union is bit-identical to the unsharded trace and every
    /// query keeps its global id and arrival time.
    pub fn generate_sharded(&self) -> Vec<Trace> {
        self.generate().split_by_model(self.mix.model_table_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSpec;

    fn three_way() -> MixSpec {
        MixSpec::from_shares(
            &[0.5, 0.2, 0.3],
            &[
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::gaussian_default(),
                BatchSizeDistribution::Fixed(64),
            ],
        )
    }

    #[test]
    fn shares_normalize_and_sampling_respects_them() {
        let mix = three_way();
        assert_eq!(mix.num_models(), 3);
        assert_eq!(mix.model_table_len(), 3);
        assert!((mix.rate_share(ModelId::new(0)) - 0.5).abs() < 1e-12);
        assert_eq!(mix.rate_share(ModelId::new(9)), 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let (model, batch) = mix.sample(&mut rng);
            counts[model.index()] += 1;
            assert!(batch >= 1);
        }
        let f0 = counts[0] as f64 / 30_000.0;
        let f1 = counts[1] as f64 / 30_000.0;
        assert!((f0 - 0.5).abs() < 0.02, "share 0 observed {f0}");
        assert!((f1 - 0.2).abs() < 0.02, "share 1 observed {f1}");
    }

    #[test]
    fn single_entry_mix_preserves_the_single_model_rng_stream() {
        // A single-entry mix must consume the same draws as the wrapped
        // distribution, so single-model traces stay bit-identical.
        let dist = BatchSizeDistribution::production_default();
        let mix = MixSpec::single(ModelId::DEFAULT, dist.clone());
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let (model, batch) = mix.sample(&mut a);
            assert_eq!(model, ModelId::DEFAULT);
            assert_eq!(batch, dist.sample(&mut b));
        }
    }

    #[test]
    fn single_model_mixed_trace_equals_trace_spec() {
        let spec = TraceSpec::production(150.0, 2.0, 9);
        let mixed = MixedTraceSpec::poisson(
            150.0,
            MixSpec::single(
                ModelId::DEFAULT,
                BatchSizeDistribution::production_default(),
            ),
            2.0,
            9,
        );
        assert_eq!(spec.generate().queries, mixed.generate().queries);
    }

    #[test]
    fn generated_queries_carry_their_model_tags() {
        let trace = MixedTraceSpec::poisson(300.0, three_way(), 2.0, 3).generate();
        assert!(!trace.is_empty());
        let mut seen = [false; 3];
        for q in &trace.queries {
            seen[q.model.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all three models must appear");
        // Deterministic per seed.
        let again = MixedTraceSpec::poisson(300.0, three_way(), 2.0, 3).generate();
        assert_eq!(trace, again);
    }

    #[test]
    fn sharded_generation_projects_the_single_rng_stream() {
        let spec = MixedTraceSpec::poisson(300.0, three_way(), 2.0, 3);
        let combined = spec.generate();
        let shards = spec.generate_sharded();
        assert_eq!(shards.len(), 3);
        for (m, shard) in shards.iter().enumerate() {
            assert!(shard.queries.iter().all(|q| q.model.index() == m));
        }
        let union: Vec<Query> = shards.iter().flat_map(|s| s.queries.clone()).collect();
        assert_eq!(Trace::from_queries(union).queries, combined.queries);
    }

    #[test]
    #[should_panic(expected = "duplicate model")]
    fn duplicate_models_rejected() {
        MixSpec::new(vec![
            MixComponent {
                model: ModelId::DEFAULT,
                share: 1.0,
                batch_sizes: BatchSizeDistribution::Fixed(1),
            },
            MixComponent {
                model: ModelId::DEFAULT,
                share: 1.0,
                batch_sizes: BatchSizeDistribution::Fixed(2),
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_mix_rejected() {
        MixSpec::new(vec![]);
    }
}

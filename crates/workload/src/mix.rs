//! Multi-model query mixes.
//!
//! Production inference clusters rarely serve one model: the paper's five
//! models (NCF at 5 ms through RM2 at 350 ms, Table 3) would in practice
//! share one fleet, each contributing a *share* of the arriving query stream
//! with its own batch-size composition.  A [`MixSpec`] describes such a mix —
//! per-model rate share plus per-model batch distribution — and is the
//! multi-model generalization of a bare
//! [`BatchSizeDistribution`]: a single-entry
//! mix samples *exactly* like the wrapped distribution (same RNG draw
//! sequence), so every single-model trace remains bit-identical to the
//! pre-multi-model code paths.
//!
//! [`MixedTraceSpec`] couples a mix with an arrival process into a
//! reproducible stationary multi-model trace, mirroring
//! [`TraceSpec`](crate::TraceSpec) for the single-model case.

use crate::arrival::ArrivalProcess;
use crate::batch::BatchSizeDistribution;
use crate::query::{ModelId, Query, TimeUs};
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One model's contribution to a query mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixComponent {
    /// The model these queries target.
    pub model: ModelId,
    /// Relative rate share of the model (normalized over the mix).
    pub share: f64,
    /// Batch-size composition of this model's queries.
    pub batch_sizes: BatchSizeDistribution,
}

/// A per-model query mix: rate shares plus batch distributions.
///
/// Mixes scale to thousands of components: construction sorts model ids
/// once for the duplicate check (instead of the quadratic pairwise scan)
/// and precomputes a cumulative-share table, so [`MixSpec::sample`] is one
/// binary search rather than a linear walk over every component.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSpec {
    components: Vec<MixComponent>,
    /// Prefix sums of the component shares, in declaration order:
    /// `cumulative_shares[i]` is the sum of shares `0..=i`.  Sampling binary
    /// searches this table, which picks exactly the component the legacy
    /// linear subtraction scan picked for the same RNG draw.
    cumulative_shares: Vec<f64>,
}

// Only the components travel over the wire; the cumulative-share table is
// rebuilt (and the invariants re-checked) on the way back in, so the
// serialized form is unchanged from the pre-table layout.
impl Serialize for MixSpec {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![("components".to_string(), self.components.to_value())])
    }
}

impl Deserialize for MixSpec {
    fn from_value(value: &serde::json::Value) -> Result<Self, serde::json::Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::json::Error::new("MixSpec: expected an object"))?;
        let components: Vec<MixComponent> = serde::de_field(entries, "components")?;
        Ok(MixSpec::new(components))
    }
}

impl MixSpec {
    /// Builds a mix from explicit components.
    ///
    /// # Panics
    /// Panics if `components` is empty, any share is non-positive, or two
    /// components target the same model.
    pub fn new(components: Vec<MixComponent>) -> Self {
        assert!(!components.is_empty(), "a mix needs at least one model");
        assert!(
            components.iter().all(|c| c.share > 0.0),
            "mix shares must be positive"
        );
        // Sort-based duplicate check: O(n log n) over the model indices, so
        // a several-thousand-entry mix constructs instantly.
        let mut ids: Vec<usize> = components.iter().map(|c| c.model.index()).collect();
        ids.sort_unstable();
        if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
            panic!("duplicate model {} in mix", ModelId::new(dup[0]));
        }
        let mut acc = 0.0;
        let cumulative_shares = components
            .iter()
            .map(|c| {
                acc += c.share;
                acc
            })
            .collect();
        Self {
            components,
            cumulative_shares,
        }
    }

    /// A single-model mix: the thin wrapper the single-model constructors
    /// reduce to.  Sampling it consumes exactly the RNG draws of sampling
    /// `batch_sizes` directly.
    pub fn single(model: ModelId, batch_sizes: BatchSizeDistribution) -> Self {
        Self::new(vec![MixComponent {
            model,
            share: 1.0,
            batch_sizes,
        }])
    }

    /// A mix over models `0..shares.len()` with one batch distribution per
    /// model, ids assigned in slice order.
    ///
    /// # Panics
    /// Panics on empty input or mismatched lengths.
    pub fn from_shares(shares: &[f64], batch_sizes: &[BatchSizeDistribution]) -> Self {
        assert_eq!(
            shares.len(),
            batch_sizes.len(),
            "one batch distribution per share"
        );
        Self::new(
            shares
                .iter()
                .zip(batch_sizes)
                .enumerate()
                .map(|(i, (&share, dist))| MixComponent {
                    model: ModelId::new(i),
                    share,
                    batch_sizes: dist.clone(),
                })
                .collect(),
        )
    }

    /// The mix components, in declaration order.
    pub fn components(&self) -> &[MixComponent] {
        &self.components
    }

    /// Number of models in the mix.
    pub fn num_models(&self) -> usize {
        self.components.len()
    }

    /// One past the largest model index in the mix — the length a dense
    /// per-model table must have to cover every component.
    pub fn model_table_len(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.model.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total (unnormalized) share mass of the mix.
    fn total_share(&self) -> f64 {
        *self
            .cumulative_shares
            .last()
            .expect("a mix has at least one component")
    }

    /// Normalized rate share of a model (0 when absent from the mix).
    pub fn rate_share(&self, model: ModelId) -> f64 {
        self.components
            .iter()
            .find(|c| c.model == model)
            .map(|c| c.share / self.total_share())
            .unwrap_or(0.0)
    }

    /// Draws one query's `(model, batch size)`.  Single-entry mixes skip the
    /// model draw entirely, preserving the single-model RNG stream.
    ///
    /// Multi-entry mixes consume one uniform draw and binary search the
    /// cumulative-share table — O(log n) per query.  The search lands on the
    /// first component whose cumulative share exceeds the drawn point, which
    /// is exactly the component the old linear subtraction scan selected, so
    /// every existing trace regenerates bit-identically.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (ModelId, u32) {
        let component = if self.components.len() == 1 {
            &self.components[0]
        } else {
            let point = rng.gen::<f64>() * self.total_share();
            let index = self
                .cumulative_shares
                .partition_point(|&cum| cum <= point)
                .min(self.components.len() - 1);
            &self.components[index]
        };
        (component.model, component.batch_sizes.sample(rng))
    }
}

/// Specification of a stationary multi-model trace: one arrival process
/// whose queries are tagged and batched according to a [`MixSpec`].  The
/// multi-model sibling of [`TraceSpec`](crate::TraceSpec).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedTraceSpec {
    /// Arrival process of the combined query stream.
    pub arrival: ArrivalProcess,
    /// Per-model composition of the stream.
    pub mix: MixSpec,
    /// Duration of the trace in virtual seconds.
    pub duration_s: f64,
    /// RNG seed so traces are reproducible.
    pub seed: u64,
}

impl MixedTraceSpec {
    /// Poisson arrivals at `rate_qps` with the given mix.
    pub fn poisson(rate_qps: f64, mix: MixSpec, duration_s: f64, seed: u64) -> Self {
        Self {
            arrival: ArrivalProcess::Poisson { rate_qps },
            mix,
            duration_s,
            seed,
        }
    }

    /// Generates the trace described by this specification.
    ///
    /// # Panics
    /// Panics if the duration is non-positive.
    pub fn generate(&self) -> Trace {
        assert!(self.duration_s > 0.0, "duration must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let horizon_us = (self.duration_s * 1e6) as TimeUs;
        let mut queries = Vec::new();
        let mut t: TimeUs = 0;
        let mut id = 0u64;
        loop {
            t += self.arrival.next_gap_us(&mut rng);
            if t > horizon_us {
                break;
            }
            let (model, batch) = self.mix.sample(&mut rng);
            queries.push(Query::for_model(id, model, batch, t));
            id += 1;
            // Bursts would loop forever (gap 0); cap them at a generous size.
            if matches!(self.arrival, ArrivalProcess::Burst) && queries.len() >= 10_000 {
                break;
            }
        }
        Trace {
            spec: None,
            queries,
        }
    }

    /// Generates the trace and partitions it into per-model shard traces
    /// (see [`Trace::split_by_model`]).  A **single** sequential RNG stream
    /// draws the combined trace exactly as [`Self::generate`] does — the
    /// per-model streams are projections of it, not independent generators —
    /// so the shard union is bit-identical to the unsharded trace and every
    /// query keeps its global id and arrival time.
    pub fn generate_sharded(&self) -> Vec<Trace> {
        self.generate().split_by_model(self.mix.model_table_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSpec;

    fn three_way() -> MixSpec {
        MixSpec::from_shares(
            &[0.5, 0.2, 0.3],
            &[
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::gaussian_default(),
                BatchSizeDistribution::Fixed(64),
            ],
        )
    }

    #[test]
    fn shares_normalize_and_sampling_respects_them() {
        let mix = three_way();
        assert_eq!(mix.num_models(), 3);
        assert_eq!(mix.model_table_len(), 3);
        assert!((mix.rate_share(ModelId::new(0)) - 0.5).abs() < 1e-12);
        assert_eq!(mix.rate_share(ModelId::new(9)), 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let (model, batch) = mix.sample(&mut rng);
            counts[model.index()] += 1;
            assert!(batch >= 1);
        }
        let f0 = counts[0] as f64 / 30_000.0;
        let f1 = counts[1] as f64 / 30_000.0;
        assert!((f0 - 0.5).abs() < 0.02, "share 0 observed {f0}");
        assert!((f1 - 0.2).abs() < 0.02, "share 1 observed {f1}");
    }

    #[test]
    fn single_entry_mix_preserves_the_single_model_rng_stream() {
        // A single-entry mix must consume the same draws as the wrapped
        // distribution, so single-model traces stay bit-identical.
        let dist = BatchSizeDistribution::production_default();
        let mix = MixSpec::single(ModelId::DEFAULT, dist.clone());
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let (model, batch) = mix.sample(&mut a);
            assert_eq!(model, ModelId::DEFAULT);
            assert_eq!(batch, dist.sample(&mut b));
        }
    }

    #[test]
    fn single_model_mixed_trace_equals_trace_spec() {
        let spec = TraceSpec::production(150.0, 2.0, 9);
        let mixed = MixedTraceSpec::poisson(
            150.0,
            MixSpec::single(
                ModelId::DEFAULT,
                BatchSizeDistribution::production_default(),
            ),
            2.0,
            9,
        );
        assert_eq!(spec.generate().queries, mixed.generate().queries);
    }

    #[test]
    fn generated_queries_carry_their_model_tags() {
        let trace = MixedTraceSpec::poisson(300.0, three_way(), 2.0, 3).generate();
        assert!(!trace.is_empty());
        let mut seen = [false; 3];
        for q in &trace.queries {
            seen[q.model.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all three models must appear");
        // Deterministic per seed.
        let again = MixedTraceSpec::poisson(300.0, three_way(), 2.0, 3).generate();
        assert_eq!(trace, again);
    }

    #[test]
    fn sharded_generation_projects_the_single_rng_stream() {
        let spec = MixedTraceSpec::poisson(300.0, three_way(), 2.0, 3);
        let combined = spec.generate();
        let shards = spec.generate_sharded();
        assert_eq!(shards.len(), 3);
        for (m, shard) in shards.iter().enumerate() {
            assert!(shard.queries.iter().all(|q| q.model.index() == m));
        }
        let union: Vec<Query> = shards.iter().flat_map(|s| s.queries.clone()).collect();
        assert_eq!(Trace::from_queries(union).queries, combined.queries);
    }

    #[test]
    fn binary_search_sampling_matches_the_linear_scan() {
        // The cumulative-table binary search must pick exactly the component
        // the legacy linear subtraction scan picked for the same draw.
        fn linear_pick(components: &[MixComponent], u: f64) -> ModelId {
            let total: f64 = components.iter().map(|c| c.share).sum();
            let mut point = u * total;
            let mut picked = &components[components.len() - 1];
            for c in components {
                if point < c.share {
                    picked = c;
                    break;
                }
                point -= c.share;
            }
            picked.model
        }
        let mut rng = StdRng::seed_from_u64(12345);
        let shares: Vec<f64> = (0..2_000).map(|_| rng.gen::<f64>() + 1e-3).collect();
        let dists: Vec<BatchSizeDistribution> = shares
            .iter()
            .map(|_| BatchSizeDistribution::Fixed(1))
            .collect();
        let mix = MixSpec::from_shares(&shares, &dists);
        for _ in 0..20_000 {
            // Quantize the draw exactly as the standard f64 distribution
            // does ((bits >> 11) / 2^53), so both algorithms see the same u.
            let bits = (rng.gen::<f64>() * (1u64 << 53) as f64) as u64;
            let u = bits as f64 * (1.0 / (1u64 << 53) as f64);
            let mut probe = Replay(bits << 11);
            let (model, _) = mix.sample(&mut probe);
            assert_eq!(model, linear_pick(mix.components(), u));
        }
    }

    /// An `Rng` whose every draw is one fixed `u64` — enough to replay a
    /// single model pick through both selection algorithms.
    struct Replay(u64);
    impl rand::RngCore for Replay {
        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }

    #[test]
    fn thousands_of_components_construct_and_sample_fast() {
        let shares: Vec<f64> = (0..4_000).map(|i| 1.0 + (i % 7) as f64).collect();
        let dists: Vec<BatchSizeDistribution> = (0..4_000)
            .map(|i| BatchSizeDistribution::Fixed(1 + (i % 32) as u32))
            .collect();
        let mix = MixSpec::from_shares(&shares, &dists);
        assert_eq!(mix.num_models(), 4_000);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let (model, batch) = mix.sample(&mut rng);
            assert!(model.index() < 4_000);
            assert_eq!(batch, 1 + (model.index() % 32) as u32);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate model")]
    fn duplicate_models_rejected() {
        MixSpec::new(vec![
            MixComponent {
                model: ModelId::DEFAULT,
                share: 1.0,
                batch_sizes: BatchSizeDistribution::Fixed(1),
            },
            MixComponent {
                model: ModelId::DEFAULT,
                share: 1.0,
                batch_sizes: BatchSizeDistribution::Fixed(2),
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_mix_rejected() {
        MixSpec::new(vec![]);
    }
}

//! Construction of the `L` matrix and the QoS-penalized cost matrix
//! (paper Sec. 5.1, Eq. 2–8).
//!
//! `L[i][j]` is the time instance `j` would be occupied, measured from the
//! scheduling instant `t0`, if it were chosen to serve query `i`: the
//! instance's remaining busy time plus the predicted service latency of the
//! query on that instance type.  The QoS constraint (Eq. 3, with the paper's
//! `ξ = 0.98` noise safeguard) is folded into the matrix by replacing
//! infeasible entries with a `10 × T_qos` penalty (Eq. 8), after which the
//! problem is a plain min-cost bipartite matching with edge cost
//! `C_j · L[i][j]` (Eq. 2).

use kairos_assignment::CostMatrix;

/// Default noise-safeguard factor: completion times predicted within 2 % of
/// the QoS target are treated as violations (paper Sec. 5.1).
pub const DEFAULT_XI: f64 = 0.98;

/// Penalty multiplier applied to QoS-violating pairs (paper Eq. 8).
pub const QOS_PENALTY_FACTOR: f64 = 10.0;

/// Inputs describing one query row of the matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRow {
    /// Batch size of the query.
    pub batch_size: u32,
    /// Time the query has already waited in the central queue (`W_i`), in ms.
    pub waited_ms: f64,
}

/// Inputs describing one instance column of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceColumn {
    /// Remaining time until the instance is free, in ms (0 when idle).
    pub remaining_ms: f64,
    /// Heterogeneity coefficient `C_j` of the instance's type.
    pub coefficient: f64,
    /// Predicted service latency (ms) of each query row on this instance,
    /// aligned with the query rows.
    pub predicted_service_ms: Vec<f64>,
}

/// The assembled matrices: raw completion times `L`, the penalized version,
/// and the final cost matrix `C_j · L~[i][j]` handed to the solver.
#[derive(Debug, Clone)]
pub struct LMatrices {
    /// Raw completion-time matrix `L` (ms), before QoS penalization.
    pub completion_ms: CostMatrix,
    /// Whether each (query, instance) pair satisfies the QoS constraint.
    pub feasible: Vec<Vec<bool>>,
    /// Final solver cost matrix (`C_j` weighting and penalties applied).
    pub cost: CostMatrix,
}

/// Builds the `L`/cost matrices for one scheduling round.
///
/// # Panics
/// Panics on inconsistent dimensions or non-positive QoS target.
pub fn build_matrices(
    queries: &[QueryRow],
    instances: &[InstanceColumn],
    qos_ms: f64,
    xi: f64,
) -> LMatrices {
    assert!(!queries.is_empty(), "need at least one query");
    assert!(!instances.is_empty(), "need at least one instance");
    assert!(qos_ms > 0.0, "QoS target must be positive");
    assert!(xi > 0.0 && xi <= 1.0, "xi must lie in (0, 1]");
    for col in instances {
        assert_eq!(
            col.predicted_service_ms.len(),
            queries.len(),
            "column predictions must cover every query"
        );
        assert!(
            col.coefficient > 0.0 && col.coefficient <= 1.0,
            "C_j must lie in (0, 1]"
        );
    }

    let m = queries.len();
    let n = instances.len();
    let penalty = QOS_PENALTY_FACTOR * qos_ms;

    let mut completion = Vec::with_capacity(m * n);
    let mut cost = Vec::with_capacity(m * n);
    let mut feasible = vec![vec![false; n]; m];

    for (i, q) in queries.iter().enumerate() {
        for (j, inst) in instances.iter().enumerate() {
            // Completion time from t0: wait for the instance, then serve.
            let l_ij = inst.remaining_ms + inst.predicted_service_ms[i];
            completion.push(l_ij);
            // Eq. 3 with the ξ safeguard: (L_ij + W_i) <= ξ T_qos.
            let ok = l_ij + q.waited_ms <= xi * qos_ms;
            feasible[i][j] = ok;
            let effective_l = if ok { l_ij } else { penalty };
            cost.push(inst.coefficient * effective_l);
        }
    }

    LMatrices {
        completion_ms: CostMatrix::from_vec(m, n, completion).expect("finite completion times"),
        feasible,
        cost: CostMatrix::from_vec(m, n, cost).expect("finite costs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queries() -> Vec<QueryRow> {
        vec![
            QueryRow {
                batch_size: 10,
                waited_ms: 0.0,
            },
            QueryRow {
                batch_size: 800,
                waited_ms: 5.0,
            },
        ]
    }

    fn instances() -> Vec<InstanceColumn> {
        vec![
            // Base GPU: idle, fast for both queries.
            InstanceColumn {
                remaining_ms: 0.0,
                coefficient: 1.0,
                predicted_service_ms: vec![5.0, 18.0],
            },
            // Cheap CPU: busy for 3 ms, fine for the small query but the large
            // query would blow the 25 ms QoS target.
            InstanceColumn {
                remaining_ms: 3.0,
                coefficient: 0.4,
                predicted_service_ms: vec![8.0, 60.0],
            },
        ]
    }

    #[test]
    fn completion_includes_remaining_time() {
        let m = build_matrices(&queries(), &instances(), 25.0, 1.0);
        assert_eq!(m.completion_ms.get(0, 0), 5.0);
        assert_eq!(m.completion_ms.get(0, 1), 11.0);
        assert_eq!(m.completion_ms.get(1, 1), 63.0);
    }

    #[test]
    fn qos_violations_are_penalized_by_ten_times_target() {
        let m = build_matrices(&queries(), &instances(), 25.0, 1.0);
        assert!(m.feasible[0][0] && m.feasible[0][1]);
        assert!(m.feasible[1][0]);
        assert!(!m.feasible[1][1]);
        // Penalized entry: C_j * 10 * T_qos = 0.4 * 250.
        assert_eq!(m.cost.get(1, 1), 0.4 * 250.0);
        // Feasible entries are weighted completion times.
        assert_eq!(m.cost.get(0, 1), 0.4 * 11.0);
        assert_eq!(m.cost.get(1, 0), 18.0);
    }

    #[test]
    fn xi_safeguard_tightens_the_boundary() {
        // Query 0 on instance 1 completes at 11 ms + 0 wait; with QoS 11.2 ms
        // it is feasible at xi = 1.0 but infeasible at the default xi = 0.98.
        let m_loose = build_matrices(&queries(), &instances(), 11.2, 1.0);
        assert!(m_loose.feasible[0][1]);
        let m_tight = build_matrices(&queries(), &instances(), 11.2, DEFAULT_XI);
        assert!(!m_tight.feasible[0][1]);
    }

    #[test]
    fn waiting_time_counts_against_qos() {
        // The large query already waited 5 ms; on the GPU it completes at
        // 18 ms for a total of 23 ms, so a 22 ms target is violated but a
        // 24 ms target is met (xi = 1 to keep the arithmetic exact).
        let m = build_matrices(&queries(), &instances(), 22.0, 1.0);
        assert!(!m.feasible[1][0]);
        let m = build_matrices(&queries(), &instances(), 24.0, 1.0);
        assert!(m.feasible[1][0]);
    }

    #[test]
    #[should_panic(expected = "cover every query")]
    fn dimension_mismatch_is_rejected() {
        let mut inst = instances();
        inst[0].predicted_service_ms.pop();
        build_matrices(&queries(), &inst, 25.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "C_j")]
    fn rejects_out_of_range_coefficient() {
        let mut inst = instances();
        inst[1].coefficient = 1.5;
        build_matrices(&queries(), &inst, 25.0, 1.0);
    }
}

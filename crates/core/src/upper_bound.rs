//! Throughput upper-bound estimation (paper Sec. 5.2, Eq. 9–15).
//!
//! Evaluating the real throughput of a heterogeneous configuration is
//! expensive (it needs instance allocation and a load ramp), so Kairos ranks
//! configurations by a closed-form *upper bound* on the throughput any query
//! distribution could achieve on them.  The bound splits the query mix at a
//! batch-size cutoff `s` (the largest query the auxiliary type can serve
//! within QoS): a fraction `f` of queries is small enough for the auxiliary
//! instances, the remaining `1-f` must run on base instances at their reduced
//! rate `Q_b^{s+}`.  Whichever side saturates first is the bottleneck.
//!
//! With multiple auxiliary types, the bound optimistically assumes every
//! auxiliary type shares the largest cutoff (`f' = max f_i`), which keeps the
//! estimate an upper bound (Sec. 5.2).

use kairos_models::{
    latency::LatencyTable,
    mlmodel::{spec, ModelKind, ModelSpec},
    Config, PoolSpec,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Inputs of the one-base-type / one-auxiliary-type bound (Eq. 12–13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SingleAuxInputs {
    /// Number of base instances (`u`).
    pub base_nodes: usize,
    /// Number of auxiliary instances (`v`).
    pub aux_nodes: usize,
    /// Standalone base throughput over the full query mix (`Q_b`), QPS.
    pub q_base: f64,
    /// Base throughput when serving only larger-than-`s` queries (`Q_b^{s+}`), QPS.
    pub q_base_splus: f64,
    /// Auxiliary throughput over QoS-feasible (small) queries (`Q_a`), QPS.
    pub q_aux: f64,
    /// Fraction of queries with batch size at most `s` (`f`).
    pub fraction_small: f64,
}

/// One auxiliary class in the general bound (Eq. 14–15): node count `v_i` and
/// small-query throughput `Q_a^i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuxClass {
    /// Number of instances of this auxiliary type (`v_i`).
    pub nodes: usize,
    /// Throughput of one instance over queries below the shared cutoff (`Q_a^i`), QPS.
    pub qps: f64,
}

/// Numerical tolerance on the `f` fraction boundaries.
const F_EPS: f64 = 1e-9;

/// Computes the upper bound for one base type and one auxiliary type
/// (Eq. 12 / Eq. 13, which reduce to Eq. 9 / Eq. 11 when `u = v = 1`).
pub fn upper_bound_single(inputs: &SingleAuxInputs) -> f64 {
    let aux = [AuxClass {
        nodes: inputs.aux_nodes,
        qps: inputs.q_aux,
    }];
    upper_bound_general(
        inputs.base_nodes,
        inputs.q_base,
        inputs.q_base_splus,
        &aux,
        inputs.fraction_small,
    )
}

/// Computes the general n-auxiliary-type upper bound (Eq. 14–15).
///
/// * `base_nodes` — `u`, number of base instances.
/// * `q_base` — `Q_b`, base throughput over the full mix.
/// * `q_base_splus` — `Q_b^{s+}`, base throughput over larger-than-cutoff queries.
/// * `aux` — auxiliary classes `(v_i, Q_a^i)`.
/// * `fraction_small` — `f'`, the fraction of queries below the shared cutoff.
pub fn upper_bound_general(
    base_nodes: usize,
    q_base: f64,
    q_base_splus: f64,
    aux: &[AuxClass],
    fraction_small: f64,
) -> f64 {
    assert!(
        q_base >= 0.0 && q_base_splus >= 0.0,
        "throughputs must be non-negative"
    );
    assert!(
        (0.0..=1.0 + F_EPS).contains(&fraction_small),
        "fraction must lie in [0, 1], got {fraction_small}"
    );
    for a in aux {
        assert!(a.qps >= 0.0, "auxiliary throughput must be non-negative");
    }

    let u = base_nodes as f64;
    let aux_total: f64 = aux.iter().map(|a| a.nodes as f64 * a.qps).sum();
    let f = fraction_small;

    // Degenerate mixes.
    if f <= F_EPS {
        // Every query is larger than the cutoff: only the base instances can
        // serve, at their large-query rate.
        return u * q_base_splus;
    }
    if f >= 1.0 - F_EPS {
        // Every query fits the auxiliary instances: both sides serve at full
        // rate and simply add up.
        return aux_total + u * q_base;
    }

    // Offload pressure the auxiliary side pushes onto the base side (Eq. 14).
    let offload = aux_total * (1.0 - f) / f;
    let base_capacity = u * q_base_splus;

    if base_capacity <= offload {
        // Base instances are the bottleneck (Eq. 9 / Eq. 12).
        base_capacity / (1.0 - f)
    } else {
        // Auxiliary instances are the bottleneck; the base side has slack to
        // absorb additional (small) queries (Eq. 11 / Eq. 13 / Eq. 15).
        let slack_ratio = if base_capacity > 0.0 {
            (base_capacity - offload) / base_capacity
        } else {
            0.0
        };
        aux_total / f + slack_ratio * u * q_base
    }
}

/// The sample statistics of one candidate shared cutoff `s`: everything in
/// the bound that depends on the batch sample depends on it *only through*
/// `s`, and `s` ranges over at most one value per pool type.  Precomputing
/// these once per estimator makes [`ThroughputEstimator::estimate`]
/// O(types) per configuration instead of O(sample) — the cost that used to
/// dominate ranking a thousand-configuration candidate space, and triply so
/// with one ranking pass per variant lane.  The arithmetic (filter in
/// sample order, sum, divide by count) is exactly the per-call computation
/// it replaces, so every bound is bit-identical.
#[derive(Debug, Clone)]
struct CutoffStats {
    /// The shared cutoff `s` these statistics describe.
    cutoff: u32,
    /// Fraction of the sample with batch size at most `s` (`f'`).
    fraction_small: f64,
    /// Base throughput over larger-than-`s` queries (`Q_b^{s+}`), QPS.
    q_base_splus: f64,
    /// Per-type throughput over at-most-`s` queries (`Q_a^i`), QPS; indexed
    /// by pool type (0.0 where no sample entry qualifies).
    aux_qps: Vec<f64>,
}

/// Estimates upper bounds for whole configurations, deriving the `Q` and `f`
/// parameters from latency profiles and an observed batch-size sample —
/// exactly the information Kairos gathers online (learned latencies plus the
/// query monitor window).
#[derive(Debug, Clone)]
pub struct ThroughputEstimator {
    pool: PoolSpec,
    model: ModelSpec,
    latency: LatencyTable,
    batch_sample: Vec<u32>,
    /// QoS cutoff per pool type, precomputed (see [`Self::cutoff`]).
    cutoffs: Vec<Option<u32>>,
    /// Base throughput over the full mix (`Q_b`), QPS, precomputed.
    q_base: f64,
    /// Sample statistics for every distinct auxiliary cutoff value.
    cutoff_stats: Vec<CutoffStats>,
}

impl ThroughputEstimator {
    /// Creates an estimator.
    ///
    /// # Panics
    /// Panics if the batch sample is empty or the latency table misses a
    /// (model, type) pair used by the pool.
    pub fn new(
        pool: PoolSpec,
        model_kind: ModelKind,
        latency: LatencyTable,
        batch_sample: Vec<u32>,
    ) -> Self {
        assert!(!batch_sample.is_empty(), "batch sample must not be empty");
        let model = spec(model_kind);
        for t in pool.types() {
            latency.expect(model_kind, &t.name);
        }
        let mut est = Self {
            pool,
            model,
            latency,
            batch_sample,
            cutoffs: Vec::new(),
            q_base: 0.0,
            cutoff_stats: Vec::new(),
        };
        est.cutoffs = (0..est.pool.num_types())
            .map(|i| est.compute_cutoff(i))
            .collect();
        let base_index = est.pool.base_index();
        est.q_base = est
            .mean_latency_over(base_index, |_| true)
            .map(|ms| 1000.0 / ms)
            .unwrap_or(0.0);
        // A configuration's shared cutoff is the max over its auxiliary
        // types' cutoffs, so it can only take one of these values.
        let mut distinct: Vec<u32> = est
            .cutoffs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != base_index)
            .filter_map(|(_, c)| *c)
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        est.cutoff_stats = distinct
            .into_iter()
            .map(|s| CutoffStats {
                cutoff: s,
                fraction_small: est.batch_sample.iter().filter(|&&b| b <= s).count() as f64
                    / est.batch_sample.len() as f64,
                q_base_splus: est
                    .mean_latency_over(base_index, |b| b > s)
                    .map(|ms| 1000.0 / ms)
                    .unwrap_or(est.q_base),
                aux_qps: (0..est.pool.num_types())
                    .map(|idx| {
                        est.mean_latency_over(idx, |b| b <= s)
                            .map(|ms| 1000.0 / ms)
                            .unwrap_or(0.0)
                    })
                    .collect(),
            })
            .collect();
        est
    }

    /// The pool this estimator describes.
    pub fn pool(&self) -> &PoolSpec {
        &self.pool
    }

    /// The served model.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// QoS cutoff `s_i` of an instance type: largest batch it can serve within
    /// QoS (None if it cannot even serve a single-request query).
    pub fn cutoff(&self, type_index: usize) -> Option<u32> {
        self.cutoffs[type_index]
    }

    /// Derives a type's QoS cutoff from its latency profile (the
    /// construction-time computation behind [`Self::cutoff`]).
    fn compute_cutoff(&self, type_index: usize) -> Option<u32> {
        let name = &self.pool.types()[type_index].name;
        self.latency
            .expect(self.model.kind, name)
            .max_batch_within(self.model.qos_ms)
            .map(|b| b.min(self.model.max_batch_size))
    }

    /// Mean service latency (ms) of a type over the sample entries selected by
    /// `filter`; `None` when no entry matches.
    fn mean_latency_over<F: Fn(u32) -> bool>(&self, type_index: usize, filter: F) -> Option<f64> {
        let name = &self.pool.types()[type_index].name;
        let profile = self.latency.expect(self.model.kind, name);
        let selected: Vec<f64> = self
            .batch_sample
            .iter()
            .copied()
            .filter(|&b| filter(b))
            .map(|b| profile.latency_ms(b))
            .collect();
        if selected.is_empty() {
            None
        } else {
            Some(selected.iter().sum::<f64>() / selected.len() as f64)
        }
    }

    /// Estimates the throughput upper bound (QPS) of a configuration.
    ///
    /// O(types) per call: every sample-dependent quantity in the bound
    /// depends on the sample only through the shared cutoff, and the
    /// statistics of every possible cutoff are precomputed at construction
    /// (`CutoffStats`) with arithmetic identical to the inline
    /// computation they replaced.
    pub fn estimate(&self, config: &Config) -> f64 {
        assert_eq!(
            config.counts().len(),
            self.pool.num_types(),
            "config/pool mismatch"
        );
        let base_index = self.pool.base_index();
        let u = config.count(base_index);

        // Shared cutoff: the largest s over the auxiliary types present in
        // the configuration (paper's optimistic simplification for
        // multiple auxiliary types).
        let mut s_max: Option<u32> = None;
        for (idx, &count) in config.counts().iter().enumerate() {
            if idx == base_index || count == 0 {
                continue;
            }
            if let Some(s) = self.cutoffs[idx] {
                s_max = Some(s_max.map_or(s, |m| m.max(s)));
            }
        }

        let Some(s_max) = s_max else {
            // No usable auxiliary instances: the bound is the homogeneous rate.
            return u as f64 * self.q_base;
        };

        let stats = self
            .cutoff_stats
            .iter()
            .find(|cs| cs.cutoff == s_max)
            .expect("every auxiliary cutoff has precomputed statistics");

        // Auxiliary classes: throughput over the small-query mass.
        let aux: Vec<AuxClass> = config
            .counts()
            .iter()
            .enumerate()
            .filter(|&(idx, &count)| idx != base_index && count > 0 && self.cutoffs[idx].is_some())
            .map(|(idx, &count)| AuxClass {
                nodes: count,
                qps: stats.aux_qps[idx],
            })
            .collect();

        upper_bound_general(
            u,
            self.q_base,
            stats.q_base_splus,
            &aux,
            stats.fraction_small,
        )
    }

    /// Ranks configurations by their upper bound, highest first.
    ///
    /// Each configuration's bound is independent of the others, so the
    /// estimates are computed as a rayon fan-out over the candidates (the
    /// planner ranks on the order of a thousand configurations per pass,
    /// paper Sec. 5.2).
    pub fn rank_configs(&self, configs: &[Config]) -> Vec<(Config, f64)> {
        let mut ranked: Vec<(Config, f64)> = configs
            .par_iter()
            .map(|c| (c.clone(), self.estimate(c)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite bounds"));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2};

    /// Fig. 7, Scenario 1: the base instance is the bottleneck.
    #[test]
    fn figure7_scenario1() {
        let inputs = SingleAuxInputs {
            base_nodes: 1,
            aux_nodes: 1,
            q_base: 100.0,
            q_base_splus: 90.0,
            q_aux: 150.0,
            fraction_small: 0.6,
        };
        let ub = upper_bound_single(&inputs);
        assert!((ub - 225.0).abs() < 1e-9, "expected 225, got {ub}");
    }

    /// Fig. 7, Scenario 2: the auxiliary instance is the bottleneck and the
    /// base contributes slack throughput.
    #[test]
    fn figure7_scenario2() {
        let inputs = SingleAuxInputs {
            base_nodes: 1,
            aux_nodes: 1,
            q_base: 100.0,
            q_base_splus: 90.0,
            q_aux: 140.0,
            fraction_small: 0.7,
        };
        let ub = upper_bound_single(&inputs);
        // Q_a / f = 200, slack = (90 - 60) / 90 * 100 = 33.33 -> 233.33.
        assert!((ub - 233.333333).abs() < 1e-3, "expected 233.3, got {ub}");
    }

    #[test]
    fn no_auxiliary_reduces_to_homogeneous_rate() {
        let ub = upper_bound_general(3, 50.0, 20.0, &[], 0.5);
        assert!((ub - 150.0).abs() < 1e-9);
    }

    #[test]
    fn no_base_and_large_queries_present_gives_zero() {
        let aux = [AuxClass {
            nodes: 5,
            qps: 100.0,
        }];
        let ub = upper_bound_general(0, 0.0, 0.0, &aux, 0.8);
        assert_eq!(ub, 0.0);
    }

    #[test]
    fn all_small_queries_adds_both_sides() {
        let aux = [AuxClass {
            nodes: 2,
            qps: 80.0,
        }];
        let ub = upper_bound_general(1, 120.0, 60.0, &aux, 1.0);
        assert!((ub - (160.0 + 120.0)).abs() < 1e-9);
    }

    #[test]
    fn all_large_queries_uses_only_base_splus_rate() {
        let aux = [AuxClass {
            nodes: 9,
            qps: 500.0,
        }];
        let ub = upper_bound_general(2, 120.0, 70.0, &aux, 0.0);
        assert!((ub - 140.0).abs() < 1e-9);
    }

    #[test]
    fn bound_is_monotone_in_node_counts() {
        let base = SingleAuxInputs {
            base_nodes: 1,
            aux_nodes: 1,
            q_base: 100.0,
            q_base_splus: 80.0,
            q_aux: 150.0,
            fraction_small: 0.7,
        };
        let more_base = SingleAuxInputs {
            base_nodes: 2,
            ..base
        };
        let more_aux = SingleAuxInputs {
            aux_nodes: 2,
            ..base
        };
        assert!(upper_bound_single(&more_base) >= upper_bound_single(&base));
        assert!(upper_bound_single(&more_aux) >= upper_bound_single(&base));
    }

    fn estimator(model: ModelKind) -> ThroughputEstimator {
        let pool = PoolSpec::new(ec2::paper_pool());
        // A deterministic, production-like sample: 80 % small, 20 % large.
        let mut sample = Vec::new();
        for i in 0..200u32 {
            sample.push(10 + (i % 40) * 5); // 10..205
        }
        for i in 0..50u32 {
            sample.push(600 + (i % 10) * 40); // 600..960
        }
        ThroughputEstimator::new(pool, model, paper_calibration(), sample)
    }

    #[test]
    fn estimator_cutoffs_follow_calibration() {
        let est = estimator(ModelKind::Wnd);
        // Base type has no relevance for cutoff here, but must exist.
        assert!(est.cutoff(0).unwrap() >= 1000);
        let c1 = est.cutoff(1).unwrap();
        let c2 = est.cutoff(2).unwrap();
        assert!(c1 > c2, "c5n should sustain larger batches than r5n");
    }

    #[test]
    fn heterogeneous_config_bound_exceeds_homogeneous_bound_for_rm2() {
        let est = estimator(ModelKind::Rm2);
        let homo = est.estimate(&Config::new(vec![4, 0, 0, 0]));
        let hetero = est.estimate(&Config::new(vec![3, 1, 3, 0]));
        assert!(
            hetero > homo,
            "heterogeneous bound {hetero} should exceed homogeneous bound {homo}"
        );
    }

    #[test]
    fn adding_instances_never_lowers_the_estimated_bound() {
        let est = estimator(ModelKind::Dien);
        let small = Config::new(vec![2, 0, 1, 0]);
        for type_index in 0..4 {
            let bigger = small.with_one_more(type_index);
            assert!(
                est.estimate(&bigger) + 1e-9 >= est.estimate(&small),
                "adding type {type_index} lowered the bound"
            );
        }
    }

    #[test]
    fn rank_configs_is_sorted_descending() {
        let est = estimator(ModelKind::Ncf);
        let configs = vec![
            Config::new(vec![1, 0, 0, 0]),
            Config::new(vec![2, 0, 3, 0]),
            Config::new(vec![1, 1, 1, 1]),
        ];
        let ranked = est.rank_configs(&configs);
        assert_eq!(ranked.len(), 3);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    #[should_panic(expected = "batch sample")]
    fn estimator_rejects_empty_sample() {
        let pool = PoolSpec::new(ec2::paper_pool());
        ThroughputEstimator::new(pool, ModelKind::Ncf, paper_calibration(), vec![]);
    }
}

//! Serverless lane policy assignment for the multi-model serving facade.
//!
//! The Kairos paper provisions every model an always-on slice of the budget;
//! with thousands of models most lanes see a trickle of traffic and the
//! always-on floors dominate the bill.  [`ServerlessRuntime`] is the
//! control-plane half of the serverless lane (the data-plane half — parking,
//! cold starts, billing — lives in `kairos_sim::ServerlessConfig`): it
//! decides, per model lane, whether the lane runs always-on or under a
//! keep-alive policy, based on the lane's planned demand rate.
//!
//! The split rule is a single QPS threshold.  Lanes at or above it stay
//! always-on — a cold start in the hot path would dominate tail latency.
//! Lanes below it get the runtime's keep-alive policy: their containers park
//! (and stop billing) once idle past the policy's deadline, and the next
//! dispatch pays the cold-start cost.  The budget planner drops the
//! one-instance floor for these lanes (scale-to-zero), which is what frees
//! the budget the hot lanes reuse.

use kairos_models::{ColdStartProfile, KeepAlivePolicy};
use kairos_sim::ServerlessConfig;

/// Per-service serverless policy: which lanes scale to zero, under what
/// keep-alive policy, and what a cold start costs them.
#[derive(Debug, Clone)]
pub struct ServerlessRuntime {
    policy: KeepAlivePolicy,
    cold_start: ColdStartProfile,
    sparse_qps_threshold: f64,
}

impl ServerlessRuntime {
    /// Creates a runtime that puts every lane with planned demand strictly
    /// below `sparse_qps_threshold` QPS under `policy`, paying `cold_start`
    /// on wake-ups.  Lanes at or above the threshold stay always-on.
    ///
    /// # Panics
    /// Panics if `sparse_qps_threshold` is not finite and non-negative.
    pub fn new(
        policy: KeepAlivePolicy,
        cold_start: ColdStartProfile,
        sparse_qps_threshold: f64,
    ) -> Self {
        assert!(
            sparse_qps_threshold.is_finite() && sparse_qps_threshold >= 0.0,
            "sparse QPS threshold must be finite and non-negative"
        );
        Self {
            policy,
            cold_start,
            sparse_qps_threshold,
        }
    }

    /// The keep-alive policy sparse lanes run under.
    pub fn policy(&self) -> &KeepAlivePolicy {
        &self.policy
    }

    /// The cold-start cost a parked lane pays on wake-up.
    pub fn cold_start(&self) -> &ColdStartProfile {
        &self.cold_start
    }

    /// The demand threshold (QPS) below which a lane goes serverless.
    pub fn sparse_qps_threshold(&self) -> f64 {
        self.sparse_qps_threshold
    }

    /// Whether a lane with the given planned demand rate is sparse enough to
    /// serve under the keep-alive policy (and scale to zero).
    pub fn is_sparse(&self, demand_qps: f64) -> bool {
        demand_qps < self.sparse_qps_threshold
    }

    /// Per-lane policy assignment for the given planned demand rates:
    /// `Some(policy)` for sparse lanes, `None` (always-on) for hot ones.
    pub fn assign(&self, demand_qps: &[f64]) -> Vec<Option<KeepAlivePolicy>> {
        demand_qps
            .iter()
            .map(|&qps| self.is_sparse(qps).then(|| self.policy.clone()))
            .collect()
    }

    /// The engine-side configuration for the given planned demand rates:
    /// the [`Self::assign`] policy vector plus the cold-start profile.
    pub fn config_for(&self, demand_qps: &[f64]) -> ServerlessConfig {
        ServerlessConfig {
            policies: self.assign(demand_qps),
            cold_start: self.cold_start.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::ColdStartCost;

    fn runtime(threshold: f64) -> ServerlessRuntime {
        ServerlessRuntime::new(
            KeepAlivePolicy::fixed(10_000_000).unwrap(),
            ColdStartProfile::uniform(ColdStartCost::new(200_000, 800_000)),
            threshold,
        )
    }

    #[test]
    fn threshold_splits_lanes_into_serverless_and_always_on() {
        let rt = runtime(1.0);
        assert!(rt.is_sparse(0.0));
        assert!(rt.is_sparse(0.99));
        assert!(!rt.is_sparse(1.0), "the threshold itself stays always-on");
        assert!(!rt.is_sparse(250.0));

        let assignment = rt.assign(&[300.0, 0.2, 0.0, 1.0]);
        assert!(assignment[0].is_none());
        assert_eq!(assignment[1].as_ref(), Some(rt.policy()));
        assert_eq!(assignment[2].as_ref(), Some(rt.policy()));
        assert!(assignment[3].is_none());
    }

    #[test]
    fn config_for_carries_the_cold_start_profile() {
        let rt = runtime(1.0);
        let config = rt.config_for(&[300.0, 0.2]);
        assert_eq!(config.policies.len(), 2);
        assert!(config.policies[0].is_none());
        assert!(config.policies[1].is_some());
        assert_eq!(
            config.cold_start.cost(0).total_us(),
            rt.cold_start().cost(0).total_us()
        );
    }

    #[test]
    fn zero_threshold_disables_every_lane() {
        let rt = runtime(0.0);
        assert!(rt.assign(&[0.0, 0.5, 100.0]).iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_threshold_rejected() {
        let _ = runtime(-1.0);
    }
}

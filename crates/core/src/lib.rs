//! # kairos-core
//!
//! The primary contribution of *Kairos: Building Cost-Efficient Machine
//! Learning Inference Systems with Heterogeneous Cloud Resources* (HPDC'23):
//!
//! 1. **Query distribution** ([`distribution::KairosScheduler`], Sec. 5.1) —
//!    at every scheduling instant, queued queries are matched to instances by
//!    a min-cost bipartite matching over heterogeneity-weighted predicted
//!    completion times, with QoS-violating pairs penalized.  Latencies are
//!    learned online; no prior profiling is required.
//! 2. **Throughput upper-bound estimation and configuration selection**
//!    ([`upper_bound`], [`selection`], [`planner::KairosPlanner`], Sec. 5.2) —
//!    every configuration under the cost budget is ranked by a closed-form
//!    throughput upper bound and the final configuration is picked by a
//!    similarity rule, with **zero** online evaluations.
//! 3. **Kairos+** ([`kairos_plus`], Algorithm 1) — an optional
//!    upper-bound-guided online search that finds the optimum with very few
//!    evaluations thanks to bound and sub-configuration pruning.
//! 4. **Central controller** ([`controller::KairosController`], Sec. 6) —
//!    the online glue: query monitoring, latency learning, (re)planning and
//!    scheduler construction, including the POP-style sharded planning mode.
//! 5. **Online serving loop** ([`serving::ServingSystem`]) — the controller
//!    in the loop of a live, reconfigurable cluster: it observes every
//!    arrival and completion, replans on a cadence or on arrival-rate drift,
//!    and steers the cluster to the new plan through graceful add/retire
//!    actions (the Fig. 12 adaptation story, end to end).
//! 6. **Multi-model serving** ([`service::InferenceService`]) — the
//!    model-less facade: N per-model serving loops behind one model-tagged
//!    query API, sharing a single hourly budget by demand-weighted
//!    water-filling, each replanning on its own knowledge signature.
//! 7. **Serverless lane** ([`serverless::ServerlessRuntime`]) — scale-to-zero
//!    for the sparse model tail: lanes planned below a QPS threshold drop
//!    their always-on budget floor, receive one parkable base-instance
//!    vessel, and adopt a keep-alive policy whose bits fold into the
//!    knowledge signature.
//!
//! ```
//! use kairos_core::planner::KairosPlanner;
//! use kairos_models::{calibration::paper_calibration, ec2, ModelKind, PoolSpec};
//! use kairos_workload::BatchSizeDistribution;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Plan a heterogeneous pool for RM2 under a 2.5 $/hr budget.
//! let planner = KairosPlanner::new(
//!     PoolSpec::new(ec2::paper_pool()),
//!     ModelKind::Rm2,
//!     paper_calibration(),
//! );
//! let mut rng = StdRng::seed_from_u64(1);
//! let sample = BatchSizeDistribution::production_default().sample_many(&mut rng, 2000);
//! let plan = planner.plan(2.5, &sample);
//! assert!(plan.chosen.cost(&PoolSpec::new(ec2::paper_pool())) <= 2.5);
//! ```

#![warn(missing_docs)]

pub mod coefficient;
pub mod controller;
pub mod distribution;
pub mod kairos_plus;
pub mod lmatrix;
pub mod planner;
pub mod selection;
pub mod serverless;
pub mod service;
pub mod serving;
pub mod upper_bound;
pub mod variants;

pub use coefficient::heterogeneity_coefficients;
pub use controller::KairosController;
pub use distribution::KairosScheduler;
pub use kairos_plus::{kairos_plus_search, SearchResult};
pub use lmatrix::{build_matrices, InstanceColumn, LMatrices, QueryRow, DEFAULT_XI};
pub use planner::{KairosPlanner, Plan, PlanCache};
pub use selection::select_configuration;
pub use serverless::ServerlessRuntime;
pub use service::{InferenceService, MultiScheduler, MultiServingOutcome};
pub use serving::{
    MarketState, PurchaseBackoff, ReconfigEvent, ReplanTrigger, ServingOptions, ServingOutcome,
    ServingSystem, VariantSwitch,
};
pub use upper_bound::{
    upper_bound_general, upper_bound_single, AuxClass, SingleAuxInputs, ThroughputEstimator,
};
pub use variants::{
    build_lanes, paper_variant_planner, prune_dominated, VariantChoice, VariantLane,
    VariantPlanner, VariantRuntime,
};

//! Kairos+ — the upper-bound-assisted pruning search (paper Algorithm 1).
//!
//! Kairos+ spends a *small* number of online evaluations to find the optimal
//! configuration.  It walks configurations in descending upper-bound order
//! and, after each real evaluation, prunes
//!
//! * every configuration whose upper bound is at most the best throughput
//!   observed so far (it provably cannot win), and
//! * every *sub-configuration* of the evaluated configuration (removing
//!   instances can never increase throughput).
//!
//! The evaluator is a closure so the same search can run against the
//! discrete-event simulator (benchmarks) or against a cheap analytic stand-in
//! (unit tests).

use kairos_models::Config;

/// Outcome of a Kairos+ search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best configuration found (None only if no candidate was provided).
    pub best_config: Option<Config>,
    /// Measured throughput of the best configuration.
    pub best_throughput: f64,
    /// Configurations actually evaluated online, in evaluation order, with
    /// their measured throughput.
    pub evaluated: Vec<(Config, f64)>,
}

impl SearchResult {
    /// Number of online evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.evaluated.len()
    }
}

/// Runs Algorithm 1.
///
/// * `ranked` — every affordable configuration with its upper bound, sorted
///   by upper bound in descending order (a [`crate::planner::Plan`]'s
///   `ranked` field).
/// * `evaluate` — measures the actual allowable throughput of a configuration
///   (an expensive online evaluation in the real system, a simulation here).
/// * `max_evaluations` — optional safety cap on the number of evaluations.
pub fn kairos_plus_search<F>(
    ranked: &[(Config, f64)],
    mut evaluate: F,
    max_evaluations: Option<usize>,
) -> SearchResult
where
    F: FnMut(&Config) -> f64,
{
    assert!(
        ranked.windows(2).all(|w| w[0].1 >= w[1].1),
        "candidates must be sorted by descending upper bound"
    );

    // The live candidate set ("configs" in Algorithm 1), tracked by index.
    let mut alive: Vec<bool> = vec![true; ranked.len()];
    let mut curr_best = 0.0f64;
    let mut best_config: Option<Config> = None;
    let mut evaluated: Vec<(Config, f64)> = Vec::new();

    for idx in 0..ranked.len() {
        if !alive[idx] {
            continue;
        }
        if let Some(cap) = max_evaluations {
            if evaluated.len() >= cap {
                break;
            }
        }
        let (config, _ub) = &ranked[idx];

        // Actual (expensive) evaluation.
        let throughput = evaluate(config);
        evaluated.push((config.clone(), throughput));
        alive[idx] = false;

        if throughput > curr_best {
            curr_best = throughput;
            best_config = Some(config.clone());
            // Prune every configuration whose upper bound cannot beat the
            // new best.
            for (j, keep) in alive.iter_mut().enumerate() {
                if *keep && ranked[j].1 <= curr_best {
                    *keep = false;
                }
            }
        }

        // Prune every sub-configuration of the evaluated configuration.
        for (j, keep) in alive.iter_mut().enumerate() {
            if *keep && ranked[j].0.is_sub_config_of(config) {
                *keep = false;
            }
        }
    }

    SearchResult {
        best_config,
        best_throughput: curr_best,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(counts: &[usize]) -> Config {
        Config::new(counts.to_vec())
    }

    /// A toy "true throughput" that the upper bound over-estimates by 5 %.
    fn truth(config: &Config) -> f64 {
        config
            .counts()
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (10.0 - i as f64))
            .sum()
    }

    fn ranked_space() -> Vec<(Config, f64)> {
        let configs = vec![
            cfg(&[3, 0, 0]),
            cfg(&[2, 1, 0]),
            cfg(&[2, 0, 1]),
            cfg(&[1, 2, 0]),
            cfg(&[1, 1, 1]),
            cfg(&[1, 0, 2]),
            cfg(&[2, 0, 0]),
            cfg(&[1, 1, 0]),
            cfg(&[1, 0, 0]),
        ];
        let mut ranked: Vec<(Config, f64)> = configs
            .into_iter()
            .map(|c| {
                let ub = truth(&c) * 1.05;
                (c, ub)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        ranked
    }

    #[test]
    fn finds_the_true_optimum() {
        let ranked = ranked_space();
        let result = kairos_plus_search(&ranked, truth, None);
        let best_truth = ranked
            .iter()
            .map(|(c, _)| truth(c))
            .fold(f64::MIN, f64::max);
        assert_eq!(result.best_throughput, best_truth);
        assert_eq!(result.best_config, Some(cfg(&[3, 0, 0])));
    }

    #[test]
    fn prunes_most_of_the_space_when_bounds_are_tight() {
        let ranked = ranked_space();
        let result = kairos_plus_search(&ranked, truth, None);
        // With a consistent 1.2x bound, evaluating the best configuration
        // first prunes everything whose UB <= best truth.
        assert!(
            result.evaluations() < ranked.len() / 2,
            "expected heavy pruning, evaluated {} of {}",
            result.evaluations(),
            ranked.len()
        );
    }

    #[test]
    fn sub_configurations_are_pruned_even_without_bound_help() {
        // Make the bound useless (huge) so only sub-config pruning applies.
        let mut ranked = ranked_space();
        for (i, entry) in ranked.iter_mut().enumerate() {
            entry.1 = 1e6 - i as f64;
        }
        let result = kairos_plus_search(&ranked, truth, None);
        // (2,0,0), (1,0,0), (1,1,0) ... are sub-configs of earlier evaluated
        // configurations, so they are never evaluated.
        let evaluated_set: Vec<Config> = result.evaluated.iter().map(|(c, _)| c.clone()).collect();
        assert!(!evaluated_set.contains(&cfg(&[1, 0, 0])));
        assert!(result.evaluations() < ranked.len());
        assert_eq!(result.best_config, Some(cfg(&[3, 0, 0])));
    }

    #[test]
    fn respects_evaluation_cap() {
        let ranked = ranked_space();
        let result = kairos_plus_search(&ranked, truth, Some(2));
        assert!(result.evaluations() <= 2);
        assert!(result.best_config.is_some());
    }

    #[test]
    fn empty_space_returns_nothing() {
        let result = kairos_plus_search(&[], |_| 1.0, None);
        assert!(result.best_config.is_none());
        assert_eq!(result.evaluations(), 0);
        assert_eq!(result.best_throughput, 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_candidates_rejected() {
        let ranked = vec![(cfg(&[1, 0, 0]), 1.0), (cfg(&[2, 0, 0]), 2.0)];
        kairos_plus_search(&ranked, truth, None);
    }
}

//! The Kairos central controller: the online glue between query monitoring,
//! latency learning, configuration planning and query distribution
//! (paper Sec. 6 "Implementation").
//!
//! The controller observes the arriving query stream (batch sizes) and the
//! completed queries (measured latencies), and can at any point
//!
//! * produce a [`Plan`] for a cost budget from its *current* knowledge — this
//!   is what lets Kairos react to load changes in "one shot" (Fig. 12), and
//! * hand out a [`KairosScheduler`] seeded with everything it has learned.
//!
//! It also implements the POP-style sharded planning mode the paper mentions
//! for scaling to very large systems: the budget is split into `k` shards,
//! each planned independently, and the shard configurations are summed.

use crate::distribution::KairosScheduler;
use crate::planner::{KairosPlanner, Plan};
use kairos_models::{
    latency::{LatencyProfile, LatencyTable},
    mlmodel::ModelKind,
    predictor::PredictorBank,
    Config, KeepAlivePolicy, PoolSpec, MAX_BATCH_SIZE,
};
use kairos_workload::QueryMonitor;

/// Online controller state.
#[derive(Debug, Clone)]
pub struct KairosController {
    pool: PoolSpec,
    model: ModelKind,
    monitor: QueryMonitor,
    predictors: PredictorBank,
    /// Optional latency priors used for instance types that have not yet been
    /// observed often enough for a linear fit.
    priors: Option<LatencyTable>,
    /// Delivered accuracy of the model *variant* this controller currently
    /// plans for.  `None` means the reference (full-precision) deployment —
    /// the legacy, variant-unaware mode — and leaves the
    /// [knowledge signature](Self::knowledge_signature) untouched so cached
    /// plans from before variant support remain valid.
    variant_accuracy: Option<f64>,
    /// Keep-alive policy of the serverless lane this controller plans for.
    /// `None` means the lane is always-on (the legacy mode) and leaves the
    /// [knowledge signature](Self::knowledge_signature) untouched, so cached
    /// plans from before serverless support remain valid.
    serverless_policy: Option<KeepAlivePolicy>,
}

impl KairosController {
    /// Creates a controller with no prior latency knowledge.
    pub fn new(pool: PoolSpec, model: ModelKind) -> Self {
        Self {
            pool,
            model,
            monitor: QueryMonitor::new(),
            predictors: PredictorBank::new(),
            priors: None,
            variant_accuracy: None,
            serverless_policy: None,
        }
    }

    /// Creates a controller seeded with latency priors (e.g. profiles from a
    /// previous deployment of the same model).
    pub fn with_priors(pool: PoolSpec, model: ModelKind, priors: LatencyTable) -> Self {
        let mut c = Self::new(pool, model);
        c.priors = Some(priors);
        c
    }

    /// The pool the controller currently plans over.
    pub fn pool(&self) -> &PoolSpec {
        &self.pool
    }

    /// The model this controller serves.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// Replaces the planning pool — how a market-aware serving loop feeds
    /// live offering prices (and post-preemption cooldown penalties) into
    /// the planner.  The pool's prices are part of the
    /// [knowledge signature](Self::knowledge_signature), so a price change
    /// invalidates any cached plan.
    ///
    /// # Panics
    /// Panics if the new pool's shape (type names, in order) differs from
    /// the current one: latency knowledge is keyed by type name and would
    /// silently misresolve.
    pub fn set_pool(&mut self, pool: PoolSpec) {
        assert!(
            pool.num_types() == self.pool.num_types()
                && pool
                    .types()
                    .iter()
                    .zip(self.pool.types())
                    .all(|(a, b)| a.name == b.name),
            "set_pool must preserve the pool's shape (only prices may change)"
        );
        self.pool = pool;
    }

    /// Switches the controller to a different variant of its model: the
    /// variant's calibrated latency profiles become the new priors, the
    /// online latency fits are discarded (they described the *old* variant's
    /// kernels), and the delivered accuracy is recorded so it joins the
    /// [knowledge signature](Self::knowledge_signature) — a variant switch
    /// must invalidate every cached plan.  The query monitor is kept: the
    /// arriving batch-size mix is a property of the workload, not of the
    /// variant serving it.
    pub fn adopt_variant(&mut self, priors: LatencyTable, accuracy: f64) {
        self.priors = Some(priors);
        self.predictors = PredictorBank::new();
        self.variant_accuracy = Some(accuracy);
    }

    /// Delivered accuracy of the variant this controller plans for, or `None`
    /// in the legacy reference-only mode (see [`Self::adopt_variant`]).
    pub fn variant_accuracy(&self) -> Option<f64> {
        self.variant_accuracy
    }

    /// Sets (or clears) the keep-alive policy of the lane this controller
    /// plans for.  The policy joins the
    /// [knowledge signature](Self::knowledge_signature): moving a lane
    /// between always-on and any serverless policy — or between two
    /// policies — changes what a plan costs, so cached plans must retire.
    pub fn set_serverless_policy(&mut self, policy: Option<KeepAlivePolicy>) {
        self.serverless_policy = policy;
    }

    /// Keep-alive policy of the lane this controller plans for, or `None`
    /// for an always-on lane (see [`Self::set_serverless_policy`]).
    pub fn serverless_policy(&self) -> Option<&KeepAlivePolicy> {
        self.serverless_policy.as_ref()
    }

    /// Records the batch size of an arriving query (feeds the monitor window).
    pub fn observe_query(&mut self, batch_size: u32) {
        self.monitor.observe(batch_size);
    }

    /// Records a completed query's measured service latency (feeds the online
    /// latency predictors).
    pub fn observe_completion(&mut self, instance_type: &str, batch_size: u32, latency_ms: f64) {
        self.predictors
            .observe(instance_type, batch_size, latency_ms);
    }

    /// Number of queries currently tracked by the monitor window.
    pub fn observed_queries(&self) -> usize {
        self.monitor.len()
    }

    /// The query monitor window (batch-size mix of recent arrivals).
    pub fn monitor(&self) -> &QueryMonitor {
        &self.monitor
    }

    /// The latency knowledge the controller currently has: online fits where
    /// available, priors otherwise.  Returns `None` if some instance type has
    /// neither a fit nor a prior (planning would be guesswork).
    pub fn learned_table(&self) -> Option<LatencyTable> {
        let mut table = LatencyTable::new();
        for ty in self.pool.types() {
            let fitted = self
                .predictors
                .get(&ty.name)
                .and_then(|p| p.linear_fit())
                .filter(|(_, slope)| *slope > 0.0)
                .map(|(intercept, slope)| LatencyProfile::new(intercept.max(0.0), slope));
            let profile = match fitted {
                Some(p) => p,
                None => self
                    .priors
                    .as_ref()
                    .and_then(|t| t.get(self.model, &ty.name))?,
            };
            table.insert(self.model, &ty.name, profile);
        }
        Some(table)
    }

    /// The batch-size sample the planner should use: the monitor window, or a
    /// conservative single-bucket sample when nothing has been observed yet
    /// (assuming worst-case largest queries until evidence says otherwise).
    fn batch_sample(&self) -> Vec<u32> {
        if self.monitor.is_empty() {
            vec![MAX_BATCH_SIZE]
        } else {
            self.monitor.snapshot()
        }
    }

    /// Plans a configuration for the given hourly budget from current
    /// knowledge.  Returns `None` until enough latency knowledge exists.
    pub fn plan(&self, budget_per_hour: f64) -> Option<Plan> {
        let table = self.learned_table()?;
        let planner = KairosPlanner::new(self.pool.clone(), self.model, table);
        Some(planner.plan(budget_per_hour, &self.batch_sample()))
    }

    /// A quantized fingerprint of everything a [`Plan`] depends on besides
    /// the budget: the monitor's batch-size mix and the learned latency
    /// coefficients.  Two controllers (or the same controller at two points
    /// in time) with equal signatures would produce materially identical
    /// ranked lists, so replanning loops can reuse a prior plan — this is
    /// what [`crate::PlanCache`] keys on.
    ///
    /// Quantization is deliberately coarse: the mix histogram is bucketed
    /// into sixteen batch-size bands at 5 % mass resolution, and latency
    /// coefficients are rounded (1/16 ms intercepts, 2⁻¹² ms/query slopes),
    /// so sampling jitter in a stationary workload maps to one signature
    /// while a real mix shift or a revised latency fit changes it.
    pub fn knowledge_signature(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(FNV_PRIME);
        };

        // Batch-mix histogram: 16 bands over [0, MAX_BATCH_SIZE], each
        // band's mass quantized to twentieths of the window.
        let mut bands = [0usize; 16];
        let mut total = 0usize;
        for batch in self.monitor.iter() {
            let band = (batch.min(MAX_BATCH_SIZE) as usize * 16) / (MAX_BATCH_SIZE as usize + 1);
            bands[band] += 1;
            total += 1;
        }
        match std::num::NonZeroUsize::new(total) {
            // Worst-case sample sentinel (see `batch_sample`).
            None => mix(u64::MAX),
            Some(total) => {
                for count in bands {
                    mix((count * 20 / total.get()) as u64);
                }
            }
        }

        // Learned latency coefficients per pool type, in pool order.
        match self.learned_table() {
            None => mix(0),
            Some(table) => {
                for ty in self.pool.types() {
                    let profile = table.expect(self.model, &ty.name);
                    mix((profile.intercept_ms * 16.0).round() as i64 as u64);
                    mix((profile.slope_ms * 4096.0).round() as i64 as u64);
                }
            }
        }

        // Live offering prices, exact: a market price step (or a cooldown
        // penalty after a preemption notice) must invalidate cached plans —
        // the affordable set itself changed.  Prices move in discrete steps,
        // so no quantization is needed to keep stationary signatures stable.
        for ty in self.pool.types() {
            mix(ty.price_per_hour.to_bits());
        }

        // Variant identity, exact: a switch to a different variant changes
        // the delivered accuracy and must retire every cached plan.  Legacy
        // (reference-only) controllers skip this mix entirely so their
        // signatures are bit-identical to pre-variant builds.
        if let Some(accuracy) = self.variant_accuracy {
            mix(accuracy.to_bits());
        }

        // Keep-alive policy, exact: a lane moving between always-on and a
        // serverless policy (or between two policies) changes the billing
        // model behind every plan.  Always-on controllers skip this mix so
        // their signatures match pre-serverless builds bit for bit.
        if let Some(policy) = &self.serverless_policy {
            mix(policy.signature_bits());
        }
        hash
    }

    /// POP-style sharded planning: split the budget into `shards` equal parts,
    /// plan each independently, and merge the shard configurations by summing
    /// instance counts.  Useful when the configuration space under the full
    /// budget would be too large to enumerate.
    ///
    /// Every shard gets the same budget and sees the same batch sample, so
    /// the shard plans are identical: the planner runs **once** and the shard
    /// configuration is multiplied by the shard count.
    pub fn plan_sharded(&self, budget_per_hour: f64, shards: usize) -> Option<Config> {
        assert!(shards >= 1, "need at least one shard");
        let table = self.learned_table()?;
        let planner = KairosPlanner::new(self.pool.clone(), self.model, table);
        let shard_budget = budget_per_hour / shards as f64;
        let plan = planner.plan(shard_budget, &self.batch_sample());
        let merged = plan
            .chosen
            .counts()
            .iter()
            .map(|&c| c * shards)
            .collect::<Vec<_>>();
        Some(Config::new(merged))
    }

    /// Builds a query-distribution scheduler seeded with the controller's
    /// current latency knowledge.
    pub fn make_scheduler(&self) -> KairosScheduler {
        match self.learned_table() {
            Some(table) => KairosScheduler::with_priors(self.model, &table),
            None => KairosScheduler::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2};

    fn pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    fn feed_latency_observations(c: &mut KairosController) {
        let table = paper_calibration();
        for ty in ec2::paper_pool() {
            let p = table.expect(ModelKind::Rm2, &ty.name);
            for batch in [10u32, 100, 400, 900] {
                c.observe_completion(&ty.name, batch, p.latency_ms(batch));
            }
        }
    }

    #[test]
    fn learned_table_requires_fits_or_priors() {
        let mut c = KairosController::new(pool(), ModelKind::Rm2);
        assert!(c.learned_table().is_none());
        feed_latency_observations(&mut c);
        let table = c.learned_table().unwrap();
        let truth = paper_calibration();
        for ty in ec2::paper_pool() {
            let learned = table.expect(ModelKind::Rm2, &ty.name);
            let actual = truth.expect(ModelKind::Rm2, &ty.name);
            assert!((learned.latency_ms(500) - actual.latency_ms(500)).abs() < 0.5);
        }
    }

    #[test]
    fn priors_fill_in_for_unobserved_types() {
        let c = KairosController::with_priors(pool(), ModelKind::Wnd, paper_calibration());
        assert!(c.learned_table().is_some());
        assert!(c.plan(2.5).is_some());
    }

    #[test]
    fn plan_uses_observed_batch_mix() {
        let mut c = KairosController::with_priors(pool(), ModelKind::Rm2, paper_calibration());
        // Observe a small-query-heavy stream.
        for i in 0..2000u32 {
            c.observe_query(10 + i % 200);
        }
        for i in 0..100u32 {
            c.observe_query(700 + i % 300);
        }
        assert_eq!(c.observed_queries(), 2100);
        let plan = c.plan(2.5).unwrap();
        assert!(
            !plan.chosen.is_homogeneous(&pool()),
            "small-heavy RM2 mix should go heterogeneous"
        );
    }

    #[test]
    fn planning_without_observations_is_conservative_but_possible() {
        let c = KairosController::with_priors(pool(), ModelKind::Dien, paper_calibration());
        // No observed queries: the sample degenerates to the largest batch, so
        // the planner cannot credit auxiliary instances with anything.
        let plan = c.plan(2.5).unwrap();
        assert!(plan.chosen.count(0) >= 1);
    }

    #[test]
    fn sharded_plan_costs_at_most_the_budget() {
        let mut c = KairosController::with_priors(pool(), ModelKind::Rm2, paper_calibration());
        for i in 0..1000u32 {
            c.observe_query(5 + i % 300);
        }
        let merged = c.plan_sharded(5.0, 2).unwrap();
        assert!(merged.cost(&pool()) <= 5.0 + 1e-9);
        assert!(merged.total_instances() >= 2);
    }

    #[test]
    fn sharded_plan_is_the_shard_plan_scaled() {
        let mut c = KairosController::with_priors(pool(), ModelKind::Rm2, paper_calibration());
        for i in 0..1000u32 {
            c.observe_query(5 + i % 300);
        }
        let shards = 3usize;
        let merged = c.plan_sharded(7.5, shards).unwrap();
        let single = c.plan(7.5 / shards as f64).unwrap().chosen;
        let expected: Vec<usize> = single.counts().iter().map(|&n| n * shards).collect();
        assert_eq!(merged.counts(), &expected[..]);
    }

    #[test]
    fn scheduler_is_seeded_with_learned_knowledge() {
        let mut c = KairosController::new(pool(), ModelKind::Rm2);
        feed_latency_observations(&mut c);
        let s = c.make_scheduler();
        assert!(s.predictors().total_observations() > 0);
    }

    #[test]
    fn price_changes_join_the_knowledge_signature() {
        let mut c = KairosController::with_priors(pool(), ModelKind::Rm2, paper_calibration());
        for i in 0..2000u32 {
            c.observe_query(10 + i % 300);
        }
        let before = c.knowledge_signature();
        // Re-setting the same pool leaves the signature unchanged.
        c.set_pool(pool());
        assert_eq!(c.knowledge_signature(), before);
        // A price move (a market step) must change it, so cached plans die.
        let mut repriced = ec2::paper_pool();
        repriced[2].price_per_hour = 0.05;
        c.set_pool(PoolSpec::new(repriced));
        assert_ne!(c.knowledge_signature(), before);
    }

    #[test]
    fn adopting_a_variant_changes_the_signature_and_resets_latency_fits() {
        let mut c = KairosController::with_priors(pool(), ModelKind::Rm2, paper_calibration());
        for i in 0..2000u32 {
            c.observe_query(10 + i % 300);
        }
        feed_latency_observations(&mut c);
        assert_eq!(c.variant_accuracy(), None);
        let before = c.knowledge_signature();

        // Adopt an int8-style variant: same profile table scaled 1.8x faster.
        let mut faster = LatencyTable::new();
        let truth = paper_calibration();
        for ty in ec2::paper_pool() {
            let p = truth.expect(ModelKind::Rm2, &ty.name);
            faster.insert(
                ModelKind::Rm2,
                &ty.name,
                LatencyProfile::new(p.intercept_ms / 1.8, p.slope_ms / 1.8),
            );
        }
        c.adopt_variant(faster.clone(), 0.97);
        assert_eq!(c.variant_accuracy(), Some(0.97));
        // Online fits are gone: the learned table is now the variant priors.
        let learned = c.learned_table().unwrap();
        for ty in ec2::paper_pool() {
            let got = learned.expect(ModelKind::Rm2, &ty.name);
            let want = faster.expect(ModelKind::Rm2, &ty.name);
            assert_eq!(got.intercept_ms.to_bits(), want.intercept_ms.to_bits());
            assert_eq!(got.slope_ms.to_bits(), want.slope_ms.to_bits());
        }
        let after = c.knowledge_signature();
        assert_ne!(after, before, "a variant switch must retire cached plans");
        // Same priors, different accuracy: still a different signature.
        c.adopt_variant(faster, 0.95);
        assert_ne!(c.knowledge_signature(), after);
        // The workload monitor survives the switch.
        assert_eq!(c.observed_queries(), 2000);
    }

    #[test]
    fn keep_alive_policy_moves_change_the_signature() {
        let mut c = KairosController::with_priors(pool(), ModelKind::Rm2, paper_calibration());
        for i in 0..2000u32 {
            c.observe_query(10 + i % 300);
        }
        assert!(c.serverless_policy().is_none());
        let always_on = c.knowledge_signature();

        // Always-on -> fixed keep-alive: cached plans must retire.
        c.set_serverless_policy(Some(KeepAlivePolicy::fixed(10_000_000).unwrap()));
        let fixed_10s = c.knowledge_signature();
        assert_ne!(fixed_10s, always_on);
        // A different deadline is a different policy.
        c.set_serverless_policy(Some(KeepAlivePolicy::fixed(60_000_000).unwrap()));
        let fixed_60s = c.knowledge_signature();
        assert_ne!(fixed_60s, fixed_10s);
        // A policy-family move (fixed -> hybrid) changes it too.
        c.set_serverless_policy(Some(KeepAlivePolicy::hybrid(1_000_000, 24, 0.95).unwrap()));
        assert_ne!(c.knowledge_signature(), fixed_60s);
        // Clearing the policy restores the pre-serverless signature exactly.
        c.set_serverless_policy(None);
        assert_eq!(c.knowledge_signature(), always_on);
    }

    #[test]
    #[should_panic(expected = "preserve the pool's shape")]
    fn set_pool_rejects_shape_changes() {
        let mut c = KairosController::with_priors(pool(), ModelKind::Rm2, paper_calibration());
        c.set_pool(PoolSpec::new(ec2::figure1_pool()));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let c = KairosController::with_priors(pool(), ModelKind::Rm2, paper_calibration());
        let _ = c.plan_sharded(2.5, 0);
    }
}

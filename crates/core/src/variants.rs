//! Model-less variant selection: the accuracy axis of the planner.
//!
//! A [`VariantCatalog`] publishes, per model,
//! a reference (full-precision) deployment plus cheaper quantized/distilled
//! variants that trade accuracy for latency.  This module lowers that
//! catalog into the existing planning machinery the same way PR 5's
//! offering catalog lowers purchase options into a flat
//! [`PoolSpec`]: every variant becomes a *lane*
//! with its own concrete [`LatencyTable`], and the unchanged
//! [`ThroughputEstimator`](crate::ThroughputEstimator) ranks configurations
//! per lane.  The variant axis is then just one more loop around the
//! solver:
//!
//! 1. **Dominance pruning** ([`prune_dominated`]) — a variant that is no
//!    more accurate *and* no faster on any instance type than another is
//!    Pareto-dominated on both axes the planner cares about and is dropped
//!    before any estimator runs (the variant analogue of the Kairos+
//!    candidate pruning).
//! 2. **Per-lane ranking** ([`VariantPlanner::rank_configs_variants`]) —
//!    each surviving lane above the accuracy floor ranks the affordable
//!    configuration space under its own latency table; the per-lane lists
//!    merge into one (upper bound, accuracy)-ordered frontier.
//! 3. **Admissible selection** ([`VariantPlanner::plan_for_demand`]) — the
//!    highest-accuracy admissible lane with a demand-covering configuration
//!    in budget wins; when no lane covers, the one with the largest
//!    achievable bound serves degraded (downgrade-under-pressure), and the
//!    next replan re-promotes automatically once headroom returns.
//!
//! The online half (per-replan switching inside a live serving loop) lives
//! in [`crate::serving`]; this module is the pure planning layer it calls.

use crate::controller::KairosController;
use crate::planner::PlanCache;
use kairos_models::enumerate_configs;
use kairos_models::{
    latency::{LatencyProfile, LatencyTable},
    mlmodel::ModelKind,
    Config, EnumerationOptions, ModelVariant, PoolSpec, VariantCatalog,
};

/// One deployable variant of a model, lowered against a concrete pool: the
/// variant's identity plus its latency knowledge in both the table form the
/// controller wants and the pool-ordered form the engine hot-swap wants.
#[derive(Debug, Clone)]
pub struct VariantLane {
    /// The catalog variant this lane serves.
    pub variant: ModelVariant,
    /// The variant's per-(model, type) latency table — the priors a
    /// controller adopts when switching to this lane.
    pub priors: LatencyTable,
    /// The same profiles in pool-type order — the slice
    /// `SimEngine::set_model_profiles` takes when the switch goes live.
    pub profiles: Vec<LatencyProfile>,
}

impl VariantLane {
    /// Delivered accuracy of this lane's variant.
    pub fn accuracy(&self) -> f64 {
        self.variant.accuracy
    }

    /// The variant's name within its model family (e.g. `"int8"`).
    pub fn name(&self) -> &str {
        &self.variant.name
    }

    /// Whether this lane serves the reference (full-precision) variant.
    pub fn is_reference(&self) -> bool {
        self.variant.reference
    }
}

/// Lowers a model's catalog variants against a pool and a base (reference)
/// latency table: one [`VariantLane`] per variant, in the catalog's order
/// (reference first, then accuracy-descending).
///
/// # Panics
/// Panics if the catalog has no variants for `model`, or if `base` lacks a
/// profile for some pool type.
pub fn build_lanes(
    pool: &PoolSpec,
    model: ModelKind,
    base: &LatencyTable,
    catalog: &VariantCatalog,
) -> Vec<VariantLane> {
    let variants = catalog.variants_for(model);
    assert!(
        !variants.is_empty(),
        "variant catalog has no entries for model {model}"
    );
    variants
        .iter()
        .map(|variant| {
            let mut priors = LatencyTable::new();
            let mut profiles = Vec::with_capacity(pool.num_types());
            for ty in pool.types() {
                let profile = variant.profile_on(&ty.name, base.expect(model, &ty.name));
                priors.insert(model, &ty.name, profile);
                profiles.push(profile);
            }
            VariantLane {
                variant: variant.clone(),
                priors,
                profiles,
            }
        })
        .collect()
}

/// Whether lane `a` Pareto-dominates lane `b` on the two axes the planner
/// trades: at least as accurate, and at least as fast (intercept and slope)
/// on *every* pool type, with at least one of those comparisons strict.
fn dominates(a: &VariantLane, b: &VariantLane) -> bool {
    if a.variant.accuracy < b.variant.accuracy {
        return false;
    }
    let mut strict = a.variant.accuracy > b.variant.accuracy;
    for (pa, pb) in a.profiles.iter().zip(&b.profiles) {
        if pa.intercept_ms > pb.intercept_ms || pa.slope_ms > pb.slope_ms {
            return false;
        }
        strict |= pa.intercept_ms < pb.intercept_ms || pa.slope_ms < pb.slope_ms;
    }
    strict
}

/// Drops every lane Pareto-dominated by another on (accuracy, latency) —
/// a dominated variant can never be the right answer at any accuracy floor,
/// so pruning it up front spares the estimator an entire ranking pass (the
/// variant analogue of the Kairos+ candidate pruning).  The reference lane
/// is always kept: it is the legacy-equivalence anchor every serving loop
/// starts from, even when an equally accurate but faster variant exists.
pub fn prune_dominated(lanes: Vec<VariantLane>) -> Vec<VariantLane> {
    let keep: Vec<bool> = lanes
        .iter()
        .enumerate()
        .map(|(j, lane)| {
            lane.is_reference()
                || !lanes
                    .iter()
                    .enumerate()
                    .any(|(i, other)| i != j && dominates(other, lane))
        })
        .collect();
    lanes
        .into_iter()
        .zip(keep)
        .filter_map(|(lane, keep)| keep.then_some(lane))
        .collect()
}

/// One entry of the variant-aware ranking: a lane, a configuration, and the
/// configuration's throughput upper bound under that lane's latency table.
#[derive(Debug, Clone)]
pub struct VariantChoice {
    /// Index of the lane in [`VariantPlanner::lanes`].
    pub lane: usize,
    /// The variant's name within its model family.
    pub variant: String,
    /// Delivered accuracy of the lane.
    pub accuracy: f64,
    /// The configuration.
    pub config: Config,
    /// Throughput upper bound of `config` under the lane's latency table.
    pub upper_bound: f64,
}

/// The accuracy-aware configuration planner: the Kairos estimator run once
/// per (pruned, admissible) variant lane, with selection over the merged
/// frontier.  See the module docs for where this sits in the pipeline.
#[derive(Debug, Clone)]
pub struct VariantPlanner {
    pool: PoolSpec,
    model: ModelKind,
    lanes: Vec<VariantLane>,
}

impl VariantPlanner {
    /// Builds the planner for `model`: lowers the catalog against the pool
    /// and base table ([`build_lanes`]) and prunes dominated variants
    /// ([`prune_dominated`]).
    pub fn new(
        pool: PoolSpec,
        model: ModelKind,
        base: &LatencyTable,
        catalog: &VariantCatalog,
    ) -> Self {
        let lanes = prune_dominated(build_lanes(&pool, model, base, catalog));
        Self { pool, model, lanes }
    }

    /// The surviving lanes, reference first then accuracy-descending.
    pub fn lanes(&self) -> &[VariantLane] {
        &self.lanes
    }

    /// The indices of the lanes meeting the accuracy floor (all lanes when
    /// `min_accuracy` is `None`).  The `1e-9` slack keeps a floor set to a
    /// variant's published accuracy from excluding that variant over the
    /// last bit of an `f64`.
    fn admissible(&self, min_accuracy: Option<f64>) -> Vec<usize> {
        (0..self.lanes.len())
            .filter(|&i| {
                min_accuracy.is_none_or(|floor| self.lanes[i].variant.accuracy + 1e-9 >= floor)
            })
            .collect()
    }

    /// Ranks the affordable configuration space under every admissible lane
    /// and merges the per-lane lists into one frontier, ordered by upper
    /// bound (descending), then accuracy (descending), then lane index.
    /// The enumeration runs **once** — the affordable set depends only on
    /// the budget, not on the variant — and each lane reuses it.
    ///
    /// # Panics
    /// Panics if the budget cannot afford any configuration, or if no lane
    /// meets the accuracy floor.
    pub fn rank_configs_variants(
        &self,
        budget_per_hour: f64,
        batch_sample: &[u32],
        min_accuracy: Option<f64>,
    ) -> Vec<VariantChoice> {
        let admissible = self.admissible(min_accuracy);
        assert!(
            !admissible.is_empty(),
            "no variant of {} meets the accuracy floor {min_accuracy:?}",
            self.model
        );
        let configs = enumerate_configs(
            &self.pool,
            &EnumerationOptions::with_budget(budget_per_hour),
        );
        assert!(
            !configs.is_empty(),
            "budget {budget_per_hour} cannot afford any configuration with a base instance"
        );
        let mut merged: Vec<VariantChoice> = Vec::with_capacity(admissible.len() * configs.len());
        for &i in &admissible {
            let lane = &self.lanes[i];
            let estimator = crate::ThroughputEstimator::new(
                self.pool.clone(),
                self.model,
                lane.priors.clone(),
                batch_sample.to_vec(),
            );
            for (config, upper_bound) in estimator.rank_configs(&configs) {
                merged.push(VariantChoice {
                    lane: i,
                    variant: lane.variant.name.clone(),
                    accuracy: lane.variant.accuracy,
                    config,
                    upper_bound,
                });
            }
        }
        merged.sort_by(|a, b| {
            b.upper_bound
                .total_cmp(&a.upper_bound)
                .then(b.accuracy.total_cmp(&a.accuracy))
                .then(a.lane.cmp(&b.lane))
        });
        merged
    }

    /// The accuracy-aware analogue of the serving loop's demand planner:
    /// among admissible lanes, the **highest-accuracy** lane with a
    /// configuration in budget whose upper bound covers
    /// `demand_qps × headroom` wins (with the *cheapest* such configuration,
    /// as in single-variant serving); when no lane covers, the admissible
    /// lane with the largest achievable bound serves degraded.  Returns
    /// `None` when no lane meets the floor.
    pub fn plan_for_demand(
        &self,
        budget_per_hour: f64,
        batch_sample: &[u32],
        demand_qps: f64,
        headroom: f64,
        min_accuracy: Option<f64>,
    ) -> Option<VariantChoice> {
        let admissible = self.admissible(min_accuracy);
        let required = demand_qps * headroom;
        let configs = enumerate_configs(
            &self.pool,
            &EnumerationOptions::with_budget(budget_per_hour),
        );
        let mut fallback: Option<VariantChoice> = None;
        let mut best: Option<VariantChoice> = None;
        for &i in &admissible {
            let lane = &self.lanes[i];
            let estimator = crate::ThroughputEstimator::new(
                self.pool.clone(),
                self.model,
                lane.priors.clone(),
                batch_sample.to_vec(),
            );
            let ranked = estimator.rank_configs(&configs);
            let covering =
                ranked
                    .iter()
                    .filter(|(_, ub)| *ub >= required)
                    .min_by(|(ca, ua), (cb, ub)| {
                        ca.cost(&self.pool)
                            .partial_cmp(&cb.cost(&self.pool))
                            .expect("finite costs")
                            .then(ub.partial_cmp(ua).expect("finite bounds"))
                    });
            let choice = |(config, ub): &(Config, f64)| VariantChoice {
                lane: i,
                variant: lane.variant.name.clone(),
                accuracy: lane.variant.accuracy,
                config: config.clone(),
                upper_bound: *ub,
            };
            if let Some(found) = covering {
                let found = choice(found);
                // Lanes iterate accuracy-descending: the first covering
                // lane is the most accurate one.
                if best
                    .as_ref()
                    .is_none_or(|b| found.accuracy > b.accuracy + 1e-12)
                {
                    best = Some(found);
                }
            } else if let Some(top) = ranked.first() {
                let top = choice(top);
                if fallback
                    .as_ref()
                    .is_none_or(|f| top.upper_bound > f.upper_bound)
                {
                    fallback = Some(top);
                }
            }
        }
        best.or(fallback)
    }

    /// The frontier query: among admissible lanes, the globally **cheapest**
    /// configuration in budget whose upper bound covers
    /// `demand_qps × headroom` (at equal cost the higher-accuracy lane
    /// wins).  Where [`Self::plan_for_demand`] answers the serving loop's
    /// question — the most accurate service that still meets demand — this
    /// answers the capacity planner's: what does meeting demand *cost* at a
    /// given accuracy floor.  Sweeping the floor traces the accuracy-vs-cost
    /// frontier; the strictest floor (reference only) is exactly what
    /// single-variant Kairos pays.  Returns `None` when no admissible lane
    /// covers the demand.
    ///
    /// # Panics
    /// Panics if the budget cannot afford any configuration, or if no lane
    /// meets the accuracy floor.
    pub fn cheapest_for_demand(
        &self,
        budget_per_hour: f64,
        batch_sample: &[u32],
        demand_qps: f64,
        headroom: f64,
        min_accuracy: Option<f64>,
    ) -> Option<VariantChoice> {
        let required = demand_qps * headroom;
        self.rank_configs_variants(budget_per_hour, batch_sample, min_accuracy)
            .into_iter()
            .filter(|c| c.upper_bound >= required)
            .min_by(|a, b| {
                a.config
                    .cost(&self.pool)
                    .total_cmp(&b.config.cost(&self.pool))
                    .then(b.accuracy.total_cmp(&a.accuracy))
            })
    }
}

/// The per-model runtime state of online variant switching inside a serving
/// loop: the (pruned) lanes, one [`PlanCache`] per lane (each lane has its
/// own knowledge signature, so caches never alias), and which lane is live.
/// Lane `0` is always the reference variant — the state a fresh engine
/// starts in.
#[derive(Debug, Clone)]
pub struct VariantRuntime {
    lanes: Vec<VariantLane>,
    caches: Vec<PlanCache>,
    active: usize,
}

impl VariantRuntime {
    /// Wraps pruned lanes into runtime state, starting on the reference.
    ///
    /// # Panics
    /// Panics unless lane 0 exists and is the reference variant.
    pub fn new(lanes: Vec<VariantLane>) -> Self {
        assert!(
            lanes.first().is_some_and(|l| l.is_reference()),
            "lane 0 must be the reference variant"
        );
        let caches = vec![PlanCache::new(); lanes.len()];
        Self {
            lanes,
            caches,
            active: 0,
        }
    }

    /// The lanes, reference first then accuracy-descending.
    pub fn lanes(&self) -> &[VariantLane] {
        &self.lanes
    }

    /// Index of the live lane.
    pub fn active(&self) -> usize {
        self.active
    }

    /// The live lane.
    pub fn active_lane(&self) -> &VariantLane {
        &self.lanes[self.active]
    }

    /// Makes lane `index` the live one.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn set_active(&mut self, index: usize) {
        assert!(index < self.lanes.len(), "lane {index} out of range");
        self.active = index;
    }

    /// Picks the lane the loop should serve on for the coming interval:
    /// the highest-accuracy admissible lane whose ranked plan covers
    /// `demand_qps × headroom` within the budget, else the admissible lane
    /// with the largest achievable bound (downgrade-under-pressure; the
    /// same rule re-promotes automatically once demand recedes).  The live
    /// lane is evaluated with the loop's real `controller` — its online
    /// latency fits included — while every other lane is probed through a
    /// clone that adopts the lane's static priors, so probing never
    /// perturbs live state.  Per-lane [`PlanCache`]s keep repeated probes
    /// under stationary knowledge near-free.
    pub fn select_lane(
        &mut self,
        controller: &KairosController,
        options: &crate::ServingOptions,
        budget_per_hour: f64,
        demand_qps: f64,
    ) -> usize {
        let required = demand_qps * options.demand_headroom;
        let mut fallback: Option<(usize, f64)> = None;
        for i in 0..self.lanes.len() {
            let lane = &self.lanes[i];
            if options
                .min_accuracy
                .is_some_and(|floor| lane.variant.accuracy + 1e-9 < floor)
            {
                continue;
            }
            let probe;
            let view = if i == self.active {
                controller
            } else {
                let mut clone = controller.clone();
                clone.adopt_variant(lane.priors.clone(), lane.variant.accuracy);
                probe = clone;
                &probe
            };
            let Some(plan) = self.caches[i].plan(view, budget_per_hour) else {
                continue;
            };
            let best_ub = plan.ranked.first().map(|(_, ub)| *ub).unwrap_or(0.0);
            if best_ub >= required {
                // Lanes are accuracy-descending: first cover wins.
                return i;
            }
            if fallback.is_none_or(|(_, ub)| best_ub > ub) {
                fallback = Some((i, best_ub));
            }
        }
        fallback.map(|(i, _)| i).unwrap_or(self.active)
    }
}

/// Convenience: the paper-shaped three-variant catalog restricted to
/// `models`, lowered and pruned against a pool and base table — what the
/// bench figures and examples start from.
pub fn paper_variant_planner(
    pool: &PoolSpec,
    model: ModelKind,
    base: &LatencyTable,
) -> VariantPlanner {
    let catalog = VariantCatalog::paper_variants();
    VariantPlanner::new(pool.clone(), model, base, &catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2};

    fn pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    fn sample() -> Vec<u32> {
        (0..2000u32).map(|i| 10 + i % 300).collect()
    }

    #[test]
    fn reference_lane_lowering_is_bit_identical_to_the_base_table() {
        let catalog = VariantCatalog::reference_only(&[ModelKind::Rm2]);
        let lanes = build_lanes(&pool(), ModelKind::Rm2, &paper_calibration(), &catalog);
        assert_eq!(lanes.len(), 1);
        assert!(lanes[0].is_reference());
        let truth = paper_calibration();
        for (i, ty) in pool().types().iter().enumerate() {
            let base = truth.expect(ModelKind::Rm2, &ty.name);
            let lane = lanes[0].profiles[i];
            assert_eq!(lane.intercept_ms.to_bits(), base.intercept_ms.to_bits());
            assert_eq!(lane.slope_ms.to_bits(), base.slope_ms.to_bits());
            let table = lanes[0].priors.expect(ModelKind::Rm2, &ty.name);
            assert_eq!(table.intercept_ms.to_bits(), base.intercept_ms.to_bits());
        }
    }

    #[test]
    fn dominated_variants_are_pruned_but_the_reference_survives() {
        let reference = ModelVariant::reference(ModelKind::Rm2);
        // Strictly worse than int8 on both axes: dominated.
        let slow_int8 =
            ModelVariant::try_new("int8-slow", ModelKind::Rm2, 0.96, 4096, 1.2).unwrap();
        let int8 = ModelVariant::try_new("int8", ModelKind::Rm2, 0.97, 2048, 1.8).unwrap();
        let catalog = VariantCatalog::try_new(vec![reference, slow_int8, int8]).unwrap();
        let lanes = prune_dominated(build_lanes(
            &pool(),
            ModelKind::Rm2,
            &paper_calibration(),
            &catalog,
        ));
        let names: Vec<&str> = lanes.iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["fp32", "int8"]);
    }

    #[test]
    fn equal_accuracy_faster_variant_never_prunes_the_reference() {
        let reference = ModelVariant::reference(ModelKind::Rm2);
        let accuracy = reference.accuracy;
        let twin = ModelVariant::try_new("fp16", ModelKind::Rm2, accuracy, 4096, 1.9).unwrap();
        let catalog = VariantCatalog::try_new(vec![reference, twin]).unwrap();
        let lanes = prune_dominated(build_lanes(
            &pool(),
            ModelKind::Rm2,
            &paper_calibration(),
            &catalog,
        ));
        assert!(lanes.iter().any(|l| l.is_reference()));
        assert_eq!(lanes.len(), 2, "the faster twin is kept too");
    }

    #[test]
    fn accuracy_floor_filters_the_merged_ranking() {
        let planner = paper_variant_planner(&pool(), ModelKind::Rm2, &paper_calibration());
        assert_eq!(planner.lanes().len(), 3);
        let all = planner.rank_configs_variants(2.5, &sample(), None);
        let lanes_seen: std::collections::HashSet<usize> = all.iter().map(|c| c.lane).collect();
        assert_eq!(lanes_seen.len(), 3);
        // A floor above every quantized variant leaves only the reference.
        let strict = planner.rank_configs_variants(2.5, &sample(), Some(0.98));
        assert!(strict.iter().all(|c| c.lane == 0));
        // The merged list is upper-bound-descending.
        assert!(all.windows(2).all(|w| w[0].upper_bound >= w[1].upper_bound));
    }

    #[test]
    fn faster_variants_dominate_the_top_of_the_unfloored_ranking() {
        let planner = paper_variant_planner(&pool(), ModelKind::Rm2, &paper_calibration());
        let all = planner.rank_configs_variants(2.5, &sample(), None);
        // The distilled lane (2.8x faster) owns the very best bound.
        assert_eq!(all[0].variant, "distilled");
        let best_ref = all
            .iter()
            .find(|c| c.lane == 0)
            .expect("reference entries present");
        assert!(all[0].upper_bound > best_ref.upper_bound);
    }

    #[test]
    fn demand_planner_downgrades_under_pressure_and_repromotes() {
        let planner = paper_variant_planner(&pool(), ModelKind::Rm2, &paper_calibration());
        let sample = sample();
        // Light demand: the reference covers it, highest accuracy wins.
        let light = planner
            .plan_for_demand(2.5, &sample, 20.0, 1.35, None)
            .unwrap();
        assert_eq!(light.variant, "fp32");
        // Heavy demand the reference cannot cover in budget: a cheaper
        // variant that *can* cover is preferred over serving degraded.
        let ref_best = planner.rank_configs_variants(2.5, &sample, Some(0.98))[0].upper_bound;
        let heavy = planner
            .plan_for_demand(2.5, &sample, ref_best * 1.2, 1.0, None)
            .unwrap();
        assert_ne!(heavy.variant, "fp32", "pressure must downgrade");
        assert!(heavy.upper_bound >= ref_best * 1.2);
        // Floors bind: under the same pressure with a strict floor the
        // planner stays on the reference (degraded but admissible).
        let floored = planner
            .plan_for_demand(2.5, &sample, ref_best * 1.2, 1.0, Some(0.98))
            .unwrap();
        assert_eq!(floored.variant, "fp32");
    }

    #[test]
    fn frontier_query_buys_the_same_demand_cheaper_as_the_floor_relaxes() {
        let planner = paper_variant_planner(&pool(), ModelKind::Rm2, &paper_calibration());
        let sample = sample();
        // A demand the reference covers with headroom under the budget.
        let ref_best = planner.rank_configs_variants(2.5, &sample, Some(0.98))[0].upper_bound;
        let demand = ref_best * 0.7 / 1.35;
        let strict = planner
            .cheapest_for_demand(2.5, &sample, demand, 1.35, Some(0.98))
            .unwrap();
        let relaxed = planner
            .cheapest_for_demand(2.5, &sample, demand, 1.35, None)
            .unwrap();
        assert_eq!(
            strict.variant, "fp32",
            "strict floor admits only the reference"
        );
        assert_ne!(
            relaxed.variant, "fp32",
            "a faster lane covers with a cheaper config"
        );
        assert!(relaxed.config.cost(&pool()) < strict.config.cost(&pool()));
        // The floor sweep is monotone: relaxing it never raises the cost.
        let mid = planner
            .cheapest_for_demand(2.5, &sample, demand, 1.35, Some(0.965))
            .unwrap();
        assert!(mid.config.cost(&pool()) <= strict.config.cost(&pool()));
        assert!(relaxed.config.cost(&pool()) <= mid.config.cost(&pool()));
    }

    #[test]
    #[should_panic(expected = "meets the accuracy floor")]
    fn impossible_floor_panics_in_ranking() {
        let planner = paper_variant_planner(&pool(), ModelKind::Rm2, &paper_calibration());
        planner.rank_configs_variants(2.5, &sample(), Some(1.5));
    }
}

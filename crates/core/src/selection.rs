//! Similarity-based configuration selection (paper Sec. 5.2).
//!
//! A higher upper bound does not *always* mean higher throughput, so Kairos
//! does not blindly pick the top-ranked configuration.  Instead:
//!
//! 1. If the top-3 configurations by upper bound agree on the number of base
//!    instances, the highest-upper-bound configuration is chosen.
//! 2. Otherwise, among the top-10 configurations, the one with the smallest
//!    sum of squared Euclidean distances to the other nine is chosen — the
//!    "centroid-like" member of the promising region (the same SSE criterion
//!    used in clustering).

use kairos_models::{Config, PoolSpec};

/// How many top configurations must agree on the base count for the fast path.
pub const TOP_AGREEMENT: usize = 3;

/// Size of the candidate set used by the SSE-centroid fallback.
pub const TOP_CANDIDATES: usize = 10;

/// Selects the final configuration from a list of `(config, upper_bound)`
/// pairs sorted by upper bound in descending order.
///
/// # Panics
/// Panics if the list is empty or not sorted by descending upper bound.
pub fn select_configuration(ranked: &[(Config, f64)], pool: &PoolSpec) -> Config {
    assert!(
        !ranked.is_empty(),
        "cannot select from an empty candidate list"
    );
    assert!(
        ranked.windows(2).all(|w| w[0].1 >= w[1].1),
        "candidates must be sorted by descending upper bound"
    );

    let base_index = pool.base_index();

    // Fast path: the top-3 agree on the base-instance count.
    let top = &ranked[..ranked.len().min(TOP_AGREEMENT)];
    let first_base = top[0].0.count(base_index);
    if top.len() == TOP_AGREEMENT && top.iter().all(|(c, _)| c.count(base_index) == first_base) {
        return ranked[0].0.clone();
    }

    // Fallback: SSE centroid of the top-10.
    let candidates = &ranked[..ranked.len().min(TOP_CANDIDATES)];
    let mut best: Option<(usize, f64)> = None;
    for (i, (ci, _)) in candidates.iter().enumerate() {
        let sse: f64 = candidates
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, (cj, _))| ci.squared_distance(cj))
            .sum();
        match best {
            None => best = Some((i, sse)),
            Some((_, best_sse)) if sse < best_sse => best = Some((i, sse)),
            _ => {}
        }
    }
    candidates[best.expect("non-empty candidates").0].0.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::ec2;

    fn pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    fn cfg(counts: &[usize]) -> Config {
        Config::new(counts.to_vec())
    }

    #[test]
    fn top3_agreement_picks_the_highest_bound() {
        let ranked = vec![
            (cfg(&[3, 1, 3, 0]), 100.0),
            (cfg(&[3, 0, 4, 0]), 98.0),
            (cfg(&[3, 2, 1, 0]), 95.0),
            (cfg(&[1, 0, 9, 0]), 94.0),
        ];
        assert_eq!(select_configuration(&ranked, &pool()), cfg(&[3, 1, 3, 0]));
    }

    #[test]
    fn disagreement_falls_back_to_sse_centroid() {
        // Top-3 disagree on the base count; among the candidates the centroid
        // configuration (2, 1, 1, 0) minimizes the total squared distance.
        let ranked = vec![
            (cfg(&[4, 0, 0, 0]), 100.0),
            (cfg(&[2, 1, 1, 0]), 99.0),
            (cfg(&[1, 2, 2, 0]), 98.0),
            (cfg(&[2, 1, 2, 0]), 97.0),
            (cfg(&[2, 2, 1, 0]), 96.0),
        ];
        let selected = select_configuration(&ranked, &pool());
        assert_eq!(selected, cfg(&[2, 1, 1, 0]));
    }

    #[test]
    fn fewer_than_three_candidates_uses_centroid_rule() {
        let ranked = vec![(cfg(&[2, 0, 0, 0]), 50.0), (cfg(&[1, 1, 0, 0]), 45.0)];
        // With two candidates the SSE is symmetric; the first is kept.
        assert_eq!(select_configuration(&ranked, &pool()), cfg(&[2, 0, 0, 0]));
    }

    #[test]
    fn single_candidate_is_returned() {
        let ranked = vec![(cfg(&[1, 0, 0, 0]), 10.0)];
        assert_eq!(select_configuration(&ranked, &pool()), cfg(&[1, 0, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_input_is_rejected() {
        let ranked = vec![(cfg(&[1, 0, 0, 0]), 10.0), (cfg(&[2, 0, 0, 0]), 20.0)];
        select_configuration(&ranked, &pool());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_is_rejected() {
        select_configuration(&[], &pool());
    }
}

//! The Kairos one-shot configuration planner (paper Sec. 5.2).
//!
//! Given a cost budget, the planner enumerates every configuration that fits,
//! estimates each configuration's throughput upper bound with the closed-form
//! formula, and applies the similarity-based selection rule — producing a
//! deployable configuration **without a single online evaluation**.  The
//! paper reports that ranking ~1000 configurations takes well under two
//! seconds; the Criterion bench `upper_bound` verifies the same property for
//! this implementation.

use crate::controller::KairosController;
use crate::selection::select_configuration;
use crate::upper_bound::ThroughputEstimator;
use kairos_models::{
    enumerate_configs, latency::LatencyTable, mlmodel::ModelKind, Config, EnumerationOptions,
    PoolSpec,
};
use std::sync::Arc;

/// Output of a planning pass.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The configuration Kairos deploys.
    pub chosen: Config,
    /// Every affordable configuration with its upper bound, sorted by bound
    /// (descending).  Used by Kairos+ and by the Fig. 13/14 analyses.
    pub ranked: Vec<(Config, f64)>,
    /// The hourly budget the plan was computed for.
    pub budget_per_hour: f64,
}

impl Plan {
    /// Upper bound of the chosen configuration.
    pub fn chosen_upper_bound(&self) -> f64 {
        self.ranked
            .iter()
            .find(|(c, _)| c == &self.chosen)
            .map(|(_, ub)| *ub)
            .unwrap_or(0.0)
    }

    /// The top-`n` configurations by upper bound.
    pub fn top(&self, n: usize) -> &[(Config, f64)] {
        &self.ranked[..self.ranked.len().min(n)]
    }
}

/// The Kairos planner: throughput-upper-bound ranking plus similarity-based
/// selection over the affordable configuration space.
#[derive(Debug, Clone)]
pub struct KairosPlanner {
    pool: PoolSpec,
    model: ModelKind,
    latency: LatencyTable,
}

impl KairosPlanner {
    /// Creates a planner from the latency knowledge Kairos has gathered (its
    /// online-learned table, or a calibration table in offline studies).
    pub fn new(pool: PoolSpec, model: ModelKind, latency: LatencyTable) -> Self {
        Self {
            pool,
            model,
            latency,
        }
    }

    /// Builds the estimator for a given observed batch-size sample.
    pub fn estimator(&self, batch_sample: Vec<u32>) -> ThroughputEstimator {
        ThroughputEstimator::new(
            self.pool.clone(),
            self.model,
            self.latency.clone(),
            batch_sample,
        )
    }

    /// Plans a configuration under the given hourly budget, using the observed
    /// batch-size sample (e.g. the query monitor window) to parameterize the
    /// upper bound.
    pub fn plan(&self, budget_per_hour: f64, batch_sample: &[u32]) -> Plan {
        let options = EnumerationOptions::with_budget(budget_per_hour);
        let configs = enumerate_configs(&self.pool, &options);
        assert!(
            !configs.is_empty(),
            "budget {budget_per_hour} cannot afford any configuration with a base instance"
        );
        let estimator = self.estimator(batch_sample.to_vec());
        let ranked = estimator.rank_configs(&configs);
        let chosen = select_configuration(&ranked, &self.pool);
        Plan {
            chosen,
            ranked,
            budget_per_hour,
        }
    }
}

/// Memoizes the most recent [`Plan`] against the knowledge it was computed
/// from, so a replanning loop (the serving system replans on a cadence *and*
/// on demand drift) only pays for enumeration + ranking when the planner's
/// inputs actually changed.
///
/// The key is `(quantized knowledge signature, budget)` — see
/// [`KairosController::knowledge_signature`].  The ranked list a plan carries
/// depends only on those inputs, **not** on the observed arrival rate: the
/// demand-aware selection happens downstream over the cached ranking, which
/// is why cadence replans under drifting load still hit.  Plans are shared
/// out as [`Arc`]s, so a hit costs a pointer clone, not a ranked-list copy.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entry: Option<(u64, u64, Arc<Plan>)>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The controller's current plan for `budget_per_hour`, reusing the
    /// cached one when the controller's quantized knowledge is unchanged.
    /// Returns `None` (and caches nothing) while the controller cannot plan.
    pub fn plan(
        &mut self,
        controller: &KairosController,
        budget_per_hour: f64,
    ) -> Option<Arc<Plan>> {
        let signature = controller.knowledge_signature();
        let budget_bits = budget_per_hour.to_bits();
        if let Some((cached_sig, cached_budget, plan)) = &self.entry {
            if *cached_sig == signature && *cached_budget == budget_bits {
                self.hits += 1;
                return Some(plan.clone());
            }
        }
        let plan = Arc::new(controller.plan(budget_per_hour)?);
        self.misses += 1;
        self.entry = Some((signature, budget_bits, plan.clone()));
        Some(plan)
    }

    /// Number of replans served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of replans that had to recompute.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{best_homogeneous, calibration::paper_calibration, ec2};
    use kairos_workload::BatchSizeDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(17);
        BatchSizeDistribution::production_default().sample_many(&mut rng, 4000)
    }

    fn planner(model: ModelKind) -> KairosPlanner {
        KairosPlanner::new(PoolSpec::new(ec2::paper_pool()), model, paper_calibration())
    }

    #[test]
    fn plan_respects_budget_and_includes_base() {
        let plan = planner(ModelKind::Rm2).plan(2.5, &sample());
        let pool = PoolSpec::new(ec2::paper_pool());
        assert!(plan.chosen.cost(&pool) <= 2.5 + 1e-9);
        assert!(plan.chosen.count(pool.base_index()) >= 1);
        assert!(plan.ranked.len() > 100);
        assert!(plan.chosen_upper_bound() > 0.0);
    }

    #[test]
    fn chosen_config_is_heterogeneous_and_beats_homogeneous_bound_for_rm2() {
        let plan = planner(ModelKind::Rm2).plan(2.5, &sample());
        let pool = PoolSpec::new(ec2::paper_pool());
        let homo = best_homogeneous(&pool, 2.5);
        let estimator = planner(ModelKind::Rm2).estimator(sample());
        assert!(
            !plan.chosen.is_homogeneous(&pool),
            "RM2 should favour heterogeneity"
        );
        assert!(estimator.estimate(&plan.chosen) > estimator.estimate(&homo));
    }

    #[test]
    fn ranked_list_is_sorted_and_contains_chosen() {
        let plan = planner(ModelKind::Wnd).plan(2.5, &sample());
        assert!(plan.ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(plan.ranked.iter().any(|(c, _)| c == &plan.chosen));
        assert_eq!(plan.top(10).len(), 10);
    }

    #[test]
    fn larger_budget_never_reduces_the_best_upper_bound() {
        let p = planner(ModelKind::Dien);
        let s = sample();
        let small = p.plan(2.5, &s);
        let large = p.plan(10.0, &s);
        assert!(large.ranked[0].1 >= small.ranked[0].1);
        assert!(large.ranked.len() > small.ranked.len());
    }

    #[test]
    #[should_panic(expected = "cannot afford")]
    fn budget_below_one_base_instance_panics() {
        planner(ModelKind::Ncf).plan(0.3, &sample());
    }

    #[test]
    fn plan_cache_reuses_until_knowledge_or_budget_changes() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let mut controller =
            KairosController::with_priors(pool, ModelKind::Rm2, paper_calibration());
        for i in 0..2000u32 {
            controller.observe_query(10 + i % 300);
        }
        let mut cache = PlanCache::new();
        let first = cache.plan(&controller, 2.5).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Identical knowledge: the second replan is a pointer clone.
        let second = cache.plan(&controller, 2.5).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // More observations of the *same* mix leave the quantized signature
        // (band mass in twentieths) unchanged: still a cache hit.
        for i in 0..2000u32 {
            controller.observe_query(10 + i % 300);
        }
        let third = cache.plan(&controller, 2.5).unwrap();
        assert!(Arc::ptr_eq(&first, &third));
        // A different budget misses.
        let other = cache.plan(&controller, 5.0).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(cache.misses(), 2);
        // A real mix shift (all-large queries) re-plans.
        for _ in 0..4000 {
            controller.observe_query(900);
        }
        let shifted = cache.plan(&controller, 5.0).unwrap();
        assert!(!Arc::ptr_eq(&other, &shifted));
        assert_eq!(cache.misses(), 3);
    }
}

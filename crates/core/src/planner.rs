//! The Kairos one-shot configuration planner (paper Sec. 5.2).
//!
//! Given a cost budget, the planner enumerates every configuration that fits,
//! estimates each configuration's throughput upper bound with the closed-form
//! formula, and applies the similarity-based selection rule — producing a
//! deployable configuration **without a single online evaluation**.  The
//! paper reports that ranking ~1000 configurations takes well under two
//! seconds; the Criterion bench `upper_bound` verifies the same property for
//! this implementation.

use crate::selection::select_configuration;
use crate::upper_bound::ThroughputEstimator;
use kairos_models::{
    enumerate_configs, latency::LatencyTable, mlmodel::ModelKind, Config, EnumerationOptions,
    PoolSpec,
};

/// Output of a planning pass.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The configuration Kairos deploys.
    pub chosen: Config,
    /// Every affordable configuration with its upper bound, sorted by bound
    /// (descending).  Used by Kairos+ and by the Fig. 13/14 analyses.
    pub ranked: Vec<(Config, f64)>,
    /// The hourly budget the plan was computed for.
    pub budget_per_hour: f64,
}

impl Plan {
    /// Upper bound of the chosen configuration.
    pub fn chosen_upper_bound(&self) -> f64 {
        self.ranked
            .iter()
            .find(|(c, _)| c == &self.chosen)
            .map(|(_, ub)| *ub)
            .unwrap_or(0.0)
    }

    /// The top-`n` configurations by upper bound.
    pub fn top(&self, n: usize) -> &[(Config, f64)] {
        &self.ranked[..self.ranked.len().min(n)]
    }
}

/// The Kairos planner: throughput-upper-bound ranking plus similarity-based
/// selection over the affordable configuration space.
#[derive(Debug, Clone)]
pub struct KairosPlanner {
    pool: PoolSpec,
    model: ModelKind,
    latency: LatencyTable,
}

impl KairosPlanner {
    /// Creates a planner from the latency knowledge Kairos has gathered (its
    /// online-learned table, or a calibration table in offline studies).
    pub fn new(pool: PoolSpec, model: ModelKind, latency: LatencyTable) -> Self {
        Self {
            pool,
            model,
            latency,
        }
    }

    /// Builds the estimator for a given observed batch-size sample.
    pub fn estimator(&self, batch_sample: Vec<u32>) -> ThroughputEstimator {
        ThroughputEstimator::new(
            self.pool.clone(),
            self.model,
            self.latency.clone(),
            batch_sample,
        )
    }

    /// Plans a configuration under the given hourly budget, using the observed
    /// batch-size sample (e.g. the query monitor window) to parameterize the
    /// upper bound.
    pub fn plan(&self, budget_per_hour: f64, batch_sample: &[u32]) -> Plan {
        let options = EnumerationOptions::with_budget(budget_per_hour);
        let configs = enumerate_configs(&self.pool, &options);
        assert!(
            !configs.is_empty(),
            "budget {budget_per_hour} cannot afford any configuration with a base instance"
        );
        let estimator = self.estimator(batch_sample.to_vec());
        let ranked = estimator.rank_configs(&configs);
        let chosen = select_configuration(&ranked, &self.pool);
        Plan {
            chosen,
            ranked,
            budget_per_hour,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{best_homogeneous, calibration::paper_calibration, ec2};
    use kairos_workload::BatchSizeDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(17);
        BatchSizeDistribution::production_default().sample_many(&mut rng, 4000)
    }

    fn planner(model: ModelKind) -> KairosPlanner {
        KairosPlanner::new(PoolSpec::new(ec2::paper_pool()), model, paper_calibration())
    }

    #[test]
    fn plan_respects_budget_and_includes_base() {
        let plan = planner(ModelKind::Rm2).plan(2.5, &sample());
        let pool = PoolSpec::new(ec2::paper_pool());
        assert!(plan.chosen.cost(&pool) <= 2.5 + 1e-9);
        assert!(plan.chosen.count(pool.base_index()) >= 1);
        assert!(plan.ranked.len() > 100);
        assert!(plan.chosen_upper_bound() > 0.0);
    }

    #[test]
    fn chosen_config_is_heterogeneous_and_beats_homogeneous_bound_for_rm2() {
        let plan = planner(ModelKind::Rm2).plan(2.5, &sample());
        let pool = PoolSpec::new(ec2::paper_pool());
        let homo = best_homogeneous(&pool, 2.5);
        let estimator = planner(ModelKind::Rm2).estimator(sample());
        assert!(
            !plan.chosen.is_homogeneous(&pool),
            "RM2 should favour heterogeneity"
        );
        assert!(estimator.estimate(&plan.chosen) > estimator.estimate(&homo));
    }

    #[test]
    fn ranked_list_is_sorted_and_contains_chosen() {
        let plan = planner(ModelKind::Wnd).plan(2.5, &sample());
        assert!(plan.ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(plan.ranked.iter().any(|(c, _)| c == &plan.chosen));
        assert_eq!(plan.top(10).len(), 10);
    }

    #[test]
    fn larger_budget_never_reduces_the_best_upper_bound() {
        let p = planner(ModelKind::Dien);
        let s = sample();
        let small = p.plan(2.5, &s);
        let large = p.plan(10.0, &s);
        assert!(large.ranked[0].1 >= small.ranked[0].1);
        assert!(large.ranked.len() > small.ranked.len());
    }

    #[test]
    #[should_panic(expected = "cannot afford")]
    fn budget_below_one_base_instance_panics() {
        planner(ModelKind::Ncf).plan(0.3, &sample());
    }
}

//! The online serving loop: [`KairosController`] in the loop of a live,
//! reconfigurable cluster.
//!
//! The paper's headline online result (Fig. 12, Sec. 6) is Kairos reacting
//! to a load change in "one shot": the monitor notices the new mix, the
//! planner re-ranks the configuration space from current knowledge, and the
//! system redeploys — no online exploration.  [`ServingSystem`] is that loop
//! against the discrete-event engine:
//!
//! ```text
//!        ┌──────────────────────────────────────────────────────┐
//!        │                  ServingSystem::run                  │
//!        │                                                      │
//!  trace ──► SimEngine::step_event ──► EngineEvent              │
//!        │        ▲                      │ Arrival → observe_query
//!        │        │                      │ Completion → observe_completion
//!        │        │                      ▼                      │
//!        │        │               KairosController              │
//!        │        │                      │ cadence or drift     │
//!        │        │                      ▼                      │
//!        │        │            plan_for_demand(rate)            │
//!        │        │                      │ diff vs live cluster │
//!        │        └── add_instance / retire_instance ◄──────────┘
//!        └──────────────────────────────────────────────────────┘
//! ```
//!
//! Replanning is **demand-aware**: rather than always deploying the
//! maximum-throughput configuration under the budget cap, the driver picks
//! the *cheapest* ranked configuration whose throughput upper bound covers
//! the observed arrival rate (times a headroom factor), falling back to the
//! full-budget pick when demand exceeds every cheaper option.  This is what
//! makes the loop elastic in both directions: it scales out on a rate spike
//! and scales in — gracefully draining surplus instances — when load drops.

use crate::controller::KairosController;
use crate::planner::PlanCache;
use crate::variants::{build_lanes, prune_dominated, VariantRuntime};
use kairos_models::{
    latency::{LatencyProfile, LatencyTable},
    mlmodel::ModelKind,
    Config, FailureDomain, FaultEvent, FaultProcess, Market, OfferingCatalog, PoolSpec,
    VariantCatalog,
};
use kairos_sim::{
    BatchingOptions, EngineEvent, ServiceSpec, SimEngine, SimReport, SimulationOptions,
};
use kairos_workload::{BatchSizeDistribution, ModelId, TimeUs, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Tunables of the online serving loop.
#[derive(Debug, Clone, Copy)]
pub struct ServingOptions {
    /// Hourly budget cap handed to the planner.
    pub budget_per_hour: f64,
    /// Cadence of unconditional replanning.
    pub replan_interval_us: TimeUs,
    /// Provisioning delay charged to every added instance.
    pub provisioning_delay_us: TimeUs,
    /// Relative arrival-rate change (vs the rate at the previous plan) that
    /// triggers an immediate replan between cadence ticks.
    pub drift_threshold: f64,
    /// Capacity headroom: the deployed configuration's throughput upper
    /// bound must cover `observed rate × headroom`.
    pub demand_headroom: f64,
    /// Scale-in hysteresis: the deployed configuration is kept (even when a
    /// cheaper one would cover demand) unless it costs more than
    /// `shrink_factor ×` the cheapest sufficient alternative.  Prevents
    /// near-equivalent configurations from thrashing the cluster when the
    /// demand estimate wobbles.
    pub shrink_factor: f64,
    /// Cap on the number of recent arrivals kept for the rate estimate.
    pub rate_window: usize,
    /// Time horizon of the rate estimate: only arrivals within this window
    /// of `now` count.  A time-bounded window reacts to load *drops* as fast
    /// as to spikes (a count-bounded one drains slowly at low rates).
    pub rate_horizon_us: TimeUs,
    /// Minimum number of monitored queries before the loop trusts a plan:
    /// with only a handful of observations the batch-mix estimate (and with
    /// it every upper bound) is noise, and acting on noise thrashes the
    /// cluster.
    pub min_observations: usize,
    /// How long a spot offering stays priced out of the planner after one of
    /// its preemption notices (market-attached runs only): re-buying the
    /// exact capacity the cloud is actively reclaiming would bounce straight
    /// into the next kill.
    pub spot_cooldown_us: TimeUs,
    /// How far past the last trace arrival market events are still
    /// materialized (market-attached runs only).  A storm landing while the
    /// backlog drains must still fire; events beyond the slack are dropped
    /// (they would otherwise stretch the run — and its billing horizon —
    /// into empty virtual time).
    pub market_horizon_slack_us: TimeUs,
    /// Service-noise seed passed to the engine.
    pub seed: u64,
    /// Dynamic batcher: maximum fused batch size per instance (summed over
    /// member queries' batch sizes).  `0` disables batching and keeps the
    /// engine on its legacy one-query-at-a-time service path.
    pub batch_max_size: u32,
    /// Dynamic batcher: how long a forming batch waits for company before
    /// firing anyway (only meaningful when `batch_max_size > 0`).
    pub batch_timeout_us: TimeUs,
    /// Domain-spread constraint: no failure domain may hold more than this
    /// fraction of the deployed instances (checked over the planner's ranked
    /// configurations through the catalog's per-offering domain table, so
    /// solvers stay domain-free).  `None` plans domain-blind.
    pub max_fraction_per_domain: Option<f64>,
    /// Base delay of the capped exponential purchase backoff: after a
    /// rejected purchase (zone outage or capacity shortage) the offering is
    /// retried no sooner than `base << min(failures, cap)` later, and is
    /// priced out of the planning pool meanwhile so replans steer spend to
    /// alternative offerings and domains.
    pub purchase_backoff_us: TimeUs,
    /// Exponent cap of the purchase backoff.
    pub purchase_backoff_cap: u32,
    /// Accuracy floor for variant auto-selection
    /// ([`ServingSystem::with_variants`]): a variant below the floor is
    /// never served, no matter the pressure.  `None` admits every catalog
    /// variant; without an attached variant catalog the floor is inert.
    pub min_accuracy: Option<f64>,
}

impl Default for ServingOptions {
    fn default() -> Self {
        Self {
            budget_per_hour: 2.5,
            replan_interval_us: 1_000_000,
            provisioning_delay_us: 500_000,
            drift_threshold: 0.35,
            demand_headroom: 1.35,
            shrink_factor: 1.25,
            rate_window: 1024,
            rate_horizon_us: 2_000_000,
            min_observations: 200,
            spot_cooldown_us: 2_000_000,
            market_horizon_slack_us: 2_000_000,
            seed: 0,
            batch_max_size: 0,
            batch_timeout_us: 2_000,
            max_fraction_per_domain: None,
            purchase_backoff_us: 500_000,
            purchase_backoff_cap: 5,
            min_accuracy: None,
        }
    }
}

/// Builder-style setters so call sites configure only what they deviate on:
/// `ServingOptions::default().budget(4.0).replan_every(500_000)`.
impl ServingOptions {
    /// Sets the hourly budget cap.
    pub fn budget(mut self, budget_per_hour: f64) -> Self {
        self.budget_per_hour = budget_per_hour;
        self
    }

    /// Sets the unconditional replanning cadence.
    pub fn replan_every(mut self, interval_us: TimeUs) -> Self {
        self.replan_interval_us = interval_us;
        self
    }

    /// Sets the provisioning delay charged to every added instance.
    pub fn provisioning_delay(mut self, delay_us: TimeUs) -> Self {
        self.provisioning_delay_us = delay_us;
        self
    }

    /// Sets the relative rate drift that triggers an immediate replan.
    pub fn drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Sets the capacity headroom factor over the observed demand.
    pub fn demand_headroom(mut self, headroom: f64) -> Self {
        self.demand_headroom = headroom;
        self
    }

    /// Sets the scale-in hysteresis factor.
    pub fn shrink_factor(mut self, factor: f64) -> Self {
        self.shrink_factor = factor;
        self
    }

    /// Sets the cap on arrivals kept for the rate estimate.
    pub fn rate_window(mut self, window: usize) -> Self {
        self.rate_window = window;
        self
    }

    /// Sets the time horizon of the rate estimate.
    pub fn rate_horizon(mut self, horizon_us: TimeUs) -> Self {
        self.rate_horizon_us = horizon_us;
        self
    }

    /// Sets the observation floor before plans are trusted.
    pub fn min_observations(mut self, observations: usize) -> Self {
        self.min_observations = observations;
        self
    }

    /// Sets the post-preemption spot cooldown.
    pub fn spot_cooldown(mut self, cooldown_us: TimeUs) -> Self {
        self.spot_cooldown_us = cooldown_us;
        self
    }

    /// Sets how far past the last arrival market events still fire.
    pub fn market_horizon_slack(mut self, slack_us: TimeUs) -> Self {
        self.market_horizon_slack_us = slack_us;
        self
    }

    /// Sets the service-noise seed passed to the engine.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the per-instance dynamic batcher: queries fuse until their
    /// batch sizes sum past `max_size` or the oldest waits `timeout_us`.
    pub fn batching(mut self, max_size: u32, timeout_us: TimeUs) -> Self {
        self.batch_max_size = max_size;
        self.batch_timeout_us = timeout_us;
        self
    }

    /// Enables the domain-spread constraint: no failure domain may hold more
    /// than `fraction` of the deployed instances.
    pub fn spread_limit(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction) && fraction > 0.0,
            "spread fraction must lie in (0, 1]"
        );
        self.max_fraction_per_domain = Some(fraction);
        self
    }

    /// Sets the capped exponential purchase backoff (base delay and exponent
    /// cap) applied after rejected purchases.
    pub fn purchase_backoff(mut self, base_us: TimeUs, cap: u32) -> Self {
        self.purchase_backoff_us = base_us;
        self.purchase_backoff_cap = cap;
        self
    }

    /// Sets the accuracy floor for variant auto-selection.
    ///
    /// # Panics
    /// Panics unless `floor` lies in (0, 1].
    pub fn min_accuracy(mut self, floor: f64) -> Self {
        assert!(
            floor.is_finite() && floor > 0.0 && floor <= 1.0,
            "accuracy floor must lie in (0, 1]"
        );
        self.min_accuracy = Some(floor);
        self
    }
}

/// What caused a replan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanTrigger {
    /// The periodic replanning cadence fired.
    Cadence,
    /// The observed arrival rate drifted past the threshold.
    Drift,
    /// The cloud market moved: a price step, a preemption notice, or a
    /// forced kill.
    Market,
    /// A correlated fault was detected: a zone outage began or lifted, a
    /// capacity shortage toggled, or an instance started straggling.
    Fault,
}

/// One applied reconfiguration (replans that change nothing are not logged).
#[derive(Debug, Clone)]
pub struct ReconfigEvent {
    /// Virtual time the reconfiguration was issued.
    pub at_us: TimeUs,
    /// The model whose sub-cluster was steered ([`ModelId::DEFAULT`] for
    /// single-model serving).
    pub model: ModelId,
    /// What caused it.
    pub trigger: ReplanTrigger,
    /// Arrival-rate estimate that drove the plan, in QPS.
    pub demand_qps: f64,
    /// The configuration the cluster was steered towards.
    pub target: Config,
    /// Pool type index of every instance added.
    pub added_types: Vec<usize>,
    /// Cluster index of every instance retired.
    pub retired_instances: Vec<usize>,
}

/// One applied model-variant switch (selections that keep the live variant
/// are not logged).
#[derive(Debug, Clone)]
pub struct VariantSwitch {
    /// Virtual time the switch was applied.
    pub at_us: TimeUs,
    /// The model whose serving variant changed ([`ModelId::DEFAULT`] for
    /// single-model serving).
    pub model: ModelId,
    /// Name of the variant served before the switch.
    pub from: String,
    /// Name of the variant served after the switch.
    pub to: String,
    /// Delivered accuracy of the new variant.
    pub accuracy: f64,
    /// The replan that decided the switch.
    pub trigger: ReplanTrigger,
}

/// Result of one online serving run.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// The per-query simulation report.
    pub report: SimReport,
    /// The configuration the run started from.
    pub initial: Config,
    /// Dispatch-accepting instance counts at the end of the run.
    pub final_active: Config,
    /// Every reconfiguration applied, in order.
    pub reconfigs: Vec<ReconfigEvent>,
    /// Total number of replanning passes (including no-op ones).
    pub replans: usize,
    /// Every model-variant switch applied, in order (empty without an
    /// attached variant catalog).
    pub variant_switches: Vec<VariantSwitch>,
}

impl ServingOutcome {
    /// Convenience: whether the run ever changed the cluster.
    pub fn reconfigured(&self) -> bool {
        !self.reconfigs.is_empty()
    }
}

/// Price multiplier applied to an offering during its post-preemption
/// cooldown: high enough that the planner never buys it (the enumeration box
/// collapses to zero affordable instances for any realistic budget).
const COOLDOWN_PRICE_FACTOR: f64 = 40.0;

/// The serving loop's view of an attached cloud market: the offering
/// catalog, the live price oracle, and the post-preemption cooldowns that
/// make replanning *preemption-aware* (a just-reclaimed spot offering is
/// priced out until the storm passes).
#[derive(Debug, Clone)]
pub struct MarketState {
    catalog: OfferingCatalog,
    market: Arc<dyn Market>,
    cooldown_us: TimeUs,
    cooldown_until: Vec<TimeUs>,
}

impl MarketState {
    /// Binds a catalog to its price oracle.
    ///
    /// # Panics
    /// Panics if the market does not price exactly the catalog's offerings.
    pub fn new(catalog: OfferingCatalog, market: Arc<dyn Market>, cooldown_us: TimeUs) -> Self {
        assert_eq!(
            market.num_offerings(),
            catalog.len(),
            "market must price exactly the catalog's offerings"
        );
        let n = catalog.len();
        Self {
            catalog,
            market,
            cooldown_us,
            cooldown_until: vec![0; n],
        }
    }

    /// The offering catalog.
    pub fn catalog(&self) -> &OfferingCatalog {
        &self.catalog
    }

    /// The price oracle.
    pub fn market(&self) -> &Arc<dyn Market> {
        &self.market
    }

    /// Whether an offering is inside its post-preemption cooldown at `now`.
    pub fn in_cooldown(&self, offering: usize, now: TimeUs) -> bool {
        self.cooldown_until[offering] > now
    }

    /// The pool the planner should enumerate at `now`: live market prices,
    /// with offerings inside their post-preemption cooldown priced out (at
    /// a prohibitive multiple of their on-demand reference price, which
    /// zeroes their affordable count under any realistic budget).
    pub fn planning_pool(&self, now: TimeUs) -> PoolSpec {
        let prices: Vec<f64> = (0..self.catalog.len())
            .map(|i| {
                if self.in_cooldown(i, now) {
                    self.catalog.on_demand_price(i) * COOLDOWN_PRICE_FACTOR
                } else {
                    self.market.price_at(i, now)
                }
            })
            .collect();
        self.catalog.pool_with_prices(&prices)
    }

    /// Digests a market-facing engine event; returns `true` when the event
    /// warrants an immediate replan (price moved or capacity was reclaimed).
    pub fn on_event(&mut self, event: &EngineEvent, now: TimeUs) -> bool {
        match event {
            EngineEvent::PriceStep { .. } => true,
            EngineEvent::PreemptionNotice { offering, .. } => {
                self.cooldown_until[*offering] = now + self.cooldown_us;
                true
            }
            EngineEvent::InstancePreempted { .. } => true,
            _ => false,
        }
    }

    /// Clears the cooldown book.  Called at the end of every run: cooldowns
    /// are stamped in that run's virtual time and must not bleed into the
    /// next run's fresh clock.
    pub fn reset(&mut self) {
        self.cooldown_until.fill(0);
    }
}

/// Per-offering capped exponential backoff over rejected purchases.  A
/// rejected purchase (zone outage, capacity shortage) parks the offering
/// until `base << min(failures, cap)` elapses; while parked the offering is
/// also priced out of the planning pool, so replans steer spend to
/// alternative offerings and domains instead of hammering the dead one.
#[derive(Debug, Clone)]
pub struct PurchaseBackoff {
    failures: Vec<u32>,
    retry_at: Vec<TimeUs>,
}

impl PurchaseBackoff {
    /// A clean backoff book over `num_types` offerings.
    pub fn new(num_types: usize) -> Self {
        Self {
            failures: vec![0; num_types],
            retry_at: vec![0; num_types],
        }
    }

    /// Whether purchases of `type_index` are parked at `now`.
    pub fn blocked(&self, type_index: usize, now: TimeUs) -> bool {
        self.retry_at[type_index] > now
    }

    /// Whether any offering is parked at `now`.
    pub fn any_blocked(&self, now: TimeUs) -> bool {
        self.retry_at.iter().any(|&t| t > now)
    }

    /// Books one rejected purchase: doubles the delay up to the cap.
    pub fn note_rejection(&mut self, type_index: usize, now: TimeUs, options: &ServingOptions) {
        let exponent = self.failures[type_index].min(options.purchase_backoff_cap);
        self.retry_at[type_index] = now + (options.purchase_backoff_us << exponent);
        self.failures[type_index] = self.failures[type_index].saturating_add(1);
    }

    /// Books one successful purchase: the offering is healthy again.
    pub fn note_success(&mut self, type_index: usize) {
        self.failures[type_index] = 0;
        self.retry_at[type_index] = 0;
    }

    /// Parks the offering until `until_us` without burning a failure: used
    /// when a fault window is *known* to reject purchases (a zone outage or
    /// capacity shortage announced itself), so there is no point probing.
    /// Never shortens an existing exponential-backoff hold.
    pub fn park(&mut self, type_index: usize, until_us: TimeUs) {
        self.retry_at[type_index] = self.retry_at[type_index].max(until_us);
    }

    /// `base` with every parked offering priced out (same prohibitive
    /// multiple as the spot cooldown), so the planner routes around it.  The
    /// pool's base anchor keeps its price — every enumerable configuration
    /// carries a base instance, so pricing it out would leave the planner
    /// with nothing; purchases of it are still parked at reconcile time.
    fn penalized_pool(&self, base: &PoolSpec, now: TimeUs) -> PoolSpec {
        PoolSpec::new(
            base.types()
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let mut t = t.clone();
                    if self.blocked(i, now) && !t.is_base {
                        t.price_per_hour *= COOLDOWN_PRICE_FACTOR;
                    }
                    t
                })
                .collect(),
        )
    }
}

/// The controller-in-the-loop online serving driver.
#[derive(Debug, Clone)]
pub struct ServingSystem {
    pool: PoolSpec,
    controller: KairosController,
    options: ServingOptions,
    /// Memoizes the ranked plan across replans: a replan whose quantized
    /// knowledge signature matches the previous one reuses the prior ranking
    /// instead of re-enumerating and re-scoring the configuration space.
    plan_cache: PlanCache,
    /// The attached cloud market, if any (see [`ServingSystem::with_market`]).
    market: Option<MarketState>,
    /// The attached correlated-fault process, if any (see
    /// [`ServingSystem::with_fault_process`]).
    faults: Option<FaultProcess>,
    /// Per-type failure-domain table (one entry per pool type, resolved from
    /// the offering catalog when market-attached).  Empty means domain-blind:
    /// every instance lands in [`FailureDomain::global`].
    placements: Vec<FailureDomain>,
    /// The attached variant lanes, if any (see
    /// [`ServingSystem::with_variants`]).  `None` serves the reference only,
    /// exactly as before variants existed.
    variants: Option<VariantRuntime>,
}

impl ServingSystem {
    /// Creates a serving system.  `priors` seeds the controller's latency
    /// knowledge (without priors the first plan must wait for online fits).
    pub fn new(
        pool: PoolSpec,
        model: ModelKind,
        priors: Option<LatencyTable>,
        options: ServingOptions,
    ) -> Self {
        let controller = match priors {
            Some(table) => KairosController::with_priors(pool.clone(), model, table),
            None => KairosController::new(pool.clone(), model),
        };
        Self {
            pool,
            controller,
            options,
            plan_cache: PlanCache::new(),
            market: None,
            faults: None,
            placements: Vec::new(),
            variants: None,
        }
    }

    /// Creates a **market-aware** serving system over an offering catalog:
    /// the planner enumerates configurations over the catalog's offerings
    /// (which hardware *at which purchase option*), simulation runs bill at
    /// the market's live prices, and the loop replans on market events —
    /// price steps refresh the planning pool (joining the knowledge
    /// signature, so the plan cache invalidates exactly when prices move)
    /// and preemption notices price the reclaimed offering out for
    /// [`ServingOptions::spot_cooldown_us`].
    pub fn with_market(
        catalog: OfferingCatalog,
        market: Arc<dyn Market>,
        model: ModelKind,
        priors: Option<LatencyTable>,
        options: ServingOptions,
    ) -> Self {
        let mut system = Self::new(catalog.effective_pool(), model, priors, options);
        system.placements = catalog.domains();
        system.market = Some(MarketState::new(catalog, market, options.spot_cooldown_us));
        system
    }

    /// The attached market state, if this system trades on one.
    pub fn market(&self) -> Option<&MarketState> {
        self.market.as_ref()
    }

    /// Attaches a variant catalog: the loop auto-selects which variant of
    /// its model to serve at every replan.  The catalog is lowered against
    /// the pool and `base` (the reference calibration table) into per-variant
    /// lanes, dominated variants are pruned, and serving starts on the
    /// reference lane — so with a
    /// [`reference_only`](VariantCatalog::reference_only) catalog the loop
    /// reproduces the variant-free system bit for bit.  At each replan the
    /// highest-accuracy lane at or above
    /// [`ServingOptions::min_accuracy`] whose plan covers demand within
    /// budget is served; under pressure the loop downgrades to a faster
    /// variant and re-promotes once headroom returns.  A switch adopts the
    /// lane's priors into the controller (joining the knowledge signature,
    /// so cached plans retire), hot-swaps the engine's latency profiles,
    /// and is logged in [`ServingOutcome::variant_switches`].
    ///
    /// # Panics
    /// Panics if the catalog has no variants for this system's model or if
    /// `base` lacks a profile for some pool type.
    #[must_use]
    pub fn with_variants(mut self, catalog: &VariantCatalog, base: &LatencyTable) -> Self {
        self.attach_variants(catalog, base);
        self
    }

    /// By-ref form of [`Self::with_variants`], for callers that own the
    /// system behind a struct field (the multi-model facade's lanes).
    pub(crate) fn attach_variants(&mut self, catalog: &VariantCatalog, base: &LatencyTable) {
        let model = self.controller.model();
        let lanes = prune_dominated(build_lanes(&self.pool, model, base, catalog));
        self.variants = Some(VariantRuntime::new(lanes));
    }

    /// The attached variant runtime, if any.
    pub fn variants(&self) -> Option<&VariantRuntime> {
        self.variants.as_ref()
    }

    /// Name of the variant the loop is currently serving (`None` without an
    /// attached catalog).
    pub fn active_variant(&self) -> Option<&str> {
        self.variants.as_ref().map(|v| v.active_lane().name())
    }

    /// Runs the variant auto-selection for one replan and applies a switch
    /// to the controller if the winner differs from the live lane.  Returns
    /// what the caller must apply to its engine — `(from, to, pool-ordered
    /// profiles, accuracy)` — or `None` when the live variant stays (or no
    /// catalog is attached).  Split off from the run loop so the
    /// multi-model facade can drive the same policy per lane.
    pub(crate) fn switch_variant_if_needed(
        &mut self,
        budget_per_hour: f64,
        demand_qps: f64,
    ) -> Option<(String, String, Vec<LatencyProfile>, f64)> {
        let runtime = self.variants.as_mut()?;
        let winner =
            runtime.select_lane(&self.controller, &self.options, budget_per_hour, demand_qps);
        if winner == runtime.active() {
            return None;
        }
        let from = runtime.active_lane().variant.name.clone();
        let lane = &runtime.lanes()[winner];
        let to = lane.variant.name.clone();
        let profiles = lane.profiles.clone();
        let accuracy = lane.variant.accuracy;
        self.controller.adopt_variant(lane.priors.clone(), accuracy);
        runtime.set_active(winner);
        Some((from, to, profiles, accuracy))
    }

    /// The engine hot-swap a fresh run must apply before its first event
    /// when the system is not on the reference lane (a previous run may
    /// have left a cheaper variant live): `(profiles, accuracy)`.
    pub(crate) fn initial_variant_profiles(&self) -> Option<(Vec<LatencyProfile>, f64)> {
        let runtime = self.variants.as_ref()?;
        if runtime.active() == 0 {
            return None;
        }
        let lane = runtime.active_lane();
        Some((lane.profiles.clone(), lane.variant.accuracy))
    }

    /// Attaches a correlated-fault process: the engine materializes its zone
    /// outages, capacity shortages and stragglers, and the loop becomes
    /// resilient — fault events trigger [`ReplanTrigger::Fault`] replans,
    /// rejected purchases back off exponentially across alternative
    /// offerings, and (with [`ServingOptions::max_fraction_per_domain`]) the
    /// planner spreads the deployment across failure domains.
    #[must_use]
    pub fn with_fault_process(mut self, process: FaultProcess) -> Self {
        self.faults = Some(process);
        self
    }

    /// Overrides the per-type failure-domain table (one entry per pool
    /// type).  Market-attached systems inherit the catalog's placements
    /// automatically; pool-only systems are domain-blind until told.
    ///
    /// # Panics
    /// Panics unless `placements` is empty or has one entry per pool type.
    pub fn set_placements(&mut self, placements: Vec<FailureDomain>) {
        assert!(
            placements.is_empty() || placements.len() == self.pool.num_types(),
            "one placement per pool type"
        );
        self.placements = placements;
    }

    /// The per-type failure-domain table (empty when domain-blind).
    pub fn placements(&self) -> &[FailureDomain] {
        &self.placements
    }

    /// Re-reads live market prices (with cooldowns applied) into the
    /// planning pool.  No-op without an attached market.
    fn refresh_market_pool(&mut self, now: TimeUs) {
        if let Some(market) = &self.market {
            let pool = market.planning_pool(now);
            self.controller.set_pool(pool.clone());
            self.pool = pool;
        }
    }

    /// Replaces the planning pool from the outside — the multi-model facade
    /// uses this to push one shared market refresh into every lane.
    pub(crate) fn set_planning_pool(&mut self, pool: PoolSpec) {
        self.controller.set_pool(pool.clone());
        self.pool = pool;
    }

    /// The plan cache: how many replans reused the previous ranking versus
    /// recomputed it (diagnostics for the replanning hot path).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The controller driving the loop.
    pub fn controller(&self) -> &KairosController {
        &self.controller
    }

    /// Mutable access to the controller, e.g. to feed observations from an
    /// external source before the first run.
    pub fn controller_mut(&mut self) -> &mut KairosController {
        &mut self.controller
    }

    /// Warm-starts the query monitor with `n` samples of a batch mix (a real
    /// deployment inherits the previous window; a fresh simulation has to
    /// seed it, or the first plans act on the conservative worst-case
    /// sample).
    pub fn warm_monitor(&mut self, mix: &BatchSizeDistribution, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            self.controller.observe_query(mix.sample(&mut rng));
        }
    }

    /// The loop tunables this system was configured with.
    pub fn options(&self) -> &ServingOptions {
        &self.options
    }

    /// Overrides the hourly budget cap for every subsequent plan.  The
    /// sharded multi-model path uses this to freeze a shared-budget split
    /// into each lane's own system before fanning the lanes out to workers.
    pub fn set_budget(&mut self, budget_per_hour: f64) {
        self.options.budget_per_hour = budget_per_hour;
    }

    /// Picks the cheapest configuration (within the budget cap) whose
    /// throughput upper bound covers `demand_qps × demand_headroom`, from
    /// the controller's current knowledge.  Falls back to the planner's
    /// full-budget choice when no cheaper configuration suffices, and to
    /// `None` when the controller cannot plan yet.
    pub fn plan_for_demand(&self, demand_qps: f64) -> Option<Config> {
        self.plan_for_demand_with_budget(self.options.budget_per_hour, demand_qps)
    }

    /// [`Self::plan_for_demand`] under an explicit budget cap — the form a
    /// multi-model facade uses after splitting a shared budget across its
    /// per-model engine rooms.
    pub fn plan_for_demand_with_budget(
        &self,
        budget_per_hour: f64,
        demand_qps: f64,
    ) -> Option<Config> {
        let plan = self.controller.plan(budget_per_hour)?;
        let required = demand_qps * self.options.demand_headroom;
        // The spread constraint binds from the very first deployment: a
        // fleet that only spreads after its first cadence replan spends the
        // opening interval fully concentrated.
        if let Some((fraction, table)) = self
            .options
            .max_fraction_per_domain
            .zip((!self.placements.is_empty()).then_some(self.placements.as_slice()))
        {
            let spread_ok: Vec<(Config, f64)> = plan
                .ranked
                .iter()
                .filter(|(c, _)| within_spread(c, table, fraction))
                .cloned()
                .collect();
            if !spread_ok.is_empty() {
                return Some(
                    cheapest_covering(&self.pool, &spread_ok, required)
                        .unwrap_or_else(|| spread_ok[0].0.clone()),
                );
            }
        }
        Some(cheapest_covering(&self.pool, &plan.ranked, required).unwrap_or(plan.chosen))
    }

    /// The next deployment target for this system's model given current
    /// knowledge, observed demand, an explicit budget cap, and the
    /// sub-cluster deployed right now — the per-model "engine room" call a
    /// multi-model facade drives after splitting its shared budget.  Applies
    /// the scale-in hysteresis and goes through the plan cache (keyed on the
    /// controller's knowledge signature *and* the budget), so a replan under
    /// unchanged knowledge and unchanged budget split is near-free.
    pub fn select_target_for(
        &mut self,
        budget_per_hour: f64,
        demand_qps: f64,
        current: &Config,
    ) -> Option<Config> {
        select_target(
            &mut self.plan_cache,
            &self.controller,
            &self.pool,
            &self.options,
            budget_per_hour,
            demand_qps,
            current,
            (!self.placements.is_empty()).then_some(self.placements.as_slice()),
            None,
        )
    }

    /// Parks every offering the faulted `domain` covers until the fault
    /// window active on it ends — purchases there are announced-doomed, so
    /// probing them one rejection at a time would only waste replans.
    fn park_domain(
        &self,
        backoff: Option<&mut PurchaseBackoff>,
        domain: &FailureDomain,
        now: TimeUs,
    ) {
        let (Some(backoff), Some(process)) = (backoff, self.faults.as_ref()) else {
            return;
        };
        let Some(end) = fault_window_end(process, domain, now) else {
            return;
        };
        let global = FailureDomain::global();
        for i in 0..self.pool.num_types() {
            if domain.covers(self.placements.get(i).unwrap_or(&global)) {
                backoff.park(i, end);
            }
        }
    }

    /// Releases the `domain`'s offerings when its fault lifts — unless
    /// another window (say a shortage outlasting the outage) still covers
    /// them, in which case the hold is extended to that window instead.
    fn release_domain(
        &self,
        backoff: Option<&mut PurchaseBackoff>,
        domain: &FailureDomain,
        now: TimeUs,
    ) {
        let Some(backoff) = backoff else {
            return;
        };
        let still_held = self
            .faults
            .as_ref()
            .and_then(|p| fault_window_end(p, domain, now));
        let global = FailureDomain::global();
        for i in 0..self.pool.num_types() {
            if domain.covers(self.placements.get(i).unwrap_or(&global)) {
                match still_held {
                    Some(end) => backoff.park(i, end),
                    None => backoff.note_success(i),
                }
            }
        }
    }

    /// Runs the controller-in-the-loop simulation of `trace` on `service`,
    /// starting from `initial`.  The scheduler is the controller's own
    /// matching distributor; the cluster is reconfigured live as described in
    /// the module docs.
    pub fn run(
        &mut self,
        initial: &Config,
        service: &ServiceSpec,
        trace: &Trace,
    ) -> ServingOutcome {
        // The engine borrows the market for the whole run; keep our own Arc
        // alive next to the scheduler so the borrow outlives the engine.
        let market_oracle: Option<Arc<dyn Market>> =
            self.market.as_ref().map(|m| m.market().clone());
        let mut scheduler = self.controller.make_scheduler();
        let mut engine = SimEngine::new(
            &self.pool,
            initial,
            service,
            trace,
            &mut scheduler,
            &SimulationOptions {
                seed: self.options.seed,
            },
        );
        if let Some(market) = market_oracle.as_deref() {
            // Events may land while the backlog drains past the last
            // arrival; the slack keeps those storms in scope.
            let horizon = trace
                .duration_us()
                .saturating_add(self.options.market_horizon_slack_us);
            engine = engine.with_market_horizon(market, horizon);
        }
        if self.options.batch_max_size > 0 {
            engine = engine.with_batching(BatchingOptions::new(
                self.options.batch_max_size,
                self.options.batch_timeout_us,
            ));
        }
        if let Some(process) = &self.faults {
            engine = engine.with_faults(process, &self.placements);
        }
        // A previous run may have left a non-reference variant live; the
        // fresh engine starts from the reference service spec and must be
        // brought up to date before the first event.
        if let Some((profiles, accuracy)) = self.initial_variant_profiles() {
            engine.set_model_profiles(ModelId::DEFAULT, &profiles, accuracy);
        }

        // Fault-resilient purchasing: the pristine planning pool (penalty
        // prices are applied relative to it each replan and expire with the
        // backoff) plus the per-offering backoff book.
        let pristine_pool = self.pool.clone();
        let mut backoff = self
            .faults
            .as_ref()
            .map(|_| PurchaseBackoff::new(self.pool.num_types()));

        let mut reconfigs: Vec<ReconfigEvent> = Vec::new();
        let mut variant_switches: Vec<VariantSwitch> = Vec::new();
        let mut replans = 0usize;
        let mut arrival_times: VecDeque<TimeUs> = VecDeque::with_capacity(self.options.rate_window);
        let mut next_cadence_us = self.options.replan_interval_us;
        // Rate the current deployment was planned for (None before the first
        // replan: the initial configuration is taken on faith).
        let mut planned_rate: Option<f64> = None;
        let drift_cooldown_us = self.options.replan_interval_us / 2;
        let mut last_replan_us: TimeUs = 0;

        while let Some(event) = engine.step_event() {
            let now = engine.now();
            match &event {
                EngineEvent::Arrival { query } => {
                    self.controller.observe_query(query.batch_size);
                    if arrival_times.len() == self.options.rate_window {
                        arrival_times.pop_front();
                    }
                    arrival_times.push_back(query.arrival_us);
                }
                EngineEvent::Completion { record, type_name } => {
                    let service_ms = (record.completion_us - record.start_us) as f64 / 1000.0;
                    self.controller
                        .observe_completion(type_name, record.batch_size, service_ms);
                }
                EngineEvent::Completions {
                    records, type_name, ..
                } => {
                    // A fused/shared invocation: every member is one
                    // observed completion at its own batch size.
                    for record in records {
                        let service_ms = (record.completion_us - record.start_us) as f64 / 1000.0;
                        self.controller.observe_completion(
                            type_name,
                            record.batch_size,
                            service_ms,
                        );
                    }
                }
                EngineEvent::InstanceReady { .. } | EngineEvent::BatchFired { .. } => {}
                EngineEvent::PriceStep { .. }
                | EngineEvent::PreemptionNotice { .. }
                | EngineEvent::InstancePreempted { .. } => {}
                // Announced fault windows park the covered offerings up
                // front: every purchase there is known-doomed until the
                // window lifts, so the planner routes around the domain from
                // the first fault replan instead of discovering the wall one
                // rejection at a time.
                EngineEvent::ZoneOutage { domain, .. } => {
                    self.park_domain(backoff.as_mut(), domain, now);
                }
                EngineEvent::ZoneRestored { domain } => {
                    self.release_domain(backoff.as_mut(), domain, now);
                }
                EngineEvent::CapacityShortage { domain, active } => {
                    if *active {
                        self.park_domain(backoff.as_mut(), domain, now);
                    } else {
                        self.release_domain(backoff.as_mut(), domain, now);
                    }
                }
                EngineEvent::StragglerOnset { .. } => {}
                // A park is pure billing bookkeeping; the single-model loop
                // never enables the serverless lane, but the arm keeps the
                // match exhaustive.
                EngineEvent::InstanceParked { .. } => {}
            }
            // Correlated faults demand the fastest reaction: replan the
            // moment an outage begins or lifts, a shortage toggles, or a
            // straggler lands on a live instance.
            let fault_replan = matches!(
                &event,
                EngineEvent::ZoneOutage { .. }
                    | EngineEvent::ZoneRestored { .. }
                    | EngineEvent::CapacityShortage { .. }
                    | EngineEvent::StragglerOnset {
                        victim: Some(_),
                        ..
                    }
            );
            // Market moves (price steps, preemption notices, kills) request
            // an immediate replan and, for notices, start the offering's
            // cooldown.
            let market_replan = match &mut self.market {
                Some(market) => market.on_event(&event, now),
                None => false,
            };

            // Demand is the service rate the cluster must sustain: the
            // offered arrival rate plus the rate needed to drain everything
            // already in the system (centrally queued or sitting in local
            // instance queues beyond the query in service) within one rate
            // horizon.  The backlog term makes overload visible even when
            // the arrival estimate lags a shift, and blocks scale-in while a
            // backlog from a past spike is still draining.  The engine keeps
            // this count incrementally, so reading it is O(1) per event.
            let horizon_s = self.options.rate_horizon_us as f64 / 1e6;
            let queue_pressure = engine.queued_backlog() as f64 / horizon_s;
            let rate = estimate_rate_qps(&mut arrival_times, now, self.options.rate_horizon_us)
                .map(|r| r + queue_pressure);
            let trigger = if fault_replan {
                Some(ReplanTrigger::Fault)
            } else if market_replan {
                Some(ReplanTrigger::Market)
            } else if now >= next_cadence_us {
                Some(ReplanTrigger::Cadence)
            } else if let (Some(rate), Some(planned)) = (rate, planned_rate) {
                let drifted =
                    (rate - planned).abs() / planned.max(1e-9) > self.options.drift_threshold;
                (drifted && now >= last_replan_us + drift_cooldown_us)
                    .then_some(ReplanTrigger::Drift)
            } else {
                None
            };

            if let Some(trigger) = trigger {
                next_cadence_us = now + self.options.replan_interval_us;
                last_replan_us = now;
                if self.controller.observed_queries() < self.options.min_observations {
                    continue;
                }
                let Some(demand) = rate else { continue };
                // Re-read live prices (and cooldown expiries) into the
                // planning pool; price changes join the knowledge signature,
                // so the plan cache invalidates exactly when they matter.
                self.refresh_market_pool(now);
                // Price parked offerings out on top, so the plan routes
                // purchases around domains that just rejected them.
                if let Some(backoff) = &backoff {
                    let base = if self.market.is_some() {
                        &self.pool
                    } else {
                        &pristine_pool
                    };
                    let pool = backoff.penalized_pool(base, now);
                    self.controller.set_pool(pool.clone());
                    self.pool = pool;
                }
                // The variant axis settles first: the configuration plan
                // below runs against the (possibly just-adopted) lane's
                // latency knowledge.
                if let Some((from, to, profiles, accuracy)) =
                    self.switch_variant_if_needed(self.options.budget_per_hour, demand)
                {
                    engine.set_model_profiles(ModelId::DEFAULT, &profiles, accuracy);
                    variant_switches.push(VariantSwitch {
                        at_us: now,
                        model: ModelId::DEFAULT,
                        from,
                        to,
                        accuracy,
                        trigger,
                    });
                }
                let current = engine.cluster().active_config();
                let Some(target) = select_target(
                    &mut self.plan_cache,
                    &self.controller,
                    &self.pool,
                    &self.options,
                    self.options.budget_per_hour,
                    demand,
                    &current,
                    (!self.placements.is_empty()).then_some(self.placements.as_slice()),
                    backoff.as_ref().map(|b| (b, now)),
                ) else {
                    continue;
                };
                replans += 1;
                planned_rate = Some(demand);
                let (added_types, retired_instances) = reconcile_model(
                    &mut engine,
                    ModelId::DEFAULT,
                    &target,
                    &self.options,
                    backoff.as_mut(),
                    trigger == ReplanTrigger::Fault,
                );
                if !added_types.is_empty() || !retired_instances.is_empty() {
                    reconfigs.push(ReconfigEvent {
                        at_us: now,
                        model: ModelId::DEFAULT,
                        trigger,
                        demand_qps: demand,
                        target,
                        added_types,
                        retired_instances,
                    });
                }
            }
        }

        let final_active = engine.cluster().active_config();
        // Leave the system ready for the next run: cooldowns are stamped in
        // this run's virtual time, and the planning pool may still carry
        // cooldown penalty prices from the last replan — both must not leak
        // into later `plan_for_demand`/`run` calls.
        if let Some(market) = &mut self.market {
            market.reset();
            let pool = market.catalog().effective_pool();
            self.controller.set_pool(pool.clone());
            self.pool = pool;
        } else if backoff.is_some() {
            // Backoff penalty prices are stamped in this run's virtual time
            // and must not leak into the next run's fresh clock either.
            self.controller.set_pool(pristine_pool.clone());
            self.pool = pristine_pool;
        }
        ServingOutcome {
            report: engine.report(),
            initial: initial.clone(),
            final_active,
            reconfigs,
            replans,
            variant_switches,
        }
    }
}

/// Cheapest ranked configuration whose upper bound covers `required` QPS
/// (ties broken towards the higher bound).
fn cheapest_covering(pool: &PoolSpec, ranked: &[(Config, f64)], required: f64) -> Option<Config> {
    ranked
        .iter()
        .filter(|(_, ub)| *ub >= required)
        .min_by(|(ca, ua), (cb, ub)| {
            ca.cost(pool)
                .partial_cmp(&cb.cost(pool))
                .unwrap()
                .then(ub.partial_cmp(ua).unwrap())
        })
        .map(|(c, _)| c.clone())
}

/// Picks the next deployment target given current knowledge, observed
/// demand, a budget cap and the configuration deployed right now, applying
/// the scale-in hysteresis described on [`ServingOptions::shrink_factor`].
/// The ranked plan comes through the [`PlanCache`], so back-to-back replans
/// under materially unchanged knowledge are near-free.  (Free function over
/// split borrows: the serving loop calls it while the engine borrows the
/// pool.)
#[allow(clippy::too_many_arguments)]
pub(crate) fn select_target(
    plan_cache: &mut PlanCache,
    controller: &KairosController,
    pool: &PoolSpec,
    options: &ServingOptions,
    budget_per_hour: f64,
    demand_qps: f64,
    current: &Config,
    domains: Option<&[FailureDomain]>,
    blocked: Option<(&PurchaseBackoff, TimeUs)>,
) -> Option<Config> {
    let plan = plan_cache.plan(controller, budget_per_hour)?;
    let required = demand_qps * options.demand_headroom;
    // Realizability first: during an announced fault window the parked
    // offerings reject every purchase, so a target that *grows* a parked
    // type is a phantom plan — reconcile would shed real capacity against
    // replacements that can never land.  (The price penalty alone cannot
    // express this for the base type, which stays unpenalized so the
    // planner always has an affordable anchor.)
    let realizable: Option<Vec<(Config, f64)>> = blocked
        .filter(|(backoff, now)| backoff.any_blocked(*now))
        .map(|(backoff, now)| {
            plan.ranked
                .iter()
                .filter(|(c, _)| purchasable(c, current, pool, backoff, now))
                .cloned()
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty());
    // The spread constraint filters the ranked list *after* the solver ran
    // — the PR 5 lowering keeps planners domain-free and the per-offering
    // domain table resolves each coordinate back to its zone here.  While a
    // fault window actively blocks offerings, the spread *preference* is
    // suspended: concentrating in the surviving domains is exactly what the
    // moment calls for (the constraint would otherwise veto the failover),
    // and the next fault replan after restore re-balances the fleet.
    let spread = options.max_fraction_per_domain.zip(domains);
    let candidate =
        match (&realizable, spread) {
            (Some(realizable), _) => cheapest_covering(pool, realizable, required)
                .unwrap_or_else(|| realizable[0].0.clone()),
            (None, Some((fraction, table))) => {
                let spread_ok: Vec<(Config, f64)> = plan
                    .ranked
                    .iter()
                    .filter(|(c, _)| within_spread(c, table, fraction))
                    .cloned()
                    .collect();
                if spread_ok.is_empty() {
                    // No ranked configuration satisfies the spread (e.g. a
                    // single-offering catalog): plan unconstrained rather than
                    // not at all.
                    cheapest_covering(pool, &plan.ranked, required)
                        .unwrap_or_else(|| plan.chosen.clone())
                } else {
                    cheapest_covering(pool, &spread_ok, required)
                        .unwrap_or_else(|| spread_ok[0].0.clone())
                }
            }
            (None, None) => cheapest_covering(pool, &plan.ranked, required)
                .unwrap_or_else(|| plan.chosen.clone()),
        };
    let current_ub = plan
        .ranked
        .iter()
        .find(|(c, _)| c == current)
        .map(|(_, ub)| *ub)
        .unwrap_or(0.0);
    // Keep the deployment when it still (approximately) covers demand —
    // the 0.8 slack absorbs upper-bound wobble as knowledge evolves — and
    // is not substantially more expensive than the candidate.  A deployment
    // that violates the spread constraint is never kept.
    let keep = current_ub >= required * 0.8
        && current.cost(pool) <= candidate.cost(pool) * options.shrink_factor
        && (realizable.is_some()
            || spread.is_none_or(|(fraction, table)| within_spread(current, table, fraction)));
    Some(if keep { current.clone() } else { candidate })
}

/// Whether `target` can be realized right now: every type it grows beyond
/// the current deployment must be purchasable (not parked in the backoff
/// book).  Shrinking or holding a type needs no purchase and always passes.
/// Base types get a floor of one, mirroring the price-penalty exemption —
/// every enumerable configuration carries a base instance, so holding them
/// strictly to the rule would empty the plan space mid-drain; growing base
/// capacity *beyond* that floor in a parked domain is still vetoed, so the
/// planner cannot paper over an outage with phantom base instances.
fn purchasable(
    target: &Config,
    current: &Config,
    pool: &PoolSpec,
    backoff: &PurchaseBackoff,
    now: TimeUs,
) -> bool {
    target.counts().iter().enumerate().all(|(i, &n)| {
        let held = current.counts().get(i).copied().unwrap_or(0);
        let cap = if pool.types()[i].is_base {
            held.max(1)
        } else {
            held
        };
        n <= cap || !backoff.blocked(i, now)
    })
}

/// End of the latest fault window of `process` that is active on `domain` at
/// `now`, if any: a zone outage spanning `[start, start + duration)` or a
/// capacity shortage spanning `[start, end)`.  Straggler onsets have no
/// window — they degrade capacity but never reject purchases.
pub(crate) fn fault_window_end(
    process: &FaultProcess,
    domain: &FailureDomain,
    now: TimeUs,
) -> Option<TimeUs> {
    process
        .events()
        .iter()
        .filter_map(|event| match event {
            FaultEvent::ZoneOutage {
                domain: d,
                start_us,
                duration_us,
            } if d == domain && *start_us <= now && now < start_us + duration_us => {
                Some(start_us + duration_us)
            }
            FaultEvent::CapacityShortage {
                domain: d,
                start_us,
                end_us,
            } if d == domain && *start_us <= now && now < *end_us => Some(*end_us),
            _ => None,
        })
        .max()
}

/// Whether no failure domain holds more than `fraction` of the
/// configuration's instances (per the per-type domain `table`).
/// Single-instance deployments trivially pass: there is nothing to spread.
pub(crate) fn within_spread(config: &Config, table: &[FailureDomain], fraction: f64) -> bool {
    let total: usize = config.counts().iter().sum();
    if total <= 1 {
        return true;
    }
    let limit = fraction * total as f64 + 1e-9;
    let mut seen: Vec<(&FailureDomain, usize)> = Vec::new();
    for (type_index, &count) in config.counts().iter().enumerate() {
        if count == 0 {
            continue;
        }
        match seen.iter_mut().find(|(d, _)| *d == &table[type_index]) {
            Some((_, n)) => *n += count,
            None => seen.push((&table[type_index], count)),
        }
    }
    seen.iter().all(|(_, n)| *n as f64 <= limit)
}

/// Offered-rate estimate (QPS) over the arrivals within `horizon_us` of
/// `now`; older entries are pruned in place.  `None` until at least two
/// arrivals span non-zero time.
pub(crate) fn estimate_rate_qps(
    arrivals: &mut VecDeque<TimeUs>,
    now: TimeUs,
    horizon_us: TimeUs,
) -> Option<f64> {
    while arrivals.front().is_some_and(|&t| t + horizon_us < now) {
        arrivals.pop_front();
    }
    let (first, last) = (arrivals.front()?, arrivals.back()?);
    if arrivals.len() < 2 || first == last {
        return None;
    }
    let span_us = now.saturating_sub(*first).max(1);
    Some((arrivals.len() - 1) as f64 / (span_us as f64 / 1e6))
}

/// Diffs `target` against the live sub-cluster of `model` and applies the
/// difference: missing instances are added (with the provisioning delay,
/// bound to the model), surplus instances of each type are gracefully
/// retired — idle ones first, then the shallowest backlog, so draining
/// finishes as fast as possible.  Instances bound to other models are never
/// touched.  With `defer_retires` (fault replans), a reconcile that ordered
/// additions keeps its surplus serving until they come up — make before
/// break — so a post-restore rebalance never opens a capacity gap one
/// provisioning delay wide.
pub(crate) fn reconcile_model(
    engine: &mut SimEngine<'_>,
    model: ModelId,
    target: &Config,
    options: &ServingOptions,
    mut backoff: Option<&mut PurchaseBackoff>,
    defer_retires: bool,
) -> (Vec<usize>, Vec<usize>) {
    let active = engine.cluster().active_counts_for(model);
    let mut added_types = Vec::new();
    let mut retired_instances = Vec::new();
    for (type_index, &want) in target.counts().iter().enumerate() {
        let have = active[type_index];
        if want > have {
            for _ in 0..want - have {
                match backoff.as_deref_mut() {
                    Some(backoff) => {
                        // Parked offerings are skipped outright; a rejection
                        // parks the offering and abandons its remaining adds
                        // (the next replan routes around it).
                        let now = engine.now();
                        if backoff.blocked(type_index, now) {
                            break;
                        }
                        match engine.try_add_instance_for(
                            model,
                            type_index,
                            options.provisioning_delay_us,
                        ) {
                            Ok(_) => {
                                backoff.note_success(type_index);
                                added_types.push(type_index);
                            }
                            Err(_) => {
                                backoff.note_rejection(type_index, now, options);
                                break;
                            }
                        }
                    }
                    None => {
                        engine.add_instance_for(model, type_index, options.provisioning_delay_us);
                        added_types.push(type_index);
                    }
                }
            }
        }
    }
    // Make before break on fault replans: a reconcile that just ordered
    // replacements leaves the surplus serving until they come up — retiring
    // now would open a capacity gap one provisioning delay wide (the
    // post-restore rebalance aftershock).  Pending instances count as
    // active, so the next replan sheds the surplus without re-buying.
    if added_types.is_empty() || !defer_retires {
        for (type_index, &want) in target.counts().iter().enumerate() {
            let have = active[type_index];
            if have > want {
                let mut surplus: Vec<(usize, usize)> = engine
                    .cluster()
                    .instances()
                    .iter()
                    .filter(|inst| {
                        inst.model == model
                            && inst.type_index == type_index
                            && inst.accepts_dispatches()
                    })
                    .map(|inst| (inst.backlog(), inst.index))
                    .collect();
                // Shallowest backlog first; ties retire the newest instance.
                surplus.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
                for &(_, index) in surplus.iter().take(have - want) {
                    engine.retire_instance(index);
                    retired_instances.push(index);
                }
            }
        }
    }
    (added_types, retired_instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{
        calibration::paper_calibration, ec2, mlmodel::ModelKind, Offering, OfferingCatalog,
        PreemptionProcess, PriceTrace, TraceMarket,
    };
    use kairos_workload::{BatchSizeDistribution, PhasedArrival};

    fn pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    /// A two-hardware market: on-demand GPU + r5n, spot GPU + r5n at deep
    /// discounts, with one scripted GPU-spot storm at `storm_us`.
    fn spot_catalog(storm_us: Option<TimeUs>) -> OfferingCatalog {
        let notices = PreemptionProcess::At {
            notices_us: storm_us.into_iter().collect(),
        };
        OfferingCatalog::new(vec![
            Offering::on_demand(ec2::g4dn_xlarge()),
            Offering::on_demand(ec2::r5n_large()),
            Offering::spot(ec2::g4dn_xlarge(), PriceTrace::constant(0.17), notices),
            Offering::spot(
                ec2::r5n_large(),
                PriceTrace::constant(0.05),
                PreemptionProcess::None,
            ),
        ])
    }

    fn system(options: ServingOptions) -> ServingSystem {
        ServingSystem::new(pool(), ModelKind::Rm2, Some(paper_calibration()), options)
    }

    /// Seeds the controller's monitor with the production mix, as a real
    /// deployment's window would be after any amount of serving.
    fn warm(s: &mut ServingSystem, n: usize) {
        s.warm_monitor(&BatchSizeDistribution::production_default(), n, 99);
    }

    #[test]
    fn plan_for_demand_is_monotone_in_cost() {
        let s = system(ServingOptions::default());
        let small = s.plan_for_demand(20.0).unwrap();
        let large = s.plan_for_demand(200.0).unwrap();
        assert!(small.cost(&pool()) <= large.cost(&pool()));
        assert!(small.cost(&pool()) < 2.5, "light demand must not max out");
    }

    #[test]
    fn plan_for_demand_falls_back_to_full_budget_pick() {
        let s = system(ServingOptions::default());
        // Demand beyond any upper bound under the budget: full-budget choice.
        let huge = s.plan_for_demand(1e9).unwrap();
        let chosen = s.controller().plan(2.5).unwrap().chosen;
        assert_eq!(huge, chosen);
    }

    #[test]
    fn batching_knobs_drive_the_engine_batcher() {
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        let workload = PhasedArrival::step_change(
            80.0,
            80.0,
            BatchSizeDistribution::production_default(),
            3.0,
            3.0,
            23,
        );
        let trace = workload.generate();
        let initial = system(ServingOptions::default())
            .plan_for_demand(80.0)
            .unwrap();

        let mut plain = system(ServingOptions::default().replan_every(500_000));
        warm(&mut plain, 2000);
        let without = plain.run(&initial, &service, &trace);
        assert_eq!(without.report.service.batches_fired, 0);

        let mut batched = system(
            ServingOptions::default()
                .replan_every(500_000)
                .batching(256, 2_000),
        );
        warm(&mut batched, 2000);
        let with = batched.run(&initial, &service, &trace);
        assert!(
            with.report.service.batches_fired > 0,
            "the batching knob must reach the engine"
        );
        assert_eq!(
            with.report.service.batched_queries,
            with.report.service.batch_fill_sum
        );
        // Batching must not lose queries.
        assert_eq!(
            with.report.records.len() + with.report.unfinished.len(),
            with.report.offered
        );
    }

    #[test]
    fn rate_estimate_needs_a_window_and_prunes_stale_arrivals() {
        let horizon = 2_000_000;
        let mut w: VecDeque<TimeUs> = VecDeque::new();
        assert_eq!(estimate_rate_qps(&mut w, 0, horizon), None);
        w.push_back(0);
        assert_eq!(estimate_rate_qps(&mut w, 500_000, horizon), None);
        w.push_back(1_000_000);
        assert_eq!(estimate_rate_qps(&mut w, 1_000_000, horizon), Some(1.0));
        // Far in the future, both arrivals are stale: no estimate, pruned.
        assert_eq!(estimate_rate_qps(&mut w, 10_000_000, horizon), None);
        assert!(w.is_empty());
    }

    #[test]
    fn steady_load_keeps_the_cluster_stable() {
        let mut s = system(ServingOptions::default().replan_every(500_000));
        warm(&mut s, 2000);
        let workload = PhasedArrival::step_change(
            60.0,
            60.0,
            BatchSizeDistribution::production_default(),
            4.0,
            4.0,
            17,
        );
        let initial = s.plan_for_demand(60.0).unwrap();
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        let duration = workload.total_duration_us();
        let outcome = s.run(&initial, &service, &workload.generate());
        assert!(outcome.replans > 0, "cadence must fire");
        // Same rate throughout: while traffic flows the cluster must not
        // churn (after the last arrival the offered rate decays to zero and
        // scaling in is the *correct* reaction, so the tail is exempt).
        let in_trace: Vec<_> = outcome
            .reconfigs
            .iter()
            .filter(|r| r.at_us < duration)
            .collect();
        assert!(
            in_trace.len() <= 1,
            "steady load should not thrash: {in_trace:?}"
        );
        assert!(outcome.report.meets_qos(0.05));
        // Steady load means stationary knowledge: the ranked plan must be
        // reused across cadence replans, not recomputed each tick.
        assert!(
            s.plan_cache().hits() > 0,
            "cadence replans under steady load should hit the plan cache \
             (hits {}, misses {})",
            s.plan_cache().hits(),
            s.plan_cache().misses()
        );
    }

    #[test]
    fn rate_spike_scales_the_cluster_out() {
        let mut s = system(
            ServingOptions::default()
                .replan_every(500_000)
                .provisioning_delay(200_000),
        );
        warm(&mut s, 2000);
        let workload = PhasedArrival::step_change(
            40.0,
            160.0,
            BatchSizeDistribution::production_default(),
            3.0,
            3.0,
            23,
        );
        let initial = s.plan_for_demand(40.0).unwrap();
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        let outcome = s.run(&initial, &service, &workload.generate());
        assert!(outcome.reconfigured(), "the spike must trigger reconfig");
        let grew = outcome.reconfigs.iter().any(|r| !r.added_types.is_empty());
        assert!(grew, "scale-out expected: {:?}", outcome.reconfigs);
        // The cluster was scaled past its initial size while the spike was
        // live (it may legitimately scale back in once arrivals stop).
        let peak_cost = outcome
            .reconfigs
            .iter()
            .map(|r| r.target.cost(&pool()))
            .fold(0.0f64, f64::max);
        assert!(
            peak_cost > initial.cost(&pool()),
            "peak cluster should exceed the initial one"
        );
    }

    #[test]
    fn market_plan_buys_spot_capacity_and_undercuts_on_demand() {
        let catalog = spot_catalog(None);
        let market = Arc::new(TraceMarket::new(catalog.clone()));
        let mut market_sys = ServingSystem::with_market(
            catalog.clone(),
            market,
            ModelKind::Rm2,
            Some(paper_calibration()),
            ServingOptions::default(),
        );
        market_sys.warm_monitor(&BatchSizeDistribution::production_default(), 2000, 99);
        let od_pool = PoolSpec::new(vec![ec2::g4dn_xlarge(), ec2::r5n_large()]);
        let mut od_sys = ServingSystem::new(
            od_pool.clone(),
            ModelKind::Rm2,
            Some(paper_calibration()),
            ServingOptions::default(),
        );
        od_sys.warm_monitor(&BatchSizeDistribution::production_default(), 2000, 99);

        let effective = catalog.effective_pool();
        let market_plan = market_sys.plan_for_demand(80.0).unwrap();
        let od_plan = od_sys.plan_for_demand(80.0).unwrap();
        // The market plan rides the discount: it buys spot offerings and
        // covers the same demand for less than the on-demand-only plan.
        let spot_count = market_plan.count(2) + market_plan.count(3);
        assert!(spot_count > 0, "plan {market_plan} ignores spot capacity");
        assert!(
            market_plan.cost(&effective) < od_plan.cost(&od_pool),
            "market {:.3} $/hr vs on-demand {:.3} $/hr",
            market_plan.cost(&effective),
            od_plan.cost(&od_pool)
        );
        // The base anchor stays on-demand.
        assert!(market_plan.count(0) >= 1);
    }

    #[test]
    fn preemption_storm_triggers_market_replans_and_recovery() {
        let storm_us = 3_000_000;
        let catalog = spot_catalog(Some(storm_us));
        let market = Arc::new(TraceMarket::new(catalog.clone()));
        let mut system = ServingSystem::with_market(
            catalog,
            market,
            ModelKind::Rm2,
            Some(paper_calibration()),
            ServingOptions::default()
                .replan_every(500_000)
                .provisioning_delay(200_000)
                .spot_cooldown(2_000_000),
        );
        system.warm_monitor(&BatchSizeDistribution::production_default(), 2000, 7);
        let workload = PhasedArrival::step_change(
            70.0,
            70.0,
            BatchSizeDistribution::production_default(),
            3.0,
            3.0,
            41,
        );
        let initial = system.plan_for_demand(70.0).unwrap();
        assert!(
            initial.count(2) + initial.count(3) > 0,
            "the initial plan should ride spot capacity: {initial}"
        );
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        let outcome = system.run(&initial, &service, &workload.generate());

        // The storm actually reclaimed capacity and the loop replanned on it.
        assert!(outcome.report.preemption_notices >= 1);
        assert!(
            outcome
                .reconfigs
                .iter()
                .any(|r| r.trigger == ReplanTrigger::Market),
            "a market replan must fire: {:?}",
            outcome.reconfigs
        );
        // Recovery: replacement capacity was bought after the storm.
        assert!(
            outcome
                .reconfigs
                .iter()
                .any(|r| r.at_us >= storm_us && !r.added_types.is_empty()),
            "the loop must re-buy capacity after the storm"
        );
        // All queries accounted for despite requeues.
        assert_eq!(
            outcome.report.completed() + outcome.report.unfinished.len(),
            outcome.report.offered
        );
        // Billing reflects the discount: time-weighted spend stays below
        // the nominal budget.
        assert!(
            outcome.report.billed_cost_per_hour() < system.options().budget_per_hour,
            "billed {:.3} $/hr",
            outcome.report.billed_cost_per_hour()
        );
        // The run must not leak per-run market state: cooldowns are cleared
        // and the planning pool is back at live catalog prices, so a
        // post-run plan rides the spot discount again instead of seeing the
        // stormed offering at its ×40 penalty.
        for offering in 0..4 {
            assert!(
                !system.market().unwrap().in_cooldown(offering, 0),
                "cooldown leaked past the run for offering {offering}"
            );
        }
        let after = system.plan_for_demand(70.0).unwrap();
        assert!(
            after.count(2) + after.count(3) > 0,
            "post-run plan must see spot prices again: {after}"
        );
    }

    #[test]
    fn storm_during_backlog_drain_still_fires() {
        // The notice lands *after* the last arrival but within the market
        // horizon slack — the storm must still be delivered while the
        // backlog drains, not silently dropped at the trace boundary.
        let catalog = spot_catalog(Some(3_100_000));
        let market = Arc::new(TraceMarket::new(catalog.clone()));
        let mut system = ServingSystem::with_market(
            catalog,
            market,
            ModelKind::Rm2,
            Some(paper_calibration()),
            ServingOptions::default().market_horizon_slack(2_000_000),
        );
        system.warm_monitor(&BatchSizeDistribution::production_default(), 2000, 7);
        let workload = PhasedArrival::step_change(
            60.0,
            60.0,
            BatchSizeDistribution::production_default(),
            1.5,
            1.5,
            43,
        );
        let trace = workload.generate();
        assert!(trace.duration_us() < 3_100_000);
        let initial = system.plan_for_demand(60.0).unwrap();
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        let outcome = system.run(&initial, &service, &trace);
        assert_eq!(
            outcome.report.preemption_notices, 1,
            "a storm inside the drain window must fire"
        );
    }

    /// A two-zone catalog: GPU + r5n hardware offered on demand in both
    /// `us-east-1a` and `us-east-1b` (zone b at a hair more expensive, so a
    /// domain-blind planner concentrates in zone a).
    fn two_zone_catalog() -> OfferingCatalog {
        let zone_a = FailureDomain::zone("us-east-1", "us-east-1a");
        let zone_b = FailureDomain::zone("us-east-1", "us-east-1b");
        let mut gpu_b = ec2::g4dn_xlarge();
        gpu_b.is_base = false;
        gpu_b.price_per_hour *= 1.02;
        let mut aux_b = ec2::r5n_large();
        aux_b.price_per_hour *= 1.02;
        OfferingCatalog::new(vec![
            Offering::on_demand(ec2::g4dn_xlarge()).in_domain(zone_a.clone()),
            Offering::on_demand(ec2::r5n_large()).in_domain(zone_a),
            Offering::on_demand(gpu_b).in_domain(zone_b.clone()),
            Offering::on_demand(aux_b).in_domain(zone_b),
        ])
    }

    #[test]
    fn within_spread_checks_per_domain_shares() {
        let table = two_zone_catalog().domains();
        // Everything in zone a: 4/4 in one domain.
        assert!(!within_spread(&Config::new(vec![2, 2, 0, 0]), &table, 0.6));
        // 2/4 per zone respects a 0.6 cap.
        assert!(within_spread(&Config::new(vec![1, 1, 1, 1]), &table, 0.6));
        // A single instance has nothing to spread.
        assert!(within_spread(&Config::new(vec![1, 0, 0, 0]), &table, 0.5));
    }

    #[test]
    fn zone_outage_triggers_fault_replans_and_failover() {
        use kairos_models::FaultEvent;
        let catalog = two_zone_catalog();
        let zone_a = FailureDomain::zone("us-east-1", "us-east-1a");
        let process = FaultProcess::new(vec![FaultEvent::ZoneOutage {
            domain: zone_a,
            start_us: 2_500_000,
            duration_us: 2_500_000,
        }]);
        let market = Arc::new(TraceMarket::new(catalog.clone()));
        let mut system = ServingSystem::with_market(
            catalog,
            market,
            ModelKind::Rm2,
            Some(paper_calibration()),
            ServingOptions::default()
                .replan_every(500_000)
                .provisioning_delay(200_000)
                .spread_limit(0.75)
                .purchase_backoff(400_000, 3),
        )
        .with_fault_process(process);
        system.warm_monitor(&BatchSizeDistribution::production_default(), 2000, 7);
        let workload = PhasedArrival::step_change(
            70.0,
            70.0,
            BatchSizeDistribution::production_default(),
            4.0,
            4.0,
            31,
        );
        let initial = system.plan_for_demand(70.0).unwrap();
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        let outcome = system.run(&initial, &service, &workload.generate());

        // The outage fired, was booked, and drove at least one Fault replan.
        assert_eq!(outcome.report.outages.len(), 1);
        assert!(outcome.report.outages[0].killed_instances > 0);
        assert!(
            outcome
                .reconfigs
                .iter()
                .any(|r| r.trigger == ReplanTrigger::Fault),
            "a fault replan must fire: {:?}",
            outcome.reconfigs
        );
        // Failover: replacement capacity was bought after the outage began.
        assert!(
            outcome
                .reconfigs
                .iter()
                .any(|r| r.at_us >= 2_500_000 && !r.added_types.is_empty()),
            "the loop must re-buy capacity around the outage"
        );
        // Requeues and rejections never lose queries.
        assert_eq!(
            outcome.report.completed() + outcome.report.unfinished.len(),
            outcome.report.offered
        );
    }

    #[test]
    fn load_drop_scales_the_cluster_in() {
        let mut s = system(ServingOptions::default().replan_every(500_000));
        warm(&mut s, 2000);
        let workload = PhasedArrival::step_change(
            180.0,
            30.0,
            BatchSizeDistribution::production_default(),
            3.0,
            3.0,
            29,
        );
        let initial = s.plan_for_demand(180.0).unwrap();
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        let outcome = s.run(&initial, &service, &workload.generate());
        let shrank = outcome
            .reconfigs
            .iter()
            .any(|r| !r.retired_instances.is_empty());
        assert!(shrank, "scale-in expected: {:?}", outcome.reconfigs);
        assert!(outcome.final_active.cost(&pool()) < initial.cost(&pool()));
        // Graceful draining: every query is still accounted for.
        assert_eq!(
            outcome.report.completed() + outcome.report.unfinished.len(),
            outcome.report.offered
        );
    }

    #[test]
    fn reference_only_catalog_reproduces_the_legacy_run_bit_for_bit() {
        let workload = PhasedArrival::step_change(
            40.0,
            160.0,
            BatchSizeDistribution::production_default(),
            3.0,
            3.0,
            23,
        );
        let trace = workload.generate();
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());

        let mut legacy = system(ServingOptions::default().replan_every(500_000));
        warm(&mut legacy, 2000);
        let initial = legacy.plan_for_demand(40.0).unwrap();
        let base = legacy.run(&initial, &service, &trace);

        let mut with_catalog = system(ServingOptions::default().replan_every(500_000))
            .with_variants(
                &VariantCatalog::reference_only(&[ModelKind::Rm2]),
                &paper_calibration(),
            );
        warm(&mut with_catalog, 2000);
        let lowered = with_catalog.run(&initial, &service, &trace);

        // A reference-only catalog has nothing to switch to, so the variant
        // axis must be a perfect no-op: same report, same reconfig tape.
        assert!(lowered.variant_switches.is_empty());
        assert_eq!(with_catalog.active_variant(), Some("fp32"));
        assert_eq!(base.replans, lowered.replans);
        assert_eq!(
            format!("{:?}", base.report),
            format!("{:?}", lowered.report)
        );
        assert_eq!(
            format!("{:?}", base.reconfigs),
            format!("{:?}", lowered.reconfigs)
        );
    }

    #[test]
    fn serving_downgrades_under_pressure_and_repromotes_when_calm_returns() {
        let mut s = system(ServingOptions::default().replan_every(500_000))
            .with_variants(&VariantCatalog::paper_variants(), &paper_calibration());
        warm(&mut s, 2000);
        // Size the spike off the reference plan's own best bound: fp32
        // cannot cover it under the budget, but the quantized lanes can.
        let ref_best = s.controller().plan(2.5).unwrap().ranked[0].1;
        let workload = PhasedArrival::step_change(
            ref_best * 1.1,
            25.0,
            BatchSizeDistribution::production_default(),
            4.0,
            6.0,
            23,
        );
        let initial = s.plan_for_demand(25.0).unwrap();
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        let outcome = s.run(&initial, &service, &workload.generate());

        assert!(
            !outcome.variant_switches.is_empty(),
            "the overload must force a variant switch"
        );
        let first = &outcome.variant_switches[0];
        assert_eq!(first.from, "fp32");
        assert_ne!(
            first.to, "fp32",
            "pressure must downgrade off the reference"
        );
        assert!(first.accuracy < 0.985);
        // Calm returns: the loop re-promotes to the highest-accuracy lane.
        let last = outcome.variant_switches.last().unwrap();
        assert_eq!(
            last.to, "fp32",
            "re-promotion expected: {:?}",
            outcome.variant_switches
        );
        assert_eq!(s.active_variant(), Some("fp32"));
        // Delivered accuracy reflects the mixed-variant service.
        let delivered = outcome.report.delivered_accuracy();
        assert!(delivered < 0.985 && delivered > 0.9, "got {delivered}");
    }

    #[test]
    fn accuracy_floor_vetoes_the_downgrade() {
        let mut s = system(
            ServingOptions::default()
                .replan_every(500_000)
                .min_accuracy(0.98),
        )
        .with_variants(&VariantCatalog::paper_variants(), &paper_calibration());
        warm(&mut s, 2000);
        let ref_best = s.controller().plan(2.5).unwrap().ranked[0].1;
        let workload = PhasedArrival::step_change(
            ref_best * 1.1,
            25.0,
            BatchSizeDistribution::production_default(),
            4.0,
            4.0,
            23,
        );
        let initial = s.plan_for_demand(25.0).unwrap();
        let service = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        let outcome = s.run(&initial, &service, &workload.generate());

        // Rm2's quantized lanes sit below the 0.98 floor: the loop serves
        // degraded on the reference rather than trade accuracy away.
        assert!(outcome.variant_switches.is_empty());
        assert_eq!(s.active_variant(), Some("fp32"));
        let delivered = outcome.report.delivered_accuracy();
        assert!((delivered - 0.985).abs() < 1e-9, "got {delivered}");
    }
}

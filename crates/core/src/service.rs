//! The multi-model serving facade: one [`InferenceService`] in front of N
//! per-model Kairos control loops sharing a single `$/hr` budget.
//!
//! INFaaS-style *model-less, managed* serving is the API users actually
//! want: submit a query tagged with a model (a compact
//! [`ModelId`]) and let the system own placement and capacity.  Kairos's
//! evaluation spans five models with QoS targets from 5 ms (NCF) to 350 ms
//! (RM2, Table 3); a production fleet serves that *mix* on shared
//! infrastructure, not one model at a time.  The facade:
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!                    │              InferenceService              │
//!   mixed trace ──►  │  SimEngine (multi-model cluster, per-model │
//!  (ModelId-tagged)  │  QoS in-engine, model-checked dispatch)    │
//!                    │      │ arrivals / completions, by model    │
//!                    │      ▼                                     │
//!                    │  lane[m]: ServingSystem (controller, plan  │
//!                    │  cache, demand estimate)  ── per-model     │
//!                    │      ▲                        replanning   │
//!                    │      │ budget_m                            │
//!                    │  demand-weighted water-filling over the    │
//!                    │  one global budget                         │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! * **Budget split** ([`InferenceService::split_budget`]) — every model is
//!   guaranteed a floor (one base instance); the spare budget is
//!   water-filled proportionally to per-model demand, re-pinning any model
//!   whose proportional share would fall below its floor.
//! * **Per-model replanning** — each lane is a full [`ServingSystem`]
//!   "engine room": its own controller (monitor + predictors), its own
//!   [`PlanCache`](crate::PlanCache) keyed on *its* knowledge signature and
//!   budget share, its own drift detection.  A mix shift in one model
//!   replans that model; the others keep their cached rankings.
//! * **Scheduling** ([`MultiScheduler`]) — queries are partitioned by model
//!   each round and matched by per-model Kairos min-cost matchings against
//!   the instances bound to that model; the engine enforces the binding.

use crate::distribution::KairosScheduler;
use crate::serverless::ServerlessRuntime;
use crate::serving::ServingOutcome;
use crate::serving::{
    estimate_rate_qps, reconcile_model, MarketState, ReconfigEvent, ReplanTrigger, ServingOptions,
    ServingSystem, VariantSwitch,
};
use kairos_models::{
    latency::LatencyTable, mlmodel::ModelKind, Config, Market, OfferingCatalog, PoolSpec,
    VariantCatalog,
};
use kairos_sim::{
    ClusterSpec, Dispatch, EngineEvent, InstanceView, ModelReport, Scheduler, SchedulingContext,
    ServiceSpec, SimEngine, SimReport, SimulationOptions,
};
use kairos_workload::{MixSpec, ModelId, Query, TimeUs, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// A query-distribution policy for multi-model clusters: one Kairos
/// min-cost matching per model, each seeing only its model's queries and
/// instances.  Completions are routed to the owning model's predictors via
/// the `(type, model)` indices — no string hashing.
pub struct MultiScheduler {
    inner: Vec<KairosScheduler>,
    /// Reusable per-model scratch: sub-queue, global-index map, sub-views.
    queued: Vec<Vec<Query>>,
    qmap: Vec<Vec<usize>>,
    views: Vec<Vec<InstanceView>>,
}

impl MultiScheduler {
    /// Builds the policy from one per-model scheduler, indexed by
    /// [`ModelId`].
    pub fn new(inner: Vec<KairosScheduler>) -> Self {
        let n = inner.len();
        Self {
            inner,
            queued: vec![Vec::new(); n],
            qmap: vec![Vec::new(); n],
            views: vec![Vec::new(); n],
        }
    }
}

impl Scheduler for MultiScheduler {
    fn name(&self) -> &'static str {
        "kairos-multi"
    }

    fn bind_types(&mut self, type_names: &[Arc<str>]) {
        for s in &mut self.inner {
            s.bind_types(type_names);
        }
    }

    fn on_completion(
        &mut self,
        type_index: usize,
        model: ModelId,
        batch_size: u32,
        service_ms: f64,
    ) {
        if let Some(s) = self.inner.get_mut(model.index()) {
            s.on_completion(type_index, model, batch_size, service_ms);
        }
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        // Partition the round by model.  The per-model sub-context carries
        // filtered views (instance_index stays global, so inner dispatches
        // come back in cluster coordinates) and the model's own QoS target.
        for m in 0..self.inner.len() {
            self.queued[m].clear();
            self.qmap[m].clear();
            self.views[m].clear();
        }
        for (qi, q) in ctx.queued.iter().enumerate() {
            if let Some(sub) = self.queued.get_mut(q.model.index()) {
                sub.push(*q);
                self.qmap[q.model.index()].push(qi);
            }
        }
        for view in ctx.instances {
            if let Some(sub) = self.views.get_mut(view.model.index()) {
                if view.accepting {
                    sub.push(view.clone());
                }
            }
        }
        let mut out = Vec::new();
        for (m, inner) in self.inner.iter_mut().enumerate() {
            if self.queued[m].is_empty() || self.views[m].is_empty() {
                continue;
            }
            let qos = ctx.qos_for(ModelId::new(m));
            let sub_ctx = SchedulingContext {
                now_us: ctx.now_us,
                queued: &self.queued[m],
                instances: &self.views[m],
                // The Kairos matching reads the full view set, not the idle
                // index; an empty index is valid for it.
                idle: &[],
                qos_us: qos,
                qos_by_model: ctx.qos_by_model,
            };
            for d in inner.schedule(&sub_ctx) {
                out.push(Dispatch {
                    query_index: self.qmap[m][d.query_index],
                    instance_index: d.instance_index,
                });
            }
        }
        out
    }
}

/// One model's lane inside the facade: its engine room plus the loop state
/// the facade tracks for it.
struct ModelLane {
    kind: ModelKind,
    system: ServingSystem,
    arrivals: VecDeque<TimeUs>,
    planned_rate: Option<f64>,
    last_replan_us: TimeUs,
}

/// Result of one multi-model serving run.
#[derive(Debug, Clone)]
pub struct MultiServingOutcome {
    /// The per-query simulation report (with per-model breakdowns).
    pub report: SimReport,
    /// The cluster spec the run started from.
    pub initial: ClusterSpec,
    /// Dispatch-accepting per-model instance counts at the end of the run.
    pub final_active: ClusterSpec,
    /// Every reconfiguration applied, in order, tagged with its model.
    pub reconfigs: Vec<ReconfigEvent>,
    /// Total number of replanning passes (including no-op ones), across all
    /// models.
    pub replans: usize,
    /// The most recent per-model budget split, indexed by [`ModelId`].
    pub last_budget_split: Vec<f64>,
    /// Every model-variant switch applied, in order, tagged with its model
    /// (empty without an attached variant catalog).
    pub variant_switches: Vec<VariantSwitch>,
}

impl MultiServingOutcome {
    /// Per-model accounting of the run (sums to the aggregate report).
    pub fn per_model(&self) -> Vec<ModelReport> {
        self.report.per_model()
    }
}

/// The multi-model serving facade: N per-model [`ServingSystem`] engine
/// rooms behind one model-tagged query API and one shared hourly budget.
pub struct InferenceService {
    pool: PoolSpec,
    lanes: Vec<ModelLane>,
    options: ServingOptions,
    /// The attached cloud market, if any — shared across lanes (one market,
    /// one cooldown book; each lane replans over the same refreshed pool).
    market: Option<MarketState>,
    /// The attached serverless runtime, if any: sparse lanes run under its
    /// keep-alive policy (and scale to zero in the budget split) instead of
    /// holding an always-on floor.
    serverless: Option<ServerlessRuntime>,
}

impl InferenceService {
    /// Creates a service for `models` over a shared pool.  `models[i]` is
    /// served as [`ModelId`] `i`.  `priors` seeds every lane's latency
    /// knowledge; [`ServingOptions::budget_per_hour`] is the **global**
    /// budget shared by all models.
    ///
    /// # Panics
    /// Panics if `models` is empty, a model repeats, or the global budget
    /// cannot cover one base instance per model.
    pub fn new(
        pool: PoolSpec,
        models: &[ModelKind],
        priors: Option<LatencyTable>,
        options: ServingOptions,
    ) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        for (i, m) in models.iter().enumerate() {
            assert!(
                models[i + 1..].iter().all(|n| n != m),
                "model {m} appears twice"
            );
        }
        let floor = pool.price(pool.base_index());
        assert!(
            options.budget_per_hour >= floor * models.len() as f64,
            "budget {} cannot cover one base instance ({floor} $/hr) per model",
            options.budget_per_hour
        );
        let lanes = models
            .iter()
            .map(|&kind| ModelLane {
                kind,
                system: ServingSystem::new(pool.clone(), kind, priors.clone(), options),
                arrivals: VecDeque::with_capacity(options.rate_window),
                planned_rate: None,
                last_replan_us: 0,
            })
            .collect();
        Self {
            pool,
            lanes,
            options,
            market: None,
            serverless: None,
        }
    }

    /// Creates a **market-aware** facade over an offering catalog: every
    /// lane plans over the catalog's offerings at live prices, simulation
    /// bills at the market, and market events (price steps, preemption
    /// notices, kills) replan the affected deployment — see
    /// [`ServingSystem::with_market`] for the single-model semantics this
    /// lifts to N lanes under one shared budget.
    pub fn with_market(
        catalog: OfferingCatalog,
        market: Arc<dyn Market>,
        models: &[ModelKind],
        priors: Option<LatencyTable>,
        options: ServingOptions,
    ) -> Self {
        let mut service = Self::new(catalog.effective_pool(), models, priors, options);
        service.market = Some(MarketState::new(catalog, market, options.spot_cooldown_us));
        service
    }

    /// Attaches a variant catalog to **every** lane: each model's serving
    /// loop auto-selects among its catalog variants at its own replans
    /// (lowered against this lane's model, dominated variants pruned) — see
    /// [`ServingSystem::with_variants`] for the per-lane semantics.  The
    /// shared budget split is unchanged; a lane that downgrades simply
    /// covers its demand share with a faster, cheaper-per-query variant.
    ///
    /// # Panics
    /// Panics if the catalog lacks variants for any served model or if
    /// `base` lacks a profile for some pool type.
    #[must_use]
    pub fn with_variants(mut self, catalog: &VariantCatalog, base: &LatencyTable) -> Self {
        for lane in &mut self.lanes {
            lane.system.attach_variants(catalog, base);
        }
        self
    }

    /// Attaches a serverless runtime: lanes whose planned demand falls below
    /// the runtime's sparse threshold serve under its keep-alive policy —
    /// their single container parks (and stops billing) once idle past the
    /// policy deadline and pays the cold-start cost on the next dispatch —
    /// and their always-on floor in the budget split drops to zero, so the
    /// freed budget water-fills into the hot lanes.  The lane assignment is
    /// fixed per run, from the demands the run was planned for; each lane's
    /// policy joins its controller's knowledge signature, so moving a lane
    /// between always-on and serverless retires its cached plans.
    #[must_use]
    pub fn with_serverless(mut self, runtime: ServerlessRuntime) -> Self {
        self.serverless = Some(runtime);
        self
    }

    /// The attached serverless runtime, if any.
    pub fn serverless(&self) -> Option<&ServerlessRuntime> {
        self.serverless.as_ref()
    }

    /// The attached market state, if this facade trades on one.
    pub fn market(&self) -> Option<&MarketState> {
        self.market.as_ref()
    }

    /// The served models, indexed by [`ModelId`].
    pub fn models(&self) -> Vec<ModelKind> {
        self.lanes.iter().map(|l| l.kind).collect()
    }

    /// The [`ModelId`] a model kind is served under, if any.
    pub fn model_id(&self, kind: ModelKind) -> Option<ModelId> {
        self.lanes
            .iter()
            .position(|l| l.kind == kind)
            .map(ModelId::new)
    }

    /// A model's per-lane engine room (controller, plan cache, demand
    /// planner).
    pub fn lane(&self, model: ModelId) -> &ServingSystem {
        &self.lanes[model.index()].system
    }

    /// Mutable access to a model's engine room, e.g. to feed observations
    /// before the first run.
    pub fn lane_mut(&mut self, model: ModelId) -> &mut ServingSystem {
        &mut self.lanes[model.index()].system
    }

    /// The ground-truth service specifications of the served models, in
    /// [`ModelId`] order — the table handed to
    /// [`SimEngine::new_multi`] by [`Self::run`].
    pub fn service_specs(&self, latency: &LatencyTable) -> Vec<ServiceSpec> {
        self.lanes
            .iter()
            .map(|l| ServiceSpec::new(l.kind, latency.clone()))
            .collect()
    }

    /// Warm-starts every lane's query monitor from a [`MixSpec`]: `n` draws
    /// are routed to the lane of the model they tag, as a real deployment's
    /// windows would be after any amount of serving.
    pub fn warm_monitors(&mut self, mix: &MixSpec, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            let (model, batch) = mix.sample(&mut rng);
            if let Some(lane) = self.lanes.get_mut(model.index()) {
                lane.system.controller_mut().observe_query(batch);
            }
        }
    }

    /// Converts per-model arrival rates into *capacity* weights: offered
    /// QPS × the learned per-query service time on the pool's base type at
    /// the lane's observed mean batch size — i.e. how many base-instance
    /// seconds per second the model actually consumes.  Raw QPS would
    /// starve slow models (an RM2 query costs ~100× an NCF query); capacity
    /// weighting is what makes the budget split meaningful across QoS
    /// classes.  Lanes without latency knowledge fall back to raw QPS.
    fn capacity_weights(&self, demands: &[f64]) -> Vec<f64> {
        let base_name = &self.pool.types()[self.pool.base_index()].name;
        self.lanes
            .iter()
            .zip(demands)
            .map(|(lane, &demand)| {
                let controller = lane.system.controller();
                let per_query_s = controller
                    .learned_table()
                    .and_then(|t| t.get(lane.kind, base_name))
                    .map(|profile| {
                        let batch = controller.monitor().mean().unwrap_or(1.0);
                        profile.latency_ms(batch.round().max(1.0) as u32) / 1000.0
                    })
                    .unwrap_or(1.0);
                demand.max(0.0) * per_query_s
            })
            .collect()
    }

    /// Per-lane budget floors for the given demands: one base instance per
    /// lane, except lanes a [`ServerlessRuntime`] classifies as sparse —
    /// those scale to zero (their parked container bills nothing, so the
    /// split owes them nothing up front).
    fn lane_floors(&self, demands: &[f64]) -> Vec<f64> {
        let base_floor = self.pool.price(self.pool.base_index());
        match &self.serverless {
            Some(rt) => demands
                .iter()
                .map(|&d| if rt.is_sparse(d) { 0.0 } else { base_floor })
                .collect(),
            None => vec![base_floor; self.lanes.len()],
        }
    }

    /// Splits the global hourly budget across models by **demand-weighted
    /// water-filling**: every model is guaranteed a floor of one base
    /// instance (zero for lanes an attached [`ServerlessRuntime`] lets
    /// scale to zero); the spare budget is distributed proportionally to
    /// each model's *capacity* demand (its QPS × learned per-query
    /// base-type service time, so slow models are not starved), iteratively
    /// pinning to its floor any model whose proportional share would fall
    /// below it (its freed share re-floods the rest).  Zero total demand
    /// splits the spare evenly.
    ///
    /// The pinning loop keeps the still-flexible lanes in one in-place list
    /// (pinned lanes are swap-removed as they pin), so a pass over a
    /// thousands-of-lanes split costs O(flex) instead of rebuilding an
    /// all-lanes index vector per round.
    ///
    /// # Panics
    /// Panics if `demands` does not have one entry per model.
    pub fn split_budget(&self, demands: &[f64]) -> Vec<f64> {
        assert_eq!(demands.len(), self.lanes.len(), "one demand per model");
        let n = self.lanes.len();
        let weights = self.capacity_weights(demands);
        let floors = self.lane_floors(demands);
        let budget = self.options.budget_per_hour;
        let mut alloc = floors.clone();
        let mut flex: Vec<usize> = (0..n).collect();
        let mut pinned_total = 0.0;
        loop {
            if flex.is_empty() {
                break;
            }
            let spare = budget - pinned_total;
            let flex_weight: f64 = flex.iter().map(|&i| weights[i]).sum();
            // Round-start snapshot of the flex count: every lane in this
            // round shares against the same denominator even as pinned
            // lanes are swap-removed mid-round.
            let round_len = flex.len();
            let mut changed = false;
            let mut k = 0;
            while k < flex.len() {
                let i = flex[k];
                let share = if flex_weight > 0.0 {
                    weights[i] / flex_weight
                } else {
                    1.0 / round_len as f64
                };
                alloc[i] = spare * share;
                if alloc[i] < floors[i] {
                    alloc[i] = floors[i];
                    pinned_total += floors[i];
                    flex.swap_remove(k);
                    changed = true;
                } else {
                    k += 1;
                }
            }
            if !changed {
                break;
            }
        }
        alloc
    }

    /// Plans an initial per-model cluster spec for the given expected
    /// per-model demands (QPS), splitting the global budget first.  The
    /// demands also seed each lane's drift baseline, so a run whose traffic
    /// deviates from the initial plan can replan on drift before the first
    /// cadence tick.  Returns `None` if any lane cannot plan yet (no
    /// latency knowledge).
    ///
    /// With a [`ServerlessRuntime`] attached, sparse lanes are not planned
    /// against their (near-zero) budget share: each gets exactly one base
    /// instance — the vessel the engine parks whenever it idles past the
    /// keep-alive deadline — and its controller adopts the keep-alive
    /// policy, which joins the knowledge signature and retires any cached
    /// always-on plans.  Hot lanes get `None` (always-on) and plan as
    /// before.
    pub fn plan_initial(&mut self, demands: &[f64]) -> Option<ClusterSpec> {
        let budgets = self.split_budget(demands);
        let policies = self.lane_policies(demands);
        let base_vessel = {
            let mut counts = vec![0; self.pool.num_types()];
            counts[self.pool.base_index()] = 1;
            Config::new(counts)
        };
        let mut configs = Vec::with_capacity(self.lanes.len());
        for (lane, ((&budget, &demand), policy)) in self
            .lanes
            .iter_mut()
            .zip(budgets.iter().zip(demands.iter()).zip(&policies))
        {
            lane.system
                .controller_mut()
                .set_serverless_policy(policy.clone());
            configs.push(if policy.is_some() {
                base_vessel.clone()
            } else {
                lane.system.plan_for_demand_with_budget(budget, demand)?
            });
            lane.planned_rate = Some(demand);
        }
        Some(ClusterSpec::from_configs(configs))
    }

    /// Per-lane keep-alive assignment for the given demands: `None` for
    /// every lane without an attached runtime.
    fn lane_policies(&self, demands: &[f64]) -> Vec<Option<kairos_models::KeepAlivePolicy>> {
        match &self.serverless {
            Some(rt) => rt.assign(demands),
            None => vec![None; self.lanes.len()],
        }
    }

    /// Builds the multi-model query distributor from every lane's current
    /// latency knowledge.
    pub fn make_scheduler(&self) -> MultiScheduler {
        MultiScheduler::new(
            self.lanes
                .iter()
                .map(|l| l.system.controller().make_scheduler())
                .collect(),
        )
    }

    /// Runs the multi-model controller-in-the-loop simulation of `trace`
    /// (a [`ModelId`]-tagged query stream) on `services`, starting from
    /// `initial`.  Every lane observes its own arrivals and completions and
    /// replans on its own cadence/drift signals; on each replan the global
    /// budget is re-split across lanes by current demand and each due lane's
    /// sub-cluster is steered independently (graceful add/retire, exactly as
    /// in single-model serving).
    ///
    /// # Panics
    /// Panics if `services` does not cover every lane (in [`ModelId`]
    /// order), or if the trace contains a query for a model this service
    /// does not serve.
    pub fn run(
        &mut self,
        initial: &ClusterSpec,
        services: &[ServiceSpec],
        trace: &Trace,
    ) -> MultiServingOutcome {
        let n = self.lanes.len();
        assert_eq!(services.len(), n, "one service spec per model");
        for (i, (lane, service)) in self.lanes.iter().zip(services).enumerate() {
            assert_eq!(
                lane.kind, service.model.kind,
                "service spec {i} does not match lane model"
            );
        }
        if let Some(stray) = trace.queries.iter().find(|q| q.model.index() >= n) {
            panic!(
                "trace query {} targets model {} but only {n} models are served",
                stray.id, stray.model
            );
        }
        // Keep an owned handle to the market oracle next to the scheduler so
        // the engine's borrow of it outlives the loop.
        let market_oracle: Option<Arc<dyn Market>> =
            self.market.as_ref().map(|m| m.market().clone());
        let mut scheduler = self.make_scheduler();
        let service_refs: Vec<&ServiceSpec> = services.iter().collect();
        let mut engine = SimEngine::new_multi(
            &self.pool,
            initial,
            &service_refs,
            trace,
            &mut scheduler,
            &SimulationOptions {
                seed: self.options.seed,
            },
        );
        if let Some(market) = market_oracle.as_deref() {
            // Keep storms that land while the backlog drains in scope.
            let horizon = trace
                .duration_us()
                .saturating_add(self.options.market_horizon_slack_us);
            engine = engine.with_market_horizon(market, horizon);
        }
        // Serverless lanes park between requests: the engine-side policy
        // vector is built from the demands this run was planned for and is
        // fixed for the run (the container lifecycle is configured at engine
        // construction).  Each lane's policy is mirrored into its controller
        // so it joins the knowledge signature and retires stale cached plans.
        let planned: Vec<f64> = self
            .lanes
            .iter()
            .map(|l| l.planned_rate.unwrap_or(0.0))
            .collect();
        let lane_policies = self.lane_policies(&planned);
        if let Some(rt) = &self.serverless {
            engine = engine.with_serverless(rt.config_for(&planned));
        }
        for (lane, policy) in self.lanes.iter_mut().zip(&lane_policies) {
            lane.system
                .controller_mut()
                .set_serverless_policy(policy.clone());
        }
        // Lanes left on a non-reference variant by a previous run must be
        // re-applied to the fresh engine, whose specs are reference-grade.
        for (m, lane) in self.lanes.iter().enumerate() {
            if let Some((profiles, accuracy)) = lane.system.initial_variant_profiles() {
                engine.set_model_profiles(ModelId::new(m), &profiles, accuracy);
            }
        }

        let mut reconfigs: Vec<ReconfigEvent> = Vec::new();
        let mut variant_switches: Vec<VariantSwitch> = Vec::new();
        let mut replans = 0usize;
        let mut next_cadence_us = self.options.replan_interval_us;
        let mut last_budget_split = self.split_budget(&vec![0.0; n]);
        // Drift reaction is capped at the demand-estimation horizon: a lane
        // should not be forced to wait out a long cadence interval when its
        // own traffic has demonstrably shifted.
        let drift_cooldown_us =
            (self.options.replan_interval_us / 2).min(self.options.rate_horizon_us);
        let horizon_s = self.options.rate_horizon_us as f64 / 1e6;

        while let Some(event) = engine.step_event() {
            let now = engine.now();
            match &event {
                EngineEvent::Arrival { query } => {
                    let lane = &mut self.lanes[query.model.index()];
                    lane.system.controller_mut().observe_query(query.batch_size);
                    if lane.arrivals.len() == self.options.rate_window {
                        lane.arrivals.pop_front();
                    }
                    lane.arrivals.push_back(query.arrival_us);
                }
                EngineEvent::Completion { record, type_name } => {
                    let service_ms = (record.completion_us - record.start_us) as f64 / 1000.0;
                    self.lanes[record.model.index()]
                        .system
                        .controller_mut()
                        .observe_completion(type_name, record.batch_size, service_ms);
                }
                EngineEvent::Completions {
                    records, type_name, ..
                } => {
                    // A fused/shared invocation: route every member to its
                    // own lane's latency observer.
                    for record in records {
                        let service_ms = (record.completion_us - record.start_us) as f64 / 1000.0;
                        self.lanes[record.model.index()]
                            .system
                            .controller_mut()
                            .observe_completion(type_name, record.batch_size, service_ms);
                    }
                }
                EngineEvent::InstanceReady { .. } | EngineEvent::BatchFired { .. } => {}
                EngineEvent::PriceStep { .. }
                | EngineEvent::PreemptionNotice { .. }
                | EngineEvent::InstancePreempted { .. } => {}
                // Fault processes are a single-model ServingSystem feature
                // for now; the multi-model facade never attaches one.
                EngineEvent::ZoneOutage { .. }
                | EngineEvent::ZoneRestored { .. }
                | EngineEvent::CapacityShortage { .. }
                | EngineEvent::StragglerOnset { .. } => {}
                // Parks are billing bookkeeping inside the engine; the loop
                // reacts to the wake (a plain dispatch), not the park.
                EngineEvent::InstanceParked { .. } => {}
            }
            // A market move replans every lane that has a fresh demand
            // estimate (prices shifted for all of them at once).
            let market_replan = match &mut self.market {
                Some(market) => market.on_event(&event, now),
                None => false,
            };

            // Per-lane demand: the lane's offered arrival rate plus its
            // share of the queued backlog drain term.  The aggregate backlog
            // is O(1) from the engine; it is attributed to lanes by their
            // share of recent arrivals (per-model backlog would need a queue
            // scan per event).
            let backlog = engine.queued_backlog() as f64;
            let window_total: usize = self.lanes.iter().map(|l| l.arrivals.len()).sum();
            let mut demands = vec![0.0f64; n];
            // Whether lane m produced a *fresh* rate estimate this event.  A
            // lane without one must not be replanned against demand 0 — that
            // would scale it to the floor while its real traffic is merely
            // unobservable right now — so it keeps its last planned rate as
            // its weight in the budget split and is never marked due (the
            // single-model loop's `let Some(demand) = rate else { continue }`
            // guard, per lane).
            let mut fresh = vec![false; n];
            let mut any_rate = false;
            for (m, lane) in self.lanes.iter_mut().enumerate() {
                let share = if window_total > 0 {
                    lane.arrivals.len() as f64 / window_total as f64
                } else {
                    1.0 / n as f64
                };
                let pressure = backlog * share / horizon_s;
                if let Some(rate) =
                    estimate_rate_qps(&mut lane.arrivals, now, self.options.rate_horizon_us)
                {
                    demands[m] = rate + pressure;
                    fresh[m] = true;
                    any_rate = true;
                } else {
                    demands[m] = lane.planned_rate.unwrap_or(0.0);
                }
            }

            // A lane replans on the shared cadence or on its own drift
            // signal; the budget split is recomputed from all lanes' current
            // demands whenever anyone replans.
            let cadence_due = now >= next_cadence_us;
            if cadence_due {
                next_cadence_us = now + self.options.replan_interval_us;
            }
            if !any_rate {
                continue;
            }
            let mut due: Vec<(usize, ReplanTrigger)> = Vec::new();
            for (m, lane) in self.lanes.iter().enumerate() {
                // A serverless lane's capacity is its parked vessel; billing
                // follows usage through parking, not through reconfiguration,
                // so the lane never enters the reconcile loop.
                if lane_policies[m].is_some() {
                    continue;
                }
                if !fresh[m] || lane.arrivals.len() < 2 {
                    continue;
                }
                if market_replan {
                    due.push((m, ReplanTrigger::Market));
                } else if cadence_due {
                    due.push((m, ReplanTrigger::Cadence));
                } else if let Some(planned) = lane.planned_rate {
                    let drifted = (demands[m] - planned).abs() / planned.max(1e-9)
                        > self.options.drift_threshold;
                    if drifted && now >= lane.last_replan_us + drift_cooldown_us {
                        due.push((m, ReplanTrigger::Drift));
                    }
                }
            }
            if due.is_empty() {
                continue;
            }
            // Market-attached runs re-read live prices (and cooldown
            // expiries) into every lane's planning pool before planning.
            if let Some(market) = &self.market {
                let pool = market.planning_pool(now);
                for lane in &mut self.lanes {
                    lane.system.set_planning_pool(pool.clone());
                }
                self.pool = pool;
            }
            let budgets = self.split_budget(&demands);
            last_budget_split = budgets.clone();
            for (m, trigger) in due {
                let lane = &mut self.lanes[m];
                lane.last_replan_us = now;
                if lane.system.controller().observed_queries() < self.options.min_observations {
                    continue;
                }
                let model = ModelId::new(m);
                // The variant axis settles first: the lane's configuration
                // plan below runs against the adopted lane's knowledge.
                if let Some((from, to, profiles, accuracy)) =
                    lane.system.switch_variant_if_needed(budgets[m], demands[m])
                {
                    engine.set_model_profiles(model, &profiles, accuracy);
                    variant_switches.push(VariantSwitch {
                        at_us: now,
                        model,
                        from,
                        to,
                        accuracy,
                        trigger,
                    });
                }
                let current = engine.cluster().active_config_for(model);
                let Some(target) = lane
                    .system
                    .select_target_for(budgets[m], demands[m], &current)
                else {
                    continue;
                };
                replans += 1;
                lane.planned_rate = Some(demands[m]);
                let (added_types, retired_instances) =
                    reconcile_model(&mut engine, model, &target, &self.options, None, false);
                if !added_types.is_empty() || !retired_instances.is_empty() {
                    reconfigs.push(ReconfigEvent {
                        at_us: now,
                        model,
                        trigger,
                        demand_qps: demands[m],
                        target,
                        added_types,
                        retired_instances,
                    });
                }
            }
        }

        let final_active = ClusterSpec::from_configs(
            (0..n)
                .map(|m| engine.cluster().active_config_for(ModelId::new(m)))
                .collect(),
        );
        // Reset per-run market state (virtual-time cooldowns, penalty prices
        // in the lanes' planning pools) so later planning calls see live
        // catalog prices again.
        if let Some(market) = &mut self.market {
            market.reset();
            let pool = market.catalog().effective_pool();
            for lane in &mut self.lanes {
                lane.system.set_planning_pool(pool.clone());
            }
            self.pool = pool;
        }
        MultiServingOutcome {
            report: engine.report(),
            initial: initial.clone(),
            final_active,
            reconfigs,
            replans,
            last_budget_split,
            variant_switches,
        }
    }

    /// The scale-out sibling of [`Self::run`]: shards the trace by model
    /// lane and runs every lane's full controller-in-the-loop serving
    /// simulation (its own engine, controller, plan cache, replanning) on
    /// its own rayon worker, then merges the per-lane outcomes through
    /// [`SimReport::merge`].  The global budget is split **once**, up
    /// front, from each lane's offered load over the whole trace, and
    /// frozen into the lane's engine room ([`ServingSystem::set_budget`])
    /// before the fan-out.
    ///
    /// This is deliberately *not* bit-equal to [`Self::run`]: the combined
    /// loop re-splits the budget at every replan from live demand and
    /// attributes the shared backlog across lanes, coupling the lanes
    /// through the one global event stream.  Sharding trades that coupling
    /// away for lane parallelism — each lane replans against its own
    /// traffic under its frozen budget share — which is the right trade
    /// exactly when the trace is long and stationary enough that the
    /// demand-weighted split would not move anyway.  The result is still
    /// deterministic for a given input and identical at every thread count
    /// (each lane is a sequential simulation; the merge is canonical).
    ///
    /// # Panics
    /// Panics if a market is attached (market events are global and couple
    /// every lane's prices and kill schedule — serve those through
    /// [`Self::run`]), if `services` does not cover every lane, if the
    /// trace targets an unserved model, or if `initial` lacks a lane's
    /// sub-cluster.
    pub fn run_sharded(
        &mut self,
        initial: &ClusterSpec,
        services: &[ServiceSpec],
        trace: &Trace,
    ) -> MultiServingOutcome {
        let n = self.lanes.len();
        assert!(
            self.market.is_none(),
            "sharded serving does not support markets: price steps and preemptions are global \
             events that couple every lane; use InferenceService::run"
        );
        assert_eq!(services.len(), n, "one service spec per model");
        for (i, (lane, service)) in self.lanes.iter().zip(services).enumerate() {
            assert_eq!(
                lane.kind, service.model.kind,
                "service spec {i} does not match lane model"
            );
        }
        let subs = trace.split_by_model(n);
        let demands: Vec<f64> = subs.iter().map(|s| s.offered_qps()).collect();
        let budgets = self.split_budget(&demands);
        let configs: Vec<Config> = (0..n)
            .map(|m| {
                initial
                    .pools
                    .iter()
                    .find(|p| p.model.index() == m)
                    .unwrap_or_else(|| panic!("initial spec has no sub-cluster for model {m}"))
                    .config
                    .clone()
            })
            .collect();

        struct LaneJob<'j> {
            system: &'j mut ServingSystem,
            service: &'j ServiceSpec,
            config: Config,
            budget: f64,
            sub: Trace,
        }
        let mut jobs: Vec<LaneJob<'_>> = self
            .lanes
            .iter_mut()
            .zip(subs)
            .zip(configs.iter().zip(services).zip(&budgets))
            .map(|((lane, sub), ((config, service), &budget))| LaneJob {
                system: &mut lane.system,
                service,
                config: config.clone(),
                budget,
                // Each lane replays as a single-model run: retag its
                // queries to the default id (ids/arrivals untouched).
                sub: Trace::from_queries(
                    sub.queries
                        .iter()
                        .map(|q| Query::new(q.id, q.batch_size, q.arrival_us))
                        .collect(),
                ),
            })
            .collect();

        let outcomes: Vec<ServingOutcome> = jobs
            .par_iter_mut()
            .map(|job| {
                job.system.set_budget(job.budget);
                job.system.run(&job.config, job.service, &job.sub)
            })
            .collect();

        // Lift each lane's single-model outcome into the combined
        // coordinate space: model ids retagged, instance indices offset by
        // the lanes before it (a lane's index space is its initial size
        // grown by any instances added while serving).
        let mut merged: Option<SimReport> = None;
        let mut reconfigs: Vec<ReconfigEvent> = Vec::new();
        let mut variant_switches: Vec<VariantSwitch> = Vec::new();
        let mut replans = 0usize;
        let mut final_configs = Vec::with_capacity(n);
        let mut offset = 0usize;
        for (m, outcome) in outcomes.into_iter().enumerate() {
            let model = ModelId::new(m);
            let mut report = outcome.report;
            let mut lane_size = configs[m].total_instances();
            for r in &mut report.records {
                lane_size = lane_size.max(r.instance_index + 1);
                r.instance_index += offset;
                r.model = model;
            }
            for u in &mut report.unfinished {
                u.model = model;
            }
            report.qos_us = services[0].qos_us();
            report.qos_by_model = services.iter().map(|s| s.qos_us()).collect();
            let lane_billed: f64 = report.billed_by_model.iter().fold(0.0, |acc, &b| acc + b);
            let mut billed_by_model = vec![0.0; n];
            billed_by_model[m] = lane_billed;
            report.billed_by_model = billed_by_model;
            report.billed_dollars = lane_billed;
            let lane_accuracy: f64 = report
                .accuracy_sum_by_model
                .iter()
                .fold(0.0, |acc, &a| acc + a);
            let mut accuracy_sum_by_model = vec![0.0; n];
            accuracy_sum_by_model[m] = lane_accuracy;
            report.accuracy_sum_by_model = accuracy_sum_by_model;
            merged = Some(match merged {
                None => report,
                Some(acc) => acc.merge(report),
            });
            for mut event in outcome.reconfigs {
                event.model = model;
                for idx in &mut event.retired_instances {
                    lane_size = lane_size.max(*idx + 1);
                    *idx += offset;
                }
                reconfigs.push(event);
            }
            for mut switch in outcome.variant_switches {
                switch.model = model;
                variant_switches.push(switch);
            }
            replans += outcome.replans;
            final_configs.push(outcome.final_active);
            offset += lane_size;
        }
        reconfigs.sort_by_key(|e| (e.at_us, e.model.index()));
        variant_switches.sort_by_key(|s| (s.at_us, s.model.index()));

        MultiServingOutcome {
            report: merged.expect("a facade serves at least one model"),
            initial: initial.clone(),
            final_active: ClusterSpec::from_configs(final_configs),
            reconfigs,
            replans,
            last_budget_split: budgets,
            variant_switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2};
    use kairos_workload::{ArrivalProcess, BatchSizeDistribution, MixedTraceSpec};

    fn pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    fn three_models() -> [ModelKind; 3] {
        [ModelKind::Ncf, ModelKind::Rm2, ModelKind::Wnd]
    }

    fn mix() -> MixSpec {
        MixSpec::from_shares(
            &[0.4, 0.3, 0.3],
            &[
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
            ],
        )
    }

    fn service(options: ServingOptions) -> InferenceService {
        InferenceService::new(pool(), &three_models(), Some(paper_calibration()), options)
    }

    #[test]
    fn budget_split_is_capacity_weighted_with_floors() {
        let mut s = service(ServingOptions::default().budget(6.0));
        s.warm_monitors(&mix(), 3000, 3);
        let split = s.split_budget(&[100.0, 100.0, 100.0]);
        assert_eq!(split.len(), 3);
        let total: f64 = split.iter().sum();
        assert!((total - 6.0).abs() < 1e-9, "the split spends the budget");
        // Equal QPS is *not* equal capacity: an RM2 query costs ~100x an NCF
        // query on the base type, so RM2 (model 1) must get the dominant
        // share while the cheap models sit at (or near) the floor.
        let floor = pool().price(pool().base_index());
        assert!(
            split[1] > split[0] && split[1] > split[2],
            "split {split:?}"
        );
        assert!(
            split[1] > 6.0 - 3.0 * floor,
            "RM2 takes the spare: {split:?}"
        );
        assert!(split[0] >= floor - 1e-9 && split[2] >= floor - 1e-9);
        // A starved model is pinned at the floor (one base instance).
        let skew = s.split_budget(&[1000.0, 0.0, 1000.0]);
        assert!((skew[1] - floor).abs() < 1e-9, "idle model gets the floor");
        let total: f64 = skew.iter().sum();
        assert!((total - 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn budget_below_per_model_floors_rejected() {
        service(ServingOptions::default().budget(0.9));
    }

    #[test]
    fn plan_initial_binds_one_config_per_model_within_budget() {
        let mut s = service(ServingOptions::default().budget(6.0));
        s.warm_monitors(&mix(), 3000, 11);
        let spec = s.plan_initial(&[60.0, 40.0, 50.0]).unwrap();
        assert_eq!(spec.pools.len(), 3);
        assert!(spec.cost(&pool()) <= 6.0 + 1e-9);
        for (m, slice) in spec.pools.iter().enumerate() {
            assert_eq!(slice.model, ModelId::new(m));
            assert!(slice.config.count(pool().base_index()) >= 1);
        }
    }

    #[test]
    fn three_model_mix_runs_end_to_end_under_one_budget() {
        let mut s = service(
            ServingOptions::default()
                .budget(6.0)
                .replan_every(500_000)
                .provisioning_delay(200_000),
        );
        s.warm_monitors(&mix(), 3000, 7);
        let spec = s.plan_initial(&[60.0, 45.0, 45.0]).unwrap();
        let services = s.service_specs(&paper_calibration());
        let trace = MixedTraceSpec {
            arrival: ArrivalProcess::Poisson { rate_qps: 150.0 },
            mix: mix(),
            duration_s: 4.0,
            seed: 31,
        }
        .generate();
        let offered = trace.len();
        let outcome = s.run(&spec, &services, &trace);
        assert_eq!(outcome.report.offered, offered);
        assert_eq!(
            outcome.report.completed() + outcome.report.unfinished.len(),
            offered
        );
        // Per-model accounting covers all three models and sums exactly.
        let per = outcome.per_model();
        assert_eq!(per.len(), 3);
        assert!(per.iter().all(|m| m.offered > 0));
        assert_eq!(
            per.iter().map(|m| m.offered).sum::<usize>(),
            outcome.report.offered
        );
        assert_eq!(
            per.iter().map(|m| m.violations).sum::<usize>(),
            outcome.report.violations()
        );
        // Per-model QoS is enforced in-engine: the QoS table carries each
        // model's own target.
        assert_eq!(outcome.report.qos_by_model.len(), 3);
        assert_eq!(outcome.report.qos_for(ModelId::new(0)), 5_000);
        assert_eq!(outcome.report.qos_for(ModelId::new(1)), 350_000);
        assert_eq!(outcome.report.qos_for(ModelId::new(2)), 25_000);
        // The loop replanned and the budget split covers every lane.
        assert!(outcome.replans > 0, "cadence must fire");
        assert_eq!(outcome.last_budget_split.len(), 3);
        assert!(outcome.last_budget_split.iter().sum::<f64>() <= 6.0 + 1e-9);
        // Every query landed on an instance bound to its model.
        let spec_models: Vec<ModelId> =
            outcome.final_active.pools.iter().map(|p| p.model).collect();
        assert_eq!(
            spec_models,
            vec![ModelId::new(0), ModelId::new(1), ModelId::new(2)]
        );
    }

    #[test]
    fn one_model_drift_replans_only_that_lane() {
        let mut s = service(
            ServingOptions::default()
                .budget(6.0)
                .replan_every(100_000_000) // cadence never fires in-trace
                .drift_threshold(0.3),
        );
        s.warm_monitors(&mix(), 3000, 19);
        let spec = s.plan_initial(&[40.0, 30.0, 30.0]).unwrap();
        let services = s.service_specs(&paper_calibration());
        // Model 0's rate quadruples mid-trace; the others stay flat.
        use kairos_workload::{Phase, PhasedArrival};
        let calm = MixSpec::from_shares(
            &[0.4, 0.3, 0.3],
            &[
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
            ],
        );
        // RM2 (model 1, the slow 350 ms model) spikes; the others stay flat.
        let spiked = MixSpec::from_shares(
            &[0.12, 0.76, 0.12],
            &[
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
            ],
        );
        let workload = PhasedArrival::new(
            vec![
                Phase::poisson_mix(100.0, calm, 3.0),
                Phase::poisson_mix(250.0, spiked, 3.0),
            ],
            23,
        );
        let outcome = s.run(&spec, &services, &workload.generate());
        // The cadence never fires, so every reconfiguration is drift-driven
        // and belongs to the spiking lane.
        assert!(
            outcome.reconfigs.iter().any(|r| r.model == ModelId::new(1)),
            "the spiking model must reconfigure: {:?}",
            outcome.reconfigs
        );
        assert!(
            outcome
                .reconfigs
                .iter()
                .all(|r| r.trigger == ReplanTrigger::Drift),
            "cadence is disabled: {:?}",
            outcome.reconfigs
        );
    }

    #[test]
    fn sharded_serving_runs_every_lane_and_accounts_like_the_combined_facade() {
        let options = ServingOptions::default()
            .budget(6.0)
            .replan_every(500_000)
            .provisioning_delay(200_000);
        let mut s = service(options);
        s.warm_monitors(&mix(), 3000, 7);
        let spec = s.plan_initial(&[60.0, 45.0, 45.0]).unwrap();
        let services = s.service_specs(&paper_calibration());
        let trace = MixedTraceSpec {
            arrival: ArrivalProcess::Poisson { rate_qps: 150.0 },
            mix: mix(),
            duration_s: 4.0,
            seed: 31,
        }
        .generate();
        let offered = trace.len();
        let outcome = s.run_sharded(&spec, &services, &trace);
        // Conservation and per-model accounting hold exactly, as in run().
        assert_eq!(outcome.report.offered, offered);
        assert_eq!(
            outcome.report.completed() + outcome.report.unfinished.len(),
            offered
        );
        let per = outcome.per_model();
        assert_eq!(per.len(), 3);
        assert!(per.iter().all(|m| m.offered > 0));
        assert_eq!(
            per.iter().map(|m| m.offered).sum::<usize>(),
            outcome.report.offered
        );
        // Each lane's records were lifted back into the combined model ids
        // and QoS table.
        assert_eq!(outcome.report.qos_for(ModelId::new(0)), 5_000);
        assert_eq!(outcome.report.qos_for(ModelId::new(1)), 350_000);
        assert_eq!(outcome.report.qos_for(ModelId::new(2)), 25_000);
        // The frozen split covers every lane within the global budget.
        assert_eq!(outcome.last_budget_split.len(), 3);
        assert!(outcome.last_budget_split.iter().sum::<f64>() <= 6.0 + 1e-9);
        assert_eq!(outcome.final_active.pools.len(), 3);
        // Billing was lifted into per-model slots whose fold is the total.
        assert_eq!(outcome.report.billed_by_model.len(), 3);
        assert!(outcome.report.billed_dollars > 0.0);
        // Delivered accuracy was lifted into per-model slots too: every
        // lane served its reference model, so each per-model mean is that
        // model's spec accuracy.
        assert_eq!(outcome.report.accuracy_sum_by_model.len(), 3);
        for (m, &kind) in three_models().iter().enumerate() {
            let expected = kairos_models::mlmodel::spec(kind).accuracy;
            assert!(
                (per[m].mean_accuracy - expected).abs() < 1e-9,
                "model {m}: {} != {expected}",
                per[m].mean_accuracy
            );
        }
        // Deterministic: a fresh facade re-running the same inputs under a
        // different worker count reproduces the report bit-for-bit.
        let mut again = service(options);
        again.warm_monitors(&mix(), 3000, 7);
        let workers = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let outcome2 = workers.install(|| again.run_sharded(&spec, &services, &trace));
        assert_eq!(outcome.report.records, outcome2.report.records);
        assert_eq!(outcome.report.unfinished, outcome2.report.unfinished);
        assert_eq!(
            outcome.report.billed_dollars.to_bits(),
            outcome2.report.billed_dollars.to_bits()
        );
        assert_eq!(outcome.replans, outcome2.replans);
    }

    #[test]
    fn variant_catalog_downgrades_the_pressured_lane() {
        use kairos_models::VariantCatalog;
        use kairos_workload::{Phase, PhasedArrival};
        let mut s = service(
            ServingOptions::default()
                .budget(6.0)
                .replan_every(500_000)
                .provisioning_delay(200_000),
        )
        .with_variants(&VariantCatalog::paper_variants(), &paper_calibration());
        s.warm_monitors(&mix(), 3000, 19);
        let spec = s.plan_initial(&[40.0, 30.0, 30.0]).unwrap();
        let services = s.service_specs(&paper_calibration());
        // RM2 (model 1, the slow 350 ms model) spikes far past what its
        // budget share can serve at full precision; the others stay flat.
        let spiked = MixSpec::from_shares(
            &[0.12, 0.76, 0.12],
            &[
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
            ],
        );
        let workload = PhasedArrival::new(
            vec![
                Phase::poisson_mix(100.0, mix(), 2.0),
                Phase::poisson_mix(300.0, spiked, 4.0),
            ],
            23,
        );
        let outcome = s.run(&spec, &services, &workload.generate());
        // The pressured RM2 lane traded accuracy for throughput.
        let rm2 = ModelId::new(1);
        assert!(
            outcome
                .variant_switches
                .iter()
                .any(|sw| sw.model == rm2 && sw.to != "fp32"),
            "the RM2 lane must downgrade: {:?}",
            outcome.variant_switches
        );
        // Accuracy accounting reflects the mixed-variant service: RM2's
        // delivered mean sits strictly between its distilled and reference
        // accuracies, and the aggregate folds all three models.
        let per = outcome.per_model();
        let reference = kairos_models::mlmodel::spec(ModelKind::Rm2).accuracy;
        assert!(per[1].completed > 0);
        assert!(
            per[1].mean_accuracy < reference && per[1].mean_accuracy > reference - 0.05,
            "got {}",
            per[1].mean_accuracy
        );
        let delivered = outcome.report.delivered_accuracy();
        assert!(delivered > 0.9 && delivered < 1.0, "got {delivered}");
    }

    fn tail_runtime(threshold: f64) -> ServerlessRuntime {
        use kairos_models::{ColdStartCost, ColdStartProfile, KeepAlivePolicy};
        ServerlessRuntime::new(
            KeepAlivePolicy::fixed(200_000).unwrap(),
            ColdStartProfile::uniform(ColdStartCost::new(50_000, 150_000)),
            threshold,
        )
    }

    #[test]
    fn serverless_floors_free_the_budget_for_hot_lanes() {
        let mut s = service(ServingOptions::default().budget(6.0));
        s.warm_monitors(&mix(), 3000, 3);
        let demands = [1000.0, 0.5, 0.2];
        let always_on = s.split_budget(&demands);
        let mut s =
            service(ServingOptions::default().budget(6.0)).with_serverless(tail_runtime(5.0));
        s.warm_monitors(&mix(), 3000, 3);
        let split = s.split_budget(&demands);
        let floor = pool().price(pool().base_index());
        // Without serverless the sparse lanes hold a one-base-instance floor
        // each; with it they keep only their (tiny) demand-proportional
        // share and the freed floors water-fill into the hot lane.
        assert!((always_on[1] - floor).abs() < 1e-9);
        assert!((always_on[2] - floor).abs() < 1e-9);
        assert!(split[0] > always_on[0], "split {split:?} vs {always_on:?}");
        assert!(split[1] < floor && split[2] < floor, "split {split:?}");
        assert!((split.iter().sum::<f64>() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_lanes_scale_to_zero_park_and_bill_less_than_their_floors() {
        // Model 0 (NCF) carries ~96% of the traffic; RM2 and WND are a
        // low-QPS tail whose arrivals leave gaps far past the 200 ms
        // keep-alive deadline.
        let sparse_mix = MixSpec::from_shares(
            &[0.96, 0.02, 0.02],
            &[
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::production_default(),
            ],
        );
        let trace = MixedTraceSpec {
            arrival: ArrivalProcess::Poisson { rate_qps: 60.0 },
            mix: sparse_mix.clone(),
            duration_s: 6.0,
            seed: 17,
        }
        .generate();
        let options = ServingOptions::default().budget(6.0).replan_every(500_000);
        let demands = [58.0, 1.2, 1.2];

        let mut baseline = service(options);
        baseline.warm_monitors(&sparse_mix, 3000, 9);
        let base_spec = baseline.plan_initial(&demands).unwrap();
        let services = baseline.service_specs(&paper_calibration());
        let base = baseline.run(&base_spec, &services, &trace);
        assert_eq!(base.report.service.cold_starts, 0);

        let mut s = service(options).with_serverless(tail_runtime(5.0));
        s.warm_monitors(&sparse_mix, 3000, 9);
        let spec = s.plan_initial(&demands).unwrap();
        // Sparse lanes got exactly the one-base-instance vessel and adopted
        // the keep-alive policy; the hot lane stayed always-on.
        assert_eq!(spec.pools[1].config.total_instances(), 1);
        assert_eq!(spec.pools[2].config.total_instances(), 1);
        assert!(s
            .lane(ModelId::new(0))
            .controller()
            .serverless_policy()
            .is_none());
        assert!(s
            .lane(ModelId::new(1))
            .controller()
            .serverless_policy()
            .is_some());
        let outcome = s.run(&spec, &services, &trace);

        // Conservation still holds and the tail lanes really parked: cold
        // starts happened and parked time accrued.
        assert_eq!(
            outcome.report.completed() + outcome.report.unfinished.len(),
            trace.len()
        );
        assert!(outcome.report.service.cold_starts > 0, "tail must park");
        assert!(outcome.report.service.parked_us_sum > 0);
        // The tail lanes bill strictly less than their always-on floors in
        // the baseline run (parked time is unbilled).
        let tail = |r: &SimReport| r.billed_by_model[1] + r.billed_by_model[2];
        assert!(
            tail(&outcome.report) < tail(&base.report),
            "parked tail {} must undercut always-on tail {}",
            tail(&outcome.report),
            tail(&base.report)
        );
    }

    #[test]
    fn a_zero_threshold_runtime_is_bit_identical_to_no_runtime() {
        // Threshold 0 classifies no lane as sparse: every policy slot is
        // `None`, and the whole facade must reproduce the plain run bit for
        // bit — the serverless lane is pay-for-use.
        let options = ServingOptions::default()
            .budget(6.0)
            .replan_every(500_000)
            .provisioning_delay(200_000);
        let trace = MixedTraceSpec {
            arrival: ArrivalProcess::Poisson { rate_qps: 150.0 },
            mix: mix(),
            duration_s: 3.0,
            seed: 31,
        }
        .generate();
        let demands = [60.0, 45.0, 45.0];

        let mut plain = service(options);
        plain.warm_monitors(&mix(), 3000, 7);
        let spec = plain.plan_initial(&demands).unwrap();
        let services = plain.service_specs(&paper_calibration());
        let a = plain.run(&spec, &services, &trace);

        let mut gated = service(options).with_serverless(tail_runtime(0.0));
        gated.warm_monitors(&mix(), 3000, 7);
        let spec2 = gated.plan_initial(&demands).unwrap();
        assert_eq!(spec.pools.len(), spec2.pools.len());
        for (p, q) in spec.pools.iter().zip(&spec2.pools) {
            assert_eq!(p.config.counts(), q.config.counts());
        }
        let b = gated.run(&spec2, &services, &trace);
        assert_eq!(a.report.records, b.report.records);
        assert_eq!(a.report.unfinished, b.report.unfinished);
        assert_eq!(
            a.report.billed_dollars.to_bits(),
            b.report.billed_dollars.to_bits()
        );
        assert_eq!(a.report.service, b.report.service);
        assert_eq!(a.replans, b.replans);
    }

    #[test]
    #[should_panic(expected = "does not support markets")]
    fn sharded_serving_rejects_markets() {
        use kairos_models::market::ConstantMarket;
        let catalog = OfferingCatalog::on_demand(&pool());
        let market = Arc::new(ConstantMarket::from_pool(&pool()));
        let mut s = InferenceService::with_market(
            catalog,
            market,
            &three_models(),
            Some(paper_calibration()),
            ServingOptions::default().budget(6.0),
        );
        let services = s.service_specs(&paper_calibration());
        let spec = s.plan_initial(&[10.0, 10.0, 10.0]).unwrap();
        let trace = MixedTraceSpec {
            arrival: ArrivalProcess::Poisson { rate_qps: 30.0 },
            mix: mix(),
            duration_s: 1.0,
            seed: 1,
        }
        .generate();
        s.run_sharded(&spec, &services, &trace);
    }
}

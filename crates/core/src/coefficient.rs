//! Heterogeneity coefficients (paper Definition 1).
//!
//! One wall-clock second on a GPU is worth more than one second on a cheap
//! CPU, so Kairos weights the resource usage of instance type `j` by a
//! coefficient `C_j ∈ (0, 1]`: the ratio between the *largest* query's latency
//! on the base type and on type `j`.  The base type gets `C = 1`; slower
//! types get proportionally smaller coefficients.  The paper's example: if the
//! largest query takes 100 ms on `I1` (base), 200 ms on `I2` and 500 ms on
//! `I3`, then `C = (1, 0.5, 0.2)`.

/// Computes heterogeneity coefficients from the latency of the largest query
/// on every instance type.
///
/// * `largest_query_latency_ms[j]` — latency of the largest admissible query
///   on type `j`.
/// * `base_index` — which entry is the base type.
///
/// Returns one coefficient per type, with the base pinned to exactly 1.0 and
/// every other coefficient clamped into `(0, 1]`.
///
/// # Panics
/// Panics if the slice is empty, the base index is out of range, or any
/// latency is not strictly positive.
pub fn heterogeneity_coefficients(largest_query_latency_ms: &[f64], base_index: usize) -> Vec<f64> {
    assert!(
        !largest_query_latency_ms.is_empty(),
        "need at least one instance type"
    );
    assert!(
        base_index < largest_query_latency_ms.len(),
        "base index out of range"
    );
    for (i, &l) in largest_query_latency_ms.iter().enumerate() {
        assert!(
            l.is_finite() && l > 0.0,
            "latency of type {i} must be positive (got {l})"
        );
    }
    let base = largest_query_latency_ms[base_index];
    largest_query_latency_ms
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            if i == base_index {
                1.0
            } else {
                (base / l).clamp(f64::MIN_POSITIVE, 1.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // 100 ms on base, 200 ms and 500 ms on the others -> (1, 0.5, 0.2).
        let c = heterogeneity_coefficients(&[100.0, 200.0, 500.0], 0);
        assert_eq!(c, vec![1.0, 0.5, 0.2]);
    }

    #[test]
    fn base_is_always_exactly_one() {
        let c = heterogeneity_coefficients(&[300.0, 100.0, 600.0], 1);
        assert_eq!(c[1], 1.0);
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coefficients_clamped_to_at_most_one() {
        // A type faster than the base on the largest query would produce a
        // coefficient above 1; the definition restricts C to (0, 1].
        let c = heterogeneity_coefficients(&[100.0, 50.0], 0);
        assert_eq!(c, vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_latency() {
        heterogeneity_coefficients(&[100.0, 0.0], 0);
    }

    #[test]
    #[should_panic(expected = "base index")]
    fn rejects_bad_base_index() {
        heterogeneity_coefficients(&[100.0], 3);
    }
}

//! The Kairos query-distribution mechanism (paper Sec. 5.1).
//!
//! At every scheduling instant the central controller matches queued queries
//! to instances by solving a min-cost bipartite matching over the
//! heterogeneity-weighted completion-time matrix, with QoS-violating pairs
//! penalized (Eq. 4–8).  Latencies are learned online: the scheduler starts
//! with (optional) priors, records every completion, and quickly converges to
//! a lookup table (Sec. 5.1 "Remarks").
//!
//! This module implements that policy against the [`kairos_sim::Scheduler`]
//! interface so it can be dropped into the discrete-event engine alongside the
//! baselines.

use crate::coefficient::heterogeneity_coefficients;
use crate::lmatrix::{build_matrices, InstanceColumn, QueryRow, DEFAULT_XI};
use kairos_assignment::{jv::solve_jv, Assignment};
use kairos_models::{
    latency::LatencyTable, mlmodel::ModelKind, predictor::PredictorBank, MAX_BATCH_SIZE,
};
use kairos_sim::{Dispatch, InstanceView, Scheduler, SchedulingContext};
use kairos_workload::ModelId;
use std::collections::HashMap;
use std::sync::Arc;

/// The Kairos matching-based query distributor.
#[derive(Debug, Clone)]
pub struct KairosScheduler {
    /// Online latency predictors, one per instance type.
    predictors: PredictorBank,
    /// Interned pool type names indexed by type index (from
    /// [`Scheduler::bind_types`]), so completion-time learning resolves the
    /// predictor without receiving a string from the engine.
    type_names: Vec<Arc<str>>,
    /// Noise-safeguard factor ξ applied to the QoS target (default 0.98).
    xi: f64,
    /// Largest batch size used to compute heterogeneity coefficients.
    reference_batch: u32,
    /// Number of matching rounds performed (exposed for tests/diagnostics).
    rounds: u64,
}

impl Default for KairosScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl KairosScheduler {
    /// Creates a scheduler with no prior latency knowledge: it learns latency
    /// entirely online, as in the paper's evaluation.
    pub fn new() -> Self {
        Self {
            predictors: PredictorBank::new(),
            type_names: Vec::new(),
            xi: DEFAULT_XI,
            reference_batch: MAX_BATCH_SIZE,
            rounds: 0,
        }
    }

    /// Creates a scheduler whose predictors are seeded from a latency table
    /// (e.g. profiles measured for a sibling deployment).  Kairos does not
    /// need this, but it is useful for ablations isolating the effect of the
    /// online-learning warm-up.
    pub fn with_priors(model: ModelKind, table: &LatencyTable) -> Self {
        let mut scheduler = Self::new();
        for (m, name, profile) in table.iter() {
            if m == model {
                // Seed the predictor with two synthetic observations so the
                // linear fit starts from the prior profile.
                scheduler.predictors.observe(name, 1, profile.latency_ms(1));
                scheduler.predictors.observe(
                    name,
                    MAX_BATCH_SIZE,
                    profile.latency_ms(MAX_BATCH_SIZE),
                );
            }
        }
        scheduler
    }

    /// Overrides the ξ noise-safeguard factor.
    pub fn with_xi(mut self, xi: f64) -> Self {
        assert!(xi > 0.0 && xi <= 1.0, "xi must lie in (0, 1]");
        self.xi = xi;
        self
    }

    /// Number of matching rounds performed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Read access to the online predictors (for diagnostics and tests).
    pub fn predictors(&self) -> &PredictorBank {
        &self.predictors
    }

    /// Computes the per-*type* heterogeneity coefficients from the current
    /// latency estimates, keyed by (interned) type name.
    fn coefficients(&self, instances: &[&InstanceView]) -> HashMap<Arc<str>, f64> {
        // Collect the distinct types present, keeping the base type's position.
        let mut names: Vec<Arc<str>> = Vec::new();
        let mut base_pos = 0usize;
        for inst in instances {
            if !names.contains(&inst.type_name) {
                if inst.is_base {
                    base_pos = names.len();
                }
                names.push(inst.type_name.clone());
            }
        }
        let latencies: Vec<f64> = names
            .iter()
            .map(|n| self.predictors.predict(n, self.reference_batch).max(1e-6))
            .collect();
        let coeffs = heterogeneity_coefficients(&latencies, base_pos);
        names.into_iter().zip(coeffs).collect()
    }
}

impl Scheduler for KairosScheduler {
    fn name(&self) -> &'static str {
        "kairos"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        // Draining and retired instances take no new work: exclude them from
        // the matching entirely (the engine would reject such dispatches).
        let instances: Vec<&InstanceView> = ctx.instances.iter().filter(|i| i.accepting).collect();
        if ctx.queued.is_empty() || instances.is_empty() {
            return Vec::new();
        }
        self.rounds += 1;
        let qos_ms = ctx.qos_us as f64 / 1000.0;
        let coeffs = self.coefficients(&instances);

        // Query rows: batch size and accumulated wait (W_i).
        let rows: Vec<QueryRow> = ctx
            .queued
            .iter()
            .map(|q| QueryRow {
                batch_size: q.batch_size,
                waited_ms: q.waiting_time_us(ctx.now_us) as f64 / 1000.0,
            })
            .collect();

        // Instance columns: remaining busy time, coefficient and predicted
        // service latency for every queued query.
        let columns: Vec<InstanceColumn> = instances
            .iter()
            .map(|inst| InstanceColumn {
                remaining_ms: inst.remaining_us(ctx.now_us) as f64 / 1000.0,
                coefficient: *coeffs.get(&inst.type_name).unwrap_or(&1.0),
                predicted_service_ms: rows
                    .iter()
                    .map(|r| {
                        self.predictors
                            .predict(&inst.type_name, r.batch_size)
                            .max(1e-3)
                    })
                    .collect(),
            })
            .collect();

        let mut matrices = build_matrices(&rows, &columns, qos_ms, self.xi);

        // Cold-start optimism: while an instance type has not produced enough
        // completions for a latency fit, its predictions are placeholder
        // values, so a "predicted violation" there carries no information.
        // Treating such pairs as feasible lets queries flow immediately, which
        // is what makes the online learning converge within the first few
        // queries instead of stalling the queue (Sec. 5.1 "Kairos starts with
        // a linear model but does not rely on the model accuracy").
        let type_fitted: Vec<bool> = instances
            .iter()
            .map(|inst| {
                self.predictors
                    .get(&inst.type_name)
                    .map(|p| p.has_fit())
                    .unwrap_or(false)
            })
            .collect();
        for i in 0..rows.len() {
            for j in 0..columns.len() {
                if !matrices.feasible[i][j] && !type_fitted[j] {
                    matrices.feasible[i][j] = true;
                    matrices.cost.set(
                        i,
                        j,
                        columns[j].coefficient * matrices.completion_ms.get(i, j),
                    );
                }
            }
        }

        let assignment: Assignment = match solve_jv(&matrices.cost) {
            Ok(a) => a,
            Err(_) => return Vec::new(),
        };

        let mut plan = Vec::new();
        for (query_index, instance_index) in assignment.pairs() {
            let feasible = matrices.feasible[query_index][instance_index];
            let waited_ms = rows[query_index].waited_ms;
            // Dispatch feasible pairs immediately.  A pair predicted to
            // violate QoS is held back for the next round while the query
            // still has a chance of meeting its target elsewhere; once the
            // query is doomed anyway (its wait alone exceeds the target) it is
            // dispatched regardless so the queue cannot grow without bound.
            if feasible || waited_ms >= qos_ms {
                plan.push(Dispatch {
                    query_index,
                    instance_index: instances[instance_index].instance_index,
                });
            }
        }
        plan
    }

    fn bind_types(&mut self, type_names: &[Arc<str>]) {
        self.type_names = type_names.to_vec();
    }

    fn on_completion(
        &mut self,
        type_index: usize,
        _model: ModelId,
        batch_size: u32,
        service_ms: f64,
    ) {
        // A KairosScheduler instance serves one model's queries (the
        // multi-model facade routes completions per model), so the model tag
        // does not partition the predictors here.
        if service_ms <= 0.0 {
            return;
        }
        if let Some(name) = self.type_names.get(type_index) {
            self.predictors.observe(name, batch_size, service_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2, Config, PoolSpec};
    use kairos_sim::{engine::run_trace, idle_order, InstanceView, SimulationOptions};
    use kairos_workload::{Query, TraceSpec};

    fn view(
        idx: usize,
        type_index: usize,
        name: &str,
        is_base: bool,
        free_at: u64,
    ) -> InstanceView {
        InstanceView {
            instance_index: idx,
            type_index,
            type_name: name.into(),
            model: ModelId::DEFAULT,
            is_base,
            accepting: true,
            free_at_us: free_at,
            backlog: usize::from(free_at > 0),
        }
    }

    /// Two-instance, four-query scenario shaped after Fig. 5: the large
    /// high-speedup queries must land on the GPU and the small ones on the
    /// CPU, which FCFS would not do.
    #[test]
    fn prioritizes_high_speedup_queries_on_powerful_instances() {
        let mut kairos = KairosScheduler::with_priors(ModelKind::Wnd, &paper_calibration());
        let queued = vec![
            Query::new(0, 900, 0), // large: only the GPU can meet QoS
            Query::new(1, 30, 0),  // small: fine anywhere
        ];
        let instances = vec![
            view(0, 2, "r5n.large", false, 0),
            view(1, 0, "g4dn.xlarge", true, 0),
        ];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 25_000,
            qos_by_model: &[],
        };
        let plan = kairos.schedule(&ctx);
        assert_eq!(plan.len(), 2);
        let large = plan.iter().find(|d| d.query_index == 0).unwrap();
        let small = plan.iter().find(|d| d.query_index == 1).unwrap();
        assert_eq!(large.instance_index, 1, "large query must go to the GPU");
        assert_eq!(
            small.instance_index, 0,
            "small query should use the cheap CPU"
        );
    }

    #[test]
    fn holds_back_queries_that_would_violate_qos_prematurely() {
        let mut kairos = KairosScheduler::with_priors(ModelKind::Wnd, &paper_calibration());
        // Only a slow CPU is available and the query is large: dispatching it
        // would burn the instance for a guaranteed violation, so Kairos waits.
        let queued = vec![Query::new(0, 900, 0)];
        let instances = vec![view(0, 2, "r5n.large", false, 0)];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 25_000,
            qos_by_model: &[],
        };
        assert!(kairos.schedule(&ctx).is_empty());

        // Once the query is already doomed (waited past the target), it is
        // dispatched anyway to clear the queue.
        let doomed = vec![Query::new(0, 900, 0)];
        let ctx = SchedulingContext {
            now_us: 30_000,
            queued: &doomed,
            instances: &instances,
            idle: &idle,
            qos_us: 25_000,
            qos_by_model: &[],
        };
        assert_eq!(kairos.schedule(&ctx).len(), 1);
    }

    #[test]
    fn learns_latency_online_from_completions() {
        let mut kairos = KairosScheduler::new();
        assert_eq!(kairos.predictors().total_observations(), 0);
        kairos.bind_types(&["g4dn.xlarge".into(), "r5n.large".into()]);
        kairos.on_completion(0, ModelId::DEFAULT, 100, 5.6);
        kairos.on_completion(0, ModelId::DEFAULT, 500, 12.0);
        // An unbound type index is ignored rather than misattributed.
        kairos.on_completion(7, ModelId::DEFAULT, 100, 3.0);
        assert_eq!(kairos.predictors().total_observations(), 2);
        assert!(kairos.predictors().get("g4dn.xlarge").unwrap().has_fit());
    }

    #[test]
    fn end_to_end_simulation_meets_qos_under_light_load() {
        // No priors: the first few large queries can be mispredicted while the
        // scheduler learns latency online (the paper includes this warm-up
        // overhead too), so the tolerance is looser than the steady-state 1 %.
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = kairos_sim::ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace = TraceSpec::production(60.0, 2.0, 15).generate();
        let config = Config::new(vec![1, 0, 2, 0]);
        let mut kairos = KairosScheduler::new();
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut kairos,
            &SimulationOptions::default(),
        );
        assert!(
            report.meets_qos(0.06),
            "violation fraction {}",
            report.violation_fraction()
        );
        assert!(report.completed() > 0);

        // With latency priors the warm-up disappears and the strict
        // 99th-percentile target is met.
        let mut seeded = KairosScheduler::with_priors(ModelKind::Wnd, &paper_calibration());
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut seeded,
            &SimulationOptions::default(),
        );
        assert!(
            report.meets_qos(0.01),
            "violation fraction {}",
            report.violation_fraction()
        );
    }

    #[test]
    fn outperforms_fcfs_on_a_mixed_load() {
        // Under a load that saturates the pool, Kairos's matching should yield
        // at least as much goodput as naive FCFS on the same configuration.
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = kairos_sim::ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace = TraceSpec::production(250.0, 1.5, 13).generate();
        let config = Config::new(vec![1, 0, 3, 0]);

        let mut kairos = KairosScheduler::with_priors(ModelKind::Wnd, &paper_calibration());
        let kairos_report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut kairos,
            &SimulationOptions::default(),
        );
        let mut fcfs = kairos_sim::FcfsScheduler::new();
        let fcfs_report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        );

        assert!(
            kairos_report.goodput_qps() >= fcfs_report.goodput_qps() * 0.95,
            "kairos {} vs fcfs {}",
            kairos_report.goodput_qps(),
            fcfs_report.goodput_qps()
        );
    }

    #[test]
    #[should_panic(expected = "xi")]
    fn with_xi_rejects_out_of_range() {
        let _ = KairosScheduler::new().with_xi(0.0);
    }
}

//! Dense rectangular cost matrices used as input to the assignment solvers.
//!
//! The Kairos query-distribution problem (paper Sec. 5.1) builds an `m x n`
//! matrix whose entry `(i, j)` is the heterogeneity-weighted completion time
//! `C_j * L_{i,j}` of query `i` on instance `j`.  The matrix is generally
//! rectangular: there is no guarantee that the number of queued queries equals
//! the number of instances.

use std::fmt;

/// A dense, row-major rectangular matrix of `f64` costs.
///
/// Invariants enforced by the constructors:
/// * `rows * cols == data.len()`
/// * every entry is finite (no NaN / infinity) — infeasible pairs must be
///   expressed with a large *finite* penalty (the paper uses `10 * T_qos`,
///   Eq. 8) so that the matching problem always has a feasible solution.
#[derive(Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors produced while building a [`CostMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix would have zero rows or zero columns.
    Empty,
    /// The provided buffer length does not equal `rows * cols`.
    ShapeMismatch {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// An entry was NaN or infinite.
    NonFinite {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Empty => write!(f, "cost matrix must have at least one row and column"),
            MatrixError::ShapeMismatch { rows, cols, len } => write!(
                f,
                "buffer of length {len} cannot be reshaped into a {rows}x{cols} matrix"
            ),
            MatrixError::NonFinite { row, col } => {
                write!(f, "cost matrix entry ({row}, {col}) is not finite")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

impl CostMatrix {
    /// Creates a matrix from a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        if rows == 0 || cols == 0 {
            return Err(MatrixError::Empty);
        }
        if data.len() != rows * cols {
            return Err(MatrixError::ShapeMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        for (idx, value) in data.iter().enumerate() {
            if !value.is_finite() {
                return Err(MatrixError::NonFinite {
                    row: idx / cols,
                    col: idx % cols,
                });
            }
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F>(rows: usize, cols: usize, mut f: F) -> Result<Self, MatrixError>
    where
        F: FnMut(usize, usize) -> f64,
    {
        if rows == 0 || cols == 0 {
            return Err(MatrixError::Empty);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Result<Self, MatrixError> {
        Self::from_vec(rows, cols, vec![value; rows * cols])
    }

    /// Number of rows (queries, in Kairos).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (instances, in Kairos).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds or `value` is not finite.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        assert!(value.is_finite(), "cost entries must be finite");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns one row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> CostMatrix {
        let mut data = vec![0.0; self.data.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        CostMatrix {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }

    /// Returns the smallest entry of the matrix.
    pub fn min_entry(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Returns the largest entry of the matrix.
    pub fn max_entry(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Pads the matrix into a `size x size` square by appending rows/columns
    /// filled with `fill`.  Used by solvers that only operate on square
    /// matrices (e.g. the Hungarian implementation).
    pub fn padded_square(&self, fill: f64) -> CostMatrix {
        let size = self.rows.max(self.cols);
        let mut data = vec![fill; size * size];
        for r in 0..self.rows {
            for c in 0..self.cols {
                data[r * size + c] = self.data[r * self.cols + c];
            }
        }
        CostMatrix {
            rows: size,
            cols: size,
            data,
        }
    }
}

impl fmt::Debug for CostMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CostMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_valid() {
        let m = CostMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn from_vec_rejects_empty() {
        assert_eq!(
            CostMatrix::from_vec(0, 3, vec![]).unwrap_err(),
            MatrixError::Empty
        );
        assert_eq!(
            CostMatrix::from_vec(3, 0, vec![]).unwrap_err(),
            MatrixError::Empty
        );
    }

    #[test]
    fn from_vec_rejects_shape_mismatch() {
        let err = CostMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(
            err,
            MatrixError::ShapeMismatch {
                rows: 2,
                cols: 2,
                len: 3
            }
        );
    }

    #[test]
    fn from_vec_rejects_nan_and_infinity() {
        let err = CostMatrix::from_vec(1, 2, vec![1.0, f64::NAN]).unwrap_err();
        assert_eq!(err, MatrixError::NonFinite { row: 0, col: 1 });
        let err = CostMatrix::from_vec(2, 1, vec![f64::INFINITY, 1.0]).unwrap_err();
        assert_eq!(err, MatrixError::NonFinite { row: 0, col: 0 });
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = CostMatrix::from_fn(3, 2, |r, c| (r * 10 + c) as f64).unwrap();
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = CostMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64).unwrap();
        let t = m.transposed();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn min_max_entries() {
        let m = CostMatrix::from_vec(2, 2, vec![4.0, -1.0, 7.5, 0.0]).unwrap();
        assert_eq!(m.min_entry(), -1.0);
        assert_eq!(m.max_entry(), 7.5);
    }

    #[test]
    fn padded_square_keeps_original_entries() {
        let m = CostMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let p = m.padded_square(0.0);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 3);
        assert_eq!(p.get(0, 2), 3.0);
        assert_eq!(p.get(2, 0), 0.0);
        assert_eq!(p.get(2, 2), 0.0);
    }

    #[test]
    fn set_updates_entry() {
        let mut m = CostMatrix::filled(2, 2, 1.0).unwrap();
        m.set(1, 1, 9.0);
        assert_eq!(m.get(1, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn set_rejects_nan() {
        let mut m = CostMatrix::filled(2, 2, 1.0).unwrap();
        m.set(0, 0, f64::NAN);
    }
}

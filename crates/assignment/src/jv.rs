//! Jonker–Volgenant shortest-augmenting-path solver for the rectangular
//! linear-sum assignment problem.
//!
//! This is the algorithm Kairos uses to solve its query-distribution
//! optimization (paper Sec. 5.1 and Sec. 6: "Kairos solves this problem using
//! the Jonker-Volgenant algorithm which is a variant of the widely used
//! Hungarian algorithm, but more efficient in practice").  The implementation
//! follows the modified Jonker–Volgenant formulation without initialization
//! described by Crouse, *"On implementing 2D rectangular assignment
//! algorithms"* (IEEE TAES 2016) — the same formulation used by SciPy's
//! `linear_sum_assignment`, which the paper's reference implementation calls
//! through `scipy.optimize`.
//!
//! Complexity: `O(r^2 * c)` for an `r x c` matrix with `r <= c` (the matrix is
//! transposed internally when `r > c`), which is far below a millisecond for
//! the 20-query x 20-instance matchings the paper measures.

use crate::matrix::CostMatrix;
use crate::solution::{Assignment, AssignmentError, AssignmentSolver};

/// Exact rectangular LAP solver (shortest augmenting paths with dual updates).
#[derive(Debug, Default, Clone, Copy)]
pub struct JonkerVolgenantSolver;

impl JonkerVolgenantSolver {
    /// Creates a new solver.
    pub fn new() -> Self {
        Self
    }
}

impl AssignmentSolver for JonkerVolgenantSolver {
    fn solve(&self, matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
        solve_jv(matrix)
    }

    fn name(&self) -> &'static str {
        "jonker-volgenant"
    }
}

/// Solves the rectangular min-cost assignment problem and returns an optimal
/// matching of size `min(rows, cols)`.
pub fn solve_jv(matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
    // The core routine requires rows <= cols; transpose otherwise.
    if matrix.rows() <= matrix.cols() {
        let col4row = solve_inner(matrix)?;
        let mapping = col4row.into_iter().map(Some).collect();
        Ok(Assignment::from_row_mapping(matrix, mapping))
    } else {
        let transposed = matrix.transposed();
        let col4row = solve_inner(&transposed)?;
        // `col4row[j]` is, in original terms, the row matched to column j.
        let mut row_to_col = vec![None; matrix.rows()];
        for (col, row) in col4row.into_iter().enumerate() {
            row_to_col[row] = Some(col);
        }
        Ok(Assignment::from_row_mapping(matrix, row_to_col))
    }
}

/// Core shortest-augmenting-path loop.  Requires `rows <= cols`; returns
/// `col4row` where `col4row[i]` is the column assigned to row `i`.
fn solve_inner(cost: &CostMatrix) -> Result<Vec<usize>, AssignmentError> {
    let nr = cost.rows();
    let nc = cost.cols();
    debug_assert!(nr <= nc);

    // Dual variables.
    let mut u = vec![0.0f64; nr];
    let mut v = vec![0.0f64; nc];

    // Matching state.  usize::MAX denotes "unassigned".
    const UNASSIGNED: usize = usize::MAX;
    let mut col4row = vec![UNASSIGNED; nr];
    let mut row4col = vec![UNASSIGNED; nc];

    // Scratch buffers reused across augmentations.
    let mut shortest_path_costs = vec![f64::INFINITY; nc];
    let mut path = vec![UNASSIGNED; nc];
    let mut sr = vec![false; nr];
    let mut sc = vec![false; nc];
    let mut remaining: Vec<usize> = Vec::with_capacity(nc);

    for cur_row in 0..nr {
        // Reset per-augmentation state.
        for x in shortest_path_costs.iter_mut() {
            *x = f64::INFINITY;
        }
        for x in sr.iter_mut() {
            *x = false;
        }
        for x in sc.iter_mut() {
            *x = false;
        }
        remaining.clear();
        remaining.extend(0..nc);

        let mut min_val = 0.0f64;
        let mut i = cur_row;
        let mut sink = UNASSIGNED;

        while sink == UNASSIGNED {
            sr[i] = true;
            let mut index = UNASSIGNED;
            let mut lowest = f64::INFINITY;
            let row_slice = cost.row(i);

            for (it, &j) in remaining.iter().enumerate() {
                let r = min_val + row_slice[j] - u[i] - v[j];
                if r < shortest_path_costs[j] {
                    path[j] = i;
                    shortest_path_costs[j] = r;
                }
                // Prefer unassigned columns on ties so the augmenting path
                // terminates as early as possible.
                if shortest_path_costs[j] < lowest
                    || (shortest_path_costs[j] == lowest && row4col[j] == UNASSIGNED)
                {
                    lowest = shortest_path_costs[j];
                    index = it;
                }
            }

            min_val = lowest;
            if !min_val.is_finite() || index == UNASSIGNED {
                // Cannot happen with finite cost matrices, but guard anyway.
                return Err(AssignmentError::Infeasible);
            }
            let j = remaining[index];
            if row4col[j] == UNASSIGNED {
                sink = j;
            } else {
                i = row4col[j];
            }
            sc[j] = true;
            remaining.swap_remove(index);
        }

        // Update dual variables.
        u[cur_row] += min_val;
        for irow in 0..nr {
            if irow != cur_row && sr[irow] {
                u[irow] += min_val - shortest_path_costs[col4row[irow]];
            }
        }
        for jcol in 0..nc {
            if sc[jcol] {
                v[jcol] -= min_val - shortest_path_costs[jcol];
            }
        }

        // Augment along the alternating path ending at `sink`.
        let mut j = sink;
        loop {
            let i = path[j];
            row4col[j] = i;
            std::mem::swap(&mut col4row[i], &mut j);
            if i == cur_row {
                break;
            }
        }
    }

    Ok(col4row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::solve_brute_force;

    fn solve(rows: usize, cols: usize, data: Vec<f64>) -> Assignment {
        let m = CostMatrix::from_vec(rows, cols, data).unwrap();
        solve_jv(&m).unwrap()
    }

    #[test]
    fn square_3x3_known_optimum() {
        // Classic example: optimal cost is 5 (0->1, 1->0, 2->2) -> 1 + 2 + 2.
        let a = solve(3, 3, vec![4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0]);
        assert_eq!(a.matched_count(), 3);
        assert!((a.total_cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn identity_preference() {
        // Diagonal is cheapest: the solver must pick it.
        let a = solve(3, 3, vec![0.0, 9.0, 9.0, 9.0, 0.0, 9.0, 9.0, 9.0, 0.0]);
        assert_eq!(a.row_to_col, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(a.total_cost, 0.0);
    }

    #[test]
    fn wide_matrix_fewer_rows_than_cols() {
        // 2 queries, 4 instances: both queries must be matched.
        let a = solve(2, 4, vec![10.0, 2.0, 8.0, 7.0, 3.0, 9.0, 9.0, 9.0]);
        assert_eq!(a.matched_count(), 2);
        assert!((a.total_cost - 5.0).abs() < 1e-9);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
    }

    #[test]
    fn tall_matrix_fewer_cols_than_rows() {
        // 4 queries, 2 instances: exactly two queries get served.
        let a = solve(4, 2, vec![5.0, 6.0, 1.0, 9.0, 9.0, 1.0, 4.0, 4.0]);
        assert_eq!(a.matched_count(), 2);
        assert!((a.total_cost - 2.0).abs() < 1e-9);
        assert!(a.is_valid_for(4, 2));
    }

    #[test]
    fn single_cell() {
        let a = solve(1, 1, vec![42.0]);
        assert_eq!(a.row_to_col, vec![Some(0)]);
        assert_eq!(a.total_cost, 42.0);
    }

    #[test]
    fn negative_costs_supported() {
        let a = solve(2, 2, vec![-5.0, 0.0, 0.0, -5.0]);
        assert!((a.total_cost - -10.0).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_small_matrices() {
        // Deterministic pseudo-random matrices via a simple LCG, so this test
        // does not need the rand crate.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 100.0
        };
        for rows in 1..=5usize {
            for cols in 1..=5usize {
                let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
                let m = CostMatrix::from_vec(rows, cols, data).unwrap();
                let jv = solve_jv(&m).unwrap();
                let brute = solve_brute_force(&m).unwrap();
                assert!(
                    (jv.total_cost - brute.total_cost).abs() < 1e-6,
                    "JV {} vs brute {} on {rows}x{cols}",
                    jv.total_cost,
                    brute.total_cost
                );
                assert!(jv.is_valid_for(rows, cols));
            }
        }
    }

    #[test]
    fn ties_resolve_to_a_valid_matching() {
        let a = solve(3, 3, vec![1.0; 9]);
        assert_eq!(a.matched_count(), 3);
        assert!((a.total_cost - 3.0).abs() < 1e-9);
        assert!(a.is_valid_for(3, 3));
    }
}

//! Brute-force reference solver (exhaustive permutation search).
//!
//! Exponential — only intended for validating the exact solvers on small
//! matrices in tests and property-based checks.

use crate::matrix::CostMatrix;
use crate::solution::{Assignment, AssignmentError, AssignmentSolver};

/// Exhaustive reference solver; panics on matrices larger than 10 on the
/// smaller side to avoid accidental exponential blow-ups in benchmarks.
#[derive(Debug, Default, Clone, Copy)]
pub struct BruteForceSolver;

impl BruteForceSolver {
    /// Creates a new solver.
    pub fn new() -> Self {
        Self
    }
}

impl AssignmentSolver for BruteForceSolver {
    fn solve(&self, matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
        solve_brute_force(matrix)
    }

    fn name(&self) -> &'static str {
        "brute-force"
    }
}

/// Finds the optimal rectangular assignment by trying every injective mapping
/// from the smaller side into the larger side.
pub fn solve_brute_force(matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
    let rows = matrix.rows();
    let cols = matrix.cols();
    let small = rows.min(cols);
    assert!(
        small <= 10,
        "brute-force solver limited to min-dimension <= 10 (got {small})"
    );

    // Work on the orientation where rows <= cols so we enumerate injections
    // rows -> cols.
    let transposed;
    let (m, flipped) = if rows <= cols {
        (matrix, false)
    } else {
        transposed = matrix.transposed();
        (&transposed, true)
    };

    let nr = m.rows();
    let nc = m.cols();
    let mut best_cost = f64::INFINITY;
    let mut best: Vec<usize> = Vec::new();
    let mut current: Vec<usize> = Vec::with_capacity(nr);
    let mut used = vec![false; nc];

    fn recurse(
        m: &CostMatrix,
        row: usize,
        current: &mut Vec<usize>,
        used: &mut [bool],
        running: f64,
        best_cost: &mut f64,
        best: &mut Vec<usize>,
    ) {
        if row == m.rows() {
            if running < *best_cost {
                *best_cost = running;
                *best = current.clone();
            }
            return;
        }
        for col in 0..m.cols() {
            if !used[col] {
                used[col] = true;
                current.push(col);
                recurse(
                    m,
                    row + 1,
                    current,
                    used,
                    running + m.get(row, col),
                    best_cost,
                    best,
                );
                current.pop();
                used[col] = false;
            }
        }
    }

    recurse(
        m,
        0,
        &mut current,
        &mut used,
        0.0,
        &mut best_cost,
        &mut best,
    );

    if best.len() != nr {
        return Err(AssignmentError::Infeasible);
    }

    let row_to_col = if !flipped {
        best.into_iter().map(Some).collect()
    } else {
        // `best[j]` maps transposed-row j (original column j) to an original row.
        let mut mapping = vec![None; matrix.rows()];
        for (col, row) in best.into_iter().enumerate() {
            mapping[row] = Some(col);
        }
        mapping
    };

    Ok(Assignment::from_row_mapping(matrix, row_to_col))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_1x1() {
        let m = CostMatrix::from_vec(1, 1, vec![3.0]).unwrap();
        let a = solve_brute_force(&m).unwrap();
        assert_eq!(a.total_cost, 3.0);
    }

    #[test]
    fn known_2x2() {
        let m = CostMatrix::from_vec(2, 2, vec![1.0, 10.0, 10.0, 1.0]).unwrap();
        let a = solve_brute_force(&m).unwrap();
        assert_eq!(a.total_cost, 2.0);
        assert_eq!(a.row_to_col, vec![Some(0), Some(1)]);
    }

    #[test]
    fn rectangular_tall_matches_all_columns() {
        let m = CostMatrix::from_vec(3, 2, vec![9.0, 9.0, 1.0, 9.0, 9.0, 1.0]).unwrap();
        let a = solve_brute_force(&m).unwrap();
        assert_eq!(a.matched_count(), 2);
        assert_eq!(a.total_cost, 2.0);
        assert!(a.is_valid_for(3, 2));
    }

    #[test]
    #[should_panic(expected = "brute-force")]
    fn rejects_large_matrices() {
        let m = CostMatrix::filled(11, 11, 1.0).unwrap();
        let _ = solve_brute_force(&m);
    }
}

//! # kairos-assignment
//!
//! Rectangular linear-sum assignment (min-cost bipartite matching) solvers for
//! the Kairos inference-serving framework (HPDC'23).
//!
//! Kairos distributes inference queries across a heterogeneous pool of cloud
//! instances by solving, at every scheduling instant, a min-cost bipartite
//! matching between queued queries and available instances (paper Sec. 5.1,
//! Eq. 4–8).  The reference implementation delegates this to SciPy's
//! `linear_sum_assignment`; this crate provides equivalent, dependency-free
//! Rust solvers:
//!
//! * [`JonkerVolgenantSolver`] — the production solver (shortest augmenting
//!   paths, the algorithm named in the paper), exact and `O(r^2 c)`.
//! * [`HungarianSolver`] — classic Kuhn–Munkres `O(n^3)` solver, used as a
//!   cross-check and ablation baseline.
//! * [`AuctionSolver`] — Bertsekas auction algorithm with ε-scaling, a second
//!   ablation point.
//! * [`GreedySolver`] — non-optimal cheapest-edge heuristic, the "naive"
//!   strawman of Fig. 5.
//! * [`BruteForceSolver`] — exhaustive reference for tests.
//!
//! ```
//! use kairos_assignment::{CostMatrix, solve, JonkerVolgenantSolver, AssignmentSolver};
//!
//! // 2 queries x 3 instances: entry (i, j) is the weighted completion time.
//! let costs = CostMatrix::from_vec(2, 3, vec![
//!     4.0, 1.5, 9.0,
//!     2.0, 8.0, 3.0,
//! ]).unwrap();
//! let plan = solve(&costs).unwrap();
//! assert_eq!(plan.matched_count(), 2);
//! assert_eq!(plan.row_to_col, vec![Some(1), Some(0)]);
//!
//! // Solvers are also available behind a common trait for ablations.
//! let jv = JonkerVolgenantSolver::new();
//! assert_eq!(jv.solve(&costs).unwrap().total_cost, plan.total_cost);
//! ```

#![warn(missing_docs)]

pub mod auction;
pub mod brute;
pub mod greedy;
pub mod hungarian;
pub mod jv;
pub mod matrix;
pub mod solution;

pub use auction::AuctionSolver;
pub use brute::BruteForceSolver;
pub use greedy::GreedySolver;
pub use hungarian::HungarianSolver;
pub use jv::JonkerVolgenantSolver;
pub use matrix::{CostMatrix, MatrixError};
pub use solution::{Assignment, AssignmentError, AssignmentSolver};

/// Solves a rectangular min-cost assignment with the default (Jonker–Volgenant)
/// solver.  This is the entry point used by the Kairos query distributor.
pub fn solve(matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
    jv::solve_jv(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_uses_exact_solver() {
        let m = CostMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 100.0]).unwrap();
        let a = solve(&m).unwrap();
        assert!((a.total_cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_solvers_report_names() {
        let solvers: Vec<Box<dyn AssignmentSolver>> = vec![
            Box::new(JonkerVolgenantSolver::new()),
            Box::new(HungarianSolver::new()),
            Box::new(AuctionSolver::new()),
            Box::new(GreedySolver::new()),
            Box::new(BruteForceSolver::new()),
        ];
        let names: Vec<_> = solvers.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "jonker-volgenant",
                "hungarian",
                "auction",
                "greedy",
                "brute-force"
            ]
        );
    }
}

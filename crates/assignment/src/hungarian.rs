//! Hungarian (Kuhn–Munkres) algorithm with potentials, `O(n^3)`.
//!
//! The paper notes that Jonker–Volgenant is "a variant of the widely used
//! Hungarian algorithm, but more efficient in practice".  This module provides
//! the classic Hungarian algorithm both as an independent cross-check for the
//! JV solver (they must agree on the optimal cost) and as an ablation point in
//! the solver benchmarks.
//!
//! Rectangular matrices are handled by padding to a square with zero-cost
//! dummy entries; dummy matches are dropped from the reported assignment.

use crate::matrix::CostMatrix;
use crate::solution::{Assignment, AssignmentError, AssignmentSolver};

/// Exact `O(n^3)` Hungarian solver.
#[derive(Debug, Default, Clone, Copy)]
pub struct HungarianSolver;

impl HungarianSolver {
    /// Creates a new solver.
    pub fn new() -> Self {
        Self
    }
}

impl AssignmentSolver for HungarianSolver {
    fn solve(&self, matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
        solve_hungarian(matrix)
    }

    fn name(&self) -> &'static str {
        "hungarian"
    }
}

/// Solves the rectangular min-cost assignment problem with the Hungarian
/// algorithm (via square padding).
pub fn solve_hungarian(matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
    let rows = matrix.rows();
    let cols = matrix.cols();
    let square = matrix.padded_square(0.0);
    let n = square.rows();

    // Potentials-based Hungarian algorithm (1-indexed internally).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    // p[j] = row (1-indexed) assigned to column j; p[0] is scratch.
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = square.get(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            if !delta.is_finite() {
                return Err(AssignmentError::Infeasible);
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path recorded in `way`.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    // Extract the assignment, dropping dummy rows/columns introduced by the
    // padding.  A real row matched to a dummy column means the row is left
    // unmatched (only possible when rows > cols).
    let mut row_to_col = vec![None; rows];
    for (j, &i) in p.iter().enumerate().take(n + 1).skip(1) {
        if i == 0 {
            continue;
        }
        let (row, col) = (i - 1, j - 1);
        if row < rows && col < cols {
            row_to_col[row] = Some(col);
        }
    }

    let assignment = Assignment::from_row_mapping(matrix, row_to_col);
    debug_assert!(assignment.is_valid_for(rows, cols));
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::solve_brute_force;
    use crate::jv::solve_jv;

    #[test]
    fn square_known_optimum() {
        let m =
            CostMatrix::from_vec(3, 3, vec![4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0]).unwrap();
        let a = solve_hungarian(&m).unwrap();
        assert!((a.total_cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rectangular_wide() {
        let m = CostMatrix::from_vec(2, 4, vec![10.0, 2.0, 8.0, 7.0, 3.0, 9.0, 9.0, 9.0]).unwrap();
        let a = solve_hungarian(&m).unwrap();
        assert_eq!(a.matched_count(), 2);
        assert!((a.total_cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rectangular_tall() {
        let m = CostMatrix::from_vec(4, 2, vec![5.0, 6.0, 1.0, 9.0, 9.0, 1.0, 4.0, 4.0]).unwrap();
        let a = solve_hungarian(&m).unwrap();
        assert_eq!(a.matched_count(), 2);
        assert!((a.total_cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_jv_and_brute_force() {
        let mut state = 0x853C49E6748FEA9Bu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 50.0 - 10.0
        };
        for rows in 1..=5usize {
            for cols in 1..=5usize {
                let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
                let m = CostMatrix::from_vec(rows, cols, data).unwrap();
                let h = solve_hungarian(&m).unwrap();
                let j = solve_jv(&m).unwrap();
                let b = solve_brute_force(&m).unwrap();
                assert!((h.total_cost - b.total_cost).abs() < 1e-6);
                assert!((h.total_cost - j.total_cost).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn negative_costs() {
        let m = CostMatrix::from_vec(2, 2, vec![-3.0, 4.0, 4.0, -3.0]).unwrap();
        let a = solve_hungarian(&m).unwrap();
        assert!((a.total_cost - -6.0).abs() < 1e-9);
    }
}

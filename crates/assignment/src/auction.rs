//! Bertsekas auction algorithm with ε-scaling.
//!
//! Included as a design-choice ablation (DESIGN.md Sec. 7): the paper picks
//! Jonker–Volgenant for its practical efficiency; the auction algorithm is the
//! other classic family of LAP solvers and is benchmarked against JV in
//! `kairos-bench`.  The solution it returns is optimal to within
//! `min(rows, cols) * ε_final`; with the default ε-scaling schedule and the
//! integer-scaled prices used here, the final matching is exact for cost
//! matrices whose entries differ by more than `1e-6`.

use crate::matrix::CostMatrix;
use crate::solution::{Assignment, AssignmentError, AssignmentSolver};

/// Auction-algorithm solver (forward auction, ε-scaling).
#[derive(Debug, Clone, Copy)]
pub struct AuctionSolver {
    /// Final value of ε; smaller values give solutions closer to optimal at
    /// the price of more bidding rounds.
    pub epsilon_final: f64,
    /// Multiplicative ε reduction per scaling phase (must be > 1).
    pub scaling_factor: f64,
}

impl Default for AuctionSolver {
    fn default() -> Self {
        Self {
            epsilon_final: 1e-7,
            scaling_factor: 5.0,
        }
    }
}

impl AuctionSolver {
    /// Creates a solver with the default ε schedule.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AssignmentSolver for AuctionSolver {
    fn solve(&self, matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
        solve_auction(matrix, self.epsilon_final, self.scaling_factor)
    }

    fn name(&self) -> &'static str {
        "auction"
    }
}

/// Runs the forward auction algorithm on a *minimization* problem by bidding
/// on `value = -cost`.
///
/// Rectangular problems are padded to a square with zero-cost dummy rows or
/// columns: the classical ε-complementary-slackness optimality bound only
/// holds for symmetric auctions where every object ends up assigned, and the
/// zero-cost padding makes the square optimum coincide with the rectangular
/// optimum (dummy matches contribute nothing and are dropped afterwards).
pub fn solve_auction(
    matrix: &CostMatrix,
    epsilon_final: f64,
    scaling_factor: f64,
) -> Result<Assignment, AssignmentError> {
    assert!(epsilon_final > 0.0, "epsilon_final must be positive");
    assert!(scaling_factor > 1.0, "scaling_factor must exceed 1");

    let square = matrix.padded_square(0.0);
    let mapping = auction_inner(&square, epsilon_final, scaling_factor)?;

    let mut row_to_col = vec![None; matrix.rows()];
    for (row, col) in mapping.into_iter().enumerate() {
        if row < matrix.rows() && col < matrix.cols() {
            row_to_col[row] = Some(col);
        }
    }
    Ok(Assignment::from_row_mapping(matrix, row_to_col))
}

fn auction_inner(
    cost: &CostMatrix,
    epsilon_final: f64,
    scaling_factor: f64,
) -> Result<Vec<usize>, AssignmentError> {
    let persons = cost.rows();
    let objects = cost.cols();
    const UNASSIGNED: usize = usize::MAX;

    // Values are negated costs (auction maximizes value).
    let max_abs = cost
        .as_slice()
        .iter()
        .fold(0.0f64, |acc, &v| acc.max(v.abs()))
        .max(1.0);

    let mut prices = vec![0.0f64; objects];
    let mut person_to_object = vec![UNASSIGNED; persons];
    let mut object_to_person = vec![UNASSIGNED; objects];

    // ε-scaling schedule: start coarse, refine down to epsilon_final.
    let mut epsilon = max_abs / 2.0;
    if epsilon < epsilon_final {
        epsilon = epsilon_final;
    }

    loop {
        // Reset the assignment for this ε phase (standard ε-scaling restart).
        person_to_object.iter_mut().for_each(|x| *x = UNASSIGNED);
        object_to_person.iter_mut().for_each(|x| *x = UNASSIGNED);

        let mut unassigned: Vec<usize> = (0..persons).collect();
        // Bound on iterations to guarantee termination even with degenerate
        // inputs; the auction algorithm provably terminates well below this.
        let max_rounds = 1_000_000usize + persons * objects * 64;
        let mut rounds = 0usize;

        while let Some(person) = unassigned.pop() {
            rounds += 1;
            if rounds > max_rounds {
                return Err(AssignmentError::Infeasible);
            }

            // Find the best and second-best object for this person.
            let mut best_obj = UNASSIGNED;
            let mut best_value = f64::NEG_INFINITY;
            let mut second_value = f64::NEG_INFINITY;
            let row = cost.row(person);
            for (obj, &c) in row.iter().enumerate() {
                let value = -c - prices[obj];
                if value > best_value {
                    second_value = best_value;
                    best_value = value;
                    best_obj = obj;
                } else if value > second_value {
                    second_value = value;
                }
            }
            if best_obj == UNASSIGNED {
                return Err(AssignmentError::Infeasible);
            }
            if !second_value.is_finite() {
                // Only one object exists; bid epsilon above current price.
                second_value = best_value;
            }

            // Raise the price by the bid increment.
            let increment = best_value - second_value + epsilon;
            prices[best_obj] += increment;

            // Assign, evicting any previous owner.
            let evicted = object_to_person[best_obj];
            object_to_person[best_obj] = person;
            person_to_object[person] = best_obj;
            if evicted != UNASSIGNED {
                person_to_object[evicted] = UNASSIGNED;
                unassigned.push(evicted);
            }
        }

        if epsilon <= epsilon_final {
            break;
        }
        epsilon = (epsilon / scaling_factor).max(epsilon_final);
    }

    Ok(person_to_object)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jv::solve_jv;

    #[test]
    fn matches_jv_on_small_instances() {
        let mut state = 123456789u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 20.0
        };
        for rows in 1..=4usize {
            for cols in 1..=4usize {
                let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
                let m = CostMatrix::from_vec(rows, cols, data).unwrap();
                let a = solve_auction(&m, 1e-9, 4.0).unwrap();
                let j = solve_jv(&m).unwrap();
                assert!(
                    (a.total_cost - j.total_cost).abs() < 1e-4,
                    "auction {} vs jv {} ({rows}x{cols})",
                    a.total_cost,
                    j.total_cost
                );
            }
        }
    }

    #[test]
    fn diagonal_optimum() {
        let m =
            CostMatrix::from_vec(3, 3, vec![0.0, 5.0, 5.0, 5.0, 0.0, 5.0, 5.0, 5.0, 0.0]).unwrap();
        let a = solve_auction(&m, 1e-9, 4.0).unwrap();
        assert!(a.total_cost < 1.0);
        assert!(a.is_valid_for(3, 3));
    }

    #[test]
    #[should_panic(expected = "epsilon_final")]
    fn rejects_nonpositive_epsilon() {
        let m = CostMatrix::filled(2, 2, 1.0).unwrap();
        let _ = solve_auction(&m, 0.0, 4.0);
    }
}

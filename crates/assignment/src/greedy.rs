//! Greedy (non-optimal) assignment heuristic.
//!
//! Repeatedly matches the globally cheapest remaining (row, column) pair.
//! This is not optimal in general, but it is a useful baseline in the solver
//! ablation benchmarks and it mirrors what a naive "send each query to its
//! fastest free instance" controller would do — the behaviour Kairos improves
//! upon (paper Fig. 5).

use crate::matrix::CostMatrix;
use crate::solution::{Assignment, AssignmentError, AssignmentSolver};

/// Greedy cheapest-edge-first heuristic solver.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedySolver;

impl GreedySolver {
    /// Creates a new solver.
    pub fn new() -> Self {
        Self
    }
}

impl AssignmentSolver for GreedySolver {
    fn solve(&self, matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
        solve_greedy(matrix)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Solves the assignment greedily: sort all edges by cost and take each edge
/// whose endpoints are both still free, until `min(rows, cols)` pairs are
/// matched.
pub fn solve_greedy(matrix: &CostMatrix) -> Result<Assignment, AssignmentError> {
    let rows = matrix.rows();
    let cols = matrix.cols();
    let target = rows.min(cols);

    let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((matrix.get(r, c), r, c));
        }
    }
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));

    let mut row_to_col = vec![None; rows];
    let mut col_taken = vec![false; cols];
    let mut matched = 0usize;
    for (_, r, c) in edges {
        if matched == target {
            break;
        }
        if row_to_col[r].is_none() && !col_taken[c] {
            row_to_col[r] = Some(c);
            col_taken[c] = true;
            matched += 1;
        }
    }

    Ok(Assignment::from_row_mapping(matrix, row_to_col))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jv::solve_jv;

    #[test]
    fn produces_complete_matching() {
        let m = CostMatrix::from_vec(3, 5, vec![1.0; 15]).unwrap();
        let a = solve_greedy(&m).unwrap();
        assert_eq!(a.matched_count(), 3);
        assert!(a.is_valid_for(3, 5));
    }

    #[test]
    fn greedy_is_suboptimal_on_adversarial_input() {
        // Greedy takes the 0.0 edge first and is then forced into 100.0;
        // the optimum pairs 1.0 + 1.0.
        let m = CostMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 100.0]).unwrap();
        let g = solve_greedy(&m).unwrap();
        let o = solve_jv(&m).unwrap();
        assert!((g.total_cost - 100.0).abs() < 1e-9);
        assert!((o.total_cost - 2.0).abs() < 1e-9);
        assert!(g.total_cost >= o.total_cost);
    }

    #[test]
    fn greedy_never_beats_optimal() {
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 33) as f64) / (u32::MAX as f64) * 10.0
        };
        for _ in 0..20 {
            let rows = 4;
            let cols = 6;
            let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
            let m = CostMatrix::from_vec(rows, cols, data).unwrap();
            let g = solve_greedy(&m).unwrap();
            let o = solve_jv(&m).unwrap();
            assert!(g.total_cost + 1e-9 >= o.total_cost);
        }
    }
}

//! Common result and error types shared by all assignment solvers.

use crate::matrix::CostMatrix;
use std::fmt;

/// The outcome of a rectangular min-cost assignment.
///
/// For an `m x n` cost matrix, exactly `min(m, n)` pairs are matched: when
/// there are fewer rows (queries) than columns (instances) every row is
/// matched to a distinct column; otherwise every column is matched to a
/// distinct row.  This mirrors constraint Eq. 7 in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `row_to_col[i]` is the column matched to row `i`, or `None` when the
    /// row is left unmatched (only possible when `rows > cols`).
    pub row_to_col: Vec<Option<usize>>,
    /// `col_to_row[j]` is the row matched to column `j`, or `None` when the
    /// column is left unmatched (only possible when `cols > rows`).
    pub col_to_row: Vec<Option<usize>>,
    /// Total cost of the matched pairs.
    pub total_cost: f64,
}

impl Assignment {
    /// Builds an [`Assignment`] from a row-to-column mapping and the matrix it
    /// was computed against, deriving the inverse mapping and total cost.
    pub fn from_row_mapping(matrix: &CostMatrix, row_to_col: Vec<Option<usize>>) -> Self {
        assert_eq!(row_to_col.len(), matrix.rows(), "mapping length mismatch");
        let mut col_to_row = vec![None; matrix.cols()];
        let mut total_cost = 0.0;
        for (row, col) in row_to_col.iter().enumerate() {
            if let Some(col) = col {
                debug_assert!(col_to_row[*col].is_none(), "column matched twice");
                col_to_row[*col] = Some(row);
                total_cost += matrix.get(row, *col);
            }
        }
        Self {
            row_to_col,
            col_to_row,
            total_cost,
        }
    }

    /// Number of matched pairs.
    pub fn matched_count(&self) -> usize {
        self.row_to_col.iter().filter(|c| c.is_some()).count()
    }

    /// Iterator over `(row, col)` matched pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.row_to_col
            .iter()
            .enumerate()
            .filter_map(|(r, c)| c.map(|c| (r, c)))
    }

    /// Checks the structural invariants of a valid rectangular assignment
    /// against the matrix dimensions: one-to-one mapping and
    /// `min(rows, cols)` matched pairs (paper Eq. 6 and Eq. 7).
    pub fn is_valid_for(&self, rows: usize, cols: usize) -> bool {
        if self.row_to_col.len() != rows || self.col_to_row.len() != cols {
            return false;
        }
        if self.matched_count() != rows.min(cols) {
            return false;
        }
        // One-to-one: each matched column appears exactly once.
        let mut seen = vec![false; cols];
        for (_, col) in self.pairs() {
            if col >= cols || seen[col] {
                return false;
            }
            seen[col] = true;
        }
        // Inverse mapping consistency.
        for (row, col) in self.pairs() {
            if self.col_to_row[col] != Some(row) {
                return false;
            }
        }
        true
    }
}

/// Errors produced by the assignment solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignmentError {
    /// The cost matrix was malformed.
    Matrix(crate::matrix::MatrixError),
    /// The solver could not find a complete matching (only possible when
    /// forbidden edges are modelled with infinite costs, which [`CostMatrix`]
    /// disallows; kept for future sparse solvers).
    Infeasible,
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::Matrix(e) => write!(f, "invalid cost matrix: {e}"),
            AssignmentError::Infeasible => write!(f, "no complete matching exists"),
        }
    }
}

impl std::error::Error for AssignmentError {}

impl From<crate::matrix::MatrixError> for AssignmentError {
    fn from(e: crate::matrix::MatrixError) -> Self {
        AssignmentError::Matrix(e)
    }
}

/// Trait implemented by every min-cost assignment solver in this crate.
///
/// Implementations must return an optimal (for exact solvers) or feasible
/// (for heuristics such as [`crate::greedy::GreedySolver`]) rectangular
/// matching of size `min(rows, cols)`.
pub trait AssignmentSolver {
    /// Solves the min-cost rectangular assignment problem for `matrix`.
    fn solve(&self, matrix: &CostMatrix) -> Result<Assignment, AssignmentError>;

    /// Human-readable solver name (used in benchmark output).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_row_mapping_derives_inverse_and_cost() {
        let m = CostMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let a = Assignment::from_row_mapping(&m, vec![Some(2), Some(0)]);
        assert_eq!(a.total_cost, 3.0 + 4.0);
        assert_eq!(a.col_to_row, vec![Some(1), None, Some(0)]);
        assert_eq!(a.matched_count(), 2);
        assert!(a.is_valid_for(2, 3));
    }

    #[test]
    fn validity_detects_incomplete_matching() {
        let m = CostMatrix::from_vec(2, 3, vec![1.0; 6]).unwrap();
        let a = Assignment::from_row_mapping(&m, vec![Some(0), None]);
        assert!(!a.is_valid_for(2, 3));
    }

    #[test]
    fn pairs_iterates_matched_rows_only() {
        let m = CostMatrix::from_vec(3, 2, vec![1.0; 6]).unwrap();
        let a = Assignment::from_row_mapping(&m, vec![Some(1), None, Some(0)]);
        let pairs: Vec<_> = a.pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (2, 0)]);
        assert!(a.is_valid_for(3, 2));
    }
}

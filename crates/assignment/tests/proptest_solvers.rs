//! Property-based tests for the assignment solvers.
//!
//! Invariants checked:
//! * The exact solvers (Jonker–Volgenant, Hungarian, auction) agree with the
//!   brute-force optimum on random rectangular matrices.
//! * Every solver returns a structurally valid rectangular matching.
//! * The greedy heuristic never beats the optimum.
//! * Optimal cost is invariant under transposition and monotone under
//!   uniform cost shifts.

use kairos_assignment::{
    brute::solve_brute_force, greedy::solve_greedy, hungarian::solve_hungarian, jv::solve_jv,
    CostMatrix,
};
use proptest::prelude::*;

/// Strategy producing small rectangular matrices with bounded finite costs.
fn small_matrix() -> impl Strategy<Value = CostMatrix> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(-100.0f64..100.0, rows * cols)
            .prop_map(move |data| CostMatrix::from_vec(rows, cols, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jv_matches_brute_force(m in small_matrix()) {
        let jv = solve_jv(&m).unwrap();
        let brute = solve_brute_force(&m).unwrap();
        prop_assert!((jv.total_cost - brute.total_cost).abs() < 1e-6);
        prop_assert!(jv.is_valid_for(m.rows(), m.cols()));
    }

    #[test]
    fn hungarian_matches_brute_force(m in small_matrix()) {
        let h = solve_hungarian(&m).unwrap();
        let brute = solve_brute_force(&m).unwrap();
        prop_assert!((h.total_cost - brute.total_cost).abs() < 1e-6);
        prop_assert!(h.is_valid_for(m.rows(), m.cols()));
    }

    #[test]
    fn greedy_is_feasible_and_never_better_than_optimal(m in small_matrix()) {
        let g = solve_greedy(&m).unwrap();
        let opt = solve_jv(&m).unwrap();
        prop_assert!(g.is_valid_for(m.rows(), m.cols()));
        prop_assert!(g.total_cost + 1e-9 >= opt.total_cost);
    }

    #[test]
    fn optimal_cost_invariant_under_transpose(m in small_matrix()) {
        let a = solve_jv(&m).unwrap();
        let b = solve_jv(&m.transposed()).unwrap();
        prop_assert!((a.total_cost - b.total_cost).abs() < 1e-6);
    }

    #[test]
    fn uniform_shift_changes_cost_predictably(m in small_matrix(), shift in -50.0f64..50.0) {
        // Adding a constant to every entry adds `min(rows, cols) * shift`
        // to the optimal cost and leaves the optimal matching structure valid.
        let shifted = CostMatrix::from_fn(m.rows(), m.cols(), |r, c| m.get(r, c) + shift).unwrap();
        let a = solve_jv(&m).unwrap();
        let b = solve_jv(&shifted).unwrap();
        let k = m.rows().min(m.cols()) as f64;
        prop_assert!((b.total_cost - (a.total_cost + k * shift)).abs() < 1e-6);
    }

    #[test]
    fn matched_count_is_min_dimension(m in small_matrix()) {
        let a = solve_jv(&m).unwrap();
        prop_assert_eq!(a.matched_count(), m.rows().min(m.cols()));
    }
}

//! Figure/table reproduction harness (`harness = false`).
//!
//! Running `cargo bench -p kairos-bench --bench figures` regenerates every
//! figure of the paper's evaluation (Sec. 4, 7 and 8) on the simulator
//! substrate and prints paper-style rows.  EXPERIMENTS.md records one run of
//! this output next to the paper's numbers.
//!
//! Pass a figure id as the first CLI argument (e.g. `fig8`) to run a single
//! experiment; with no argument every experiment runs in order.  Set
//! `KAIROS_FIG_FAST=1` to use shorter capacity probes.

use kairos_baselines::{
    best_oracle_throughput, oracle_throughput, static_overprovision, AutoscalerOptions,
    BayesianOptimization, ConfigSearch, ExhaustiveSearch, GeneticSearch, RandomSearch,
    ReactiveAutoscaler, SearchSpace, SimulatedAnnealing,
};
use kairos_bench::{ExperimentContext, SchedulerKind};
use kairos_core::{
    kairos_plus_search, upper_bound_single, InferenceService, KairosScheduler, ServingOptions,
    ServingSystem, SingleAuxInputs, ThroughputEstimator,
};
use kairos_models::{
    best_homogeneous, calibration::paper_calibration, ec2, Config, ModelKind, NoiseModel, Offering,
    OfferingCatalog, PoolSpec, PreemptionProcess, PriceTrace, TraceMarket,
};
use kairos_sim::{run_trace, ServiceSpec, SimReport, SimulationOptions};
use kairos_workload::{
    ArrivalProcess, BatchSizeDistribution, MixSpec, MixedTraceSpec, PhasedArrival, Query, TimeUs,
    Trace,
};

fn section(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Fig. 1 — heterogeneous vs best homogeneous configurations for RM2 under a
/// fixed budget (three-type pool, Ribbon's FCFS distribution as in Sec. 4).
fn figure1() {
    section("Figure 1: heterogeneous vs homogeneous configurations (RM2, budget 2.5 $/hr)");
    let ctx = ExperimentContext::figure1(ModelKind::Rm2);
    let configs = vec![
        ("(4, 0, 0) homogeneous", Config::new(vec![4, 0, 0])),
        ("(3, 1, 3)", Config::new(vec![3, 1, 3])),
        ("(2, 0, 9)", Config::new(vec![2, 0, 9])),
        ("(1, 4, 2)", Config::new(vec![1, 4, 2])),
    ];
    println!(
        "{:<24}{:>12}{:>18}",
        "configuration", "cost $/hr", "throughput (QPS)"
    );
    // The four ramps are independent: fan them out over the cores.
    let candidates: Vec<Config> = configs.iter().map(|(_, c)| c.clone()).collect();
    let measured = ctx.measure_throughput_many(&candidates, SchedulerKind::Ribbon);
    for ((label, config), mut qps) in configs.into_iter().zip(measured) {
        let cost = config.cost(&ctx.pool);
        if config.is_homogeneous(&ctx.pool) {
            // The paper scales the homogeneous configuration's throughput up
            // proportionally to its unused budget.
            qps *= ctx.budget / cost;
        }
        println!("{label:<24}{cost:>12.3}{qps:>18.1}");
    }
}

/// Fig. 2 — simulated-annealing exploration: most explored configurations are
/// worse than the homogeneous baseline.
fn figure2() {
    section(
        "Figure 2: throughput gain over homogeneous while exploring with simulated annealing (RM2)",
    );
    let ctx = ExperimentContext::figure1(ModelKind::Rm2);
    let sample = ctx.sample(2500);
    let homo = best_homogeneous(&ctx.pool, ctx.budget);
    let homo_qps = oracle_throughput(&ctx.pool, &homo, ctx.model, &ctx.latency, &sample)
        * (ctx.budget / homo.cost(&ctx.pool));

    let space = SearchSpace::new(ctx.pool.clone(), ctx.budget);
    let mut eval = |c: &Config| oracle_throughput(&ctx.pool, c, ctx.model, &ctx.latency, &sample);
    let out = SimulatedAnnealing {
        seed: 4,
        ..Default::default()
    }
    .search(&space, &mut eval, 40);

    let mut worse = 0usize;
    println!(
        "{:<8}{:>16}{:>22}",
        "step", "explored config", "gain over homo (%)"
    );
    for (step, (config, qps)) in out.history.iter().enumerate() {
        let gain = (qps - homo_qps) / homo_qps * 100.0;
        if gain < 0.0 {
            worse += 1;
        }
        println!("{:<8}{:>16}{:>22.1}", step + 1, config.to_string(), gain);
    }
    println!(
        "--> {} of {} explored configurations are worse than homogeneous ({:.0} %)",
        worse,
        out.history.len(),
        worse as f64 / out.history.len() as f64 * 100.0
    );
}

/// Fig. 3 — the same configurations under different query-distribution
/// mechanisms (RIBBON / DRS / CLKWRK / ORCL).
fn figure3() {
    section("Figure 3: query-distribution mechanism matters (RM2)");
    let ctx = ExperimentContext::figure1(ModelKind::Rm2);
    let sample = ctx.sample(2500);
    let configs = vec![
        Config::new(vec![4, 0, 0]),
        Config::new(vec![2, 0, 9]),
        Config::new(vec![3, 1, 3]),
    ];
    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}",
        "config", "RIBBON", "DRS", "CLKWRK", "ORCL"
    );
    // Uniform-scheduler columns sweep in parallel; the DRS column stays
    // per-config because its tuned threshold depends on the configuration.
    let ribbons = ctx.measure_throughput_many(&configs, SchedulerKind::Ribbon);
    let clkwrks = ctx.measure_throughput_many(&configs, SchedulerKind::Clockwork);
    for ((config, ribbon), clkwrk) in configs.iter().zip(ribbons).zip(clkwrks) {
        let drs = ctx.measure_throughput(config, SchedulerKind::Drs(ctx.drs_threshold(config)));
        let orcl = oracle_throughput(&ctx.pool, config, ctx.model, &ctx.latency, &sample);
        println!(
            "{:<14}{:>10.1}{:>10.1}{:>10.1}{:>10.1}",
            config.to_string(),
            ribbon,
            drs,
            clkwrk,
            orcl
        );
    }
}

/// Fig. 7 — the two worked upper-bound scenarios (exact numbers).
fn figure7() {
    section("Figure 7: upper-bound calculation scenarios");
    let s1 = SingleAuxInputs {
        base_nodes: 1,
        aux_nodes: 1,
        q_base: 100.0,
        q_base_splus: 90.0,
        q_aux: 150.0,
        fraction_small: 0.6,
    };
    let s2 = SingleAuxInputs {
        q_aux: 140.0,
        fraction_small: 0.7,
        ..s1
    };
    println!(
        "Scenario 1 (base bottleneck):      QPS_max = {:.0} (paper: 225)",
        upper_bound_single(&s1)
    );
    println!(
        "Scenario 2 (auxiliary bottleneck): QPS_max = {:.0} (paper: 233)",
        upper_bound_single(&s2)
    );
}

/// Fig. 8 — Kairos vs the optimal homogeneous configuration, all five models.
fn figure8() {
    section("Figure 8: Kairos vs optimal homogeneous (normalized throughput)");
    println!(
        "{:<10}{:>16}{:>18}{:>18}{:>12}",
        "model", "Kairos config", "Kairos QPS", "homogeneous QPS", "speedup"
    );
    for model in ModelKind::ALL {
        let ctx = ExperimentContext::new(model);
        let plan = ctx.kairos_plan();
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);
        let homo = ctx.best_homogeneous_throughput(SchedulerKind::Fcfs);
        println!(
            "{:<10}{:>16}{:>18.1}{:>18.1}{:>12.2}",
            model.to_string(),
            plan.chosen.to_string(),
            kairos,
            homo,
            kairos / homo.max(1e-9)
        );
    }
}

/// Fig. 9 — Kairos and Kairos+ vs RIBBON / DRS / CLKWRK / ORCL.
fn figure9() {
    section("Figure 9: throughput vs state-of-the-art (normalized to RIBBON)");
    println!(
        "{:<10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "model", "RIBBON", "DRS", "CLKWRK", "KAIROS", "KAIROS+", "ORCL"
    );
    for model in ModelKind::ALL {
        let ctx = ExperimentContext::new(model);
        let sample = ctx.sample(2500);
        let plan = ctx.kairos_plan();

        // Competing schemes are given the best configuration found by oracle
        // search, as in the paper's conservative setup.
        let configs: Vec<Config> = plan.ranked.iter().map(|(c, _)| c.clone()).collect();
        let (best_cfg, orcl) =
            best_oracle_throughput(&ctx.pool, &configs, model, &ctx.latency, &sample);
        let best_cfg = best_cfg.unwrap_or_else(|| plan.chosen.clone());

        let ribbon = ctx.measure_throughput(&best_cfg, SchedulerKind::Ribbon);
        let drs =
            ctx.measure_throughput(&best_cfg, SchedulerKind::Drs(ctx.drs_threshold(&best_cfg)));
        let clkwrk = ctx.measure_throughput(&best_cfg, SchedulerKind::Clockwork);
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);

        // Kairos+ refines the configuration with a few real evaluations.
        let plus = kairos_plus_search(
            &plan.ranked,
            |c| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample),
            Some(10),
        );
        let plus_cfg = plus.best_config.unwrap_or_else(|| plan.chosen.clone());
        let kairos_plus = ctx
            .measure_throughput(&plus_cfg, SchedulerKind::Kairos)
            .max(kairos);

        let norm = ribbon.max(1e-9);
        println!(
            "{:<10}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
            model.to_string(),
            1.0,
            drs / norm,
            clkwrk / norm,
            kairos / norm,
            kairos_plus / norm,
            orcl / norm
        );
    }
}

/// Fig. 10 / Fig. 11 — number of online evaluations needed to find the
/// optimal configuration, Kairos+ vs competing search algorithms (all with
/// sub-configuration pruning, oracle model as the expensive evaluator).
fn figure10_11() {
    section("Figures 10 & 11: online evaluations to reach the optimum (% of search space)");
    println!(
        "{:<10}{:>8}{:>10}{:>10}{:>10}{:>12}{:>10}",
        "model", "space", "KAIROS+", "RAND", "GENE", "RIBBON(BO)", "ANNEAL"
    );
    for model in ModelKind::ALL {
        let ctx = ExperimentContext::new(model);
        let sample = ctx.sample(2500);
        let plan = ctx.kairos_plan();
        let space = SearchSpace::new(ctx.pool.clone(), ctx.budget);
        let space_size = space.len();

        let oracle_eval =
            |c: &Config| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample);

        // Ground-truth optimum via exhaustive search.
        let mut eval = oracle_eval;
        let exhaustive = ExhaustiveSearch.search(&space, &mut eval, usize::MAX);
        let optimum = exhaustive.best.as_ref().unwrap().1;
        let target = optimum * 0.999;

        let plus = kairos_plus_search(&plan.ranked, oracle_eval, None);
        let plus_evals = plus
            .evaluated
            .iter()
            .position(|(_, v)| *v >= target)
            .map(|p| p + 1)
            .unwrap_or(plus.evaluations());

        let budget = space_size; // allow the baselines to run to exhaustion
        let mut eval = oracle_eval;
        let rand_out = RandomSearch { seed: 5 }.search(&space, &mut eval, budget);
        let mut eval = oracle_eval;
        let gene_out = GeneticSearch {
            seed: 5,
            ..Default::default()
        }
        .search(&space, &mut eval, budget);
        let mut eval = oracle_eval;
        let bo_out = BayesianOptimization {
            seed: 5,
            ..Default::default()
        }
        .search(&space, &mut eval, 60);
        let mut eval = oracle_eval;
        let sa_out = SimulatedAnnealing {
            seed: 5,
            ..Default::default()
        }
        .search(&space, &mut eval, budget);

        let pct = |n: Option<usize>, fallback: usize| {
            let n = n.unwrap_or(fallback);
            n as f64 / space_size as f64 * 100.0
        };
        println!(
            "{:<10}{:>8}{:>9.1}%{:>9.1}%{:>9.1}%{:>11.1}%{:>9.1}%",
            model.to_string(),
            space_size,
            plus_evals as f64 / space_size as f64 * 100.0,
            pct(
                rand_out.evaluations_to_reach(target),
                rand_out.evaluations()
            ),
            pct(
                gene_out.evaluations_to_reach(target),
                gene_out.evaluations()
            ),
            pct(bo_out.evaluations_to_reach(target), bo_out.evaluations()),
            pct(sa_out.evaluations_to_reach(target), sa_out.evaluations()),
        );
    }
}

/// Fig. 12 — transient behaviour when the batch-size distribution shifts from
/// log-normal to Gaussian: throughput of the configurations each scheme
/// evaluates during its search, vs Kairos's one-shot choice.
fn figure12() {
    section("Figure 12: reaction to a load change (RM2, log-normal -> Gaussian)");
    let mut ctx = ExperimentContext::new(ModelKind::Rm2);
    ctx.batch_sizes = BatchSizeDistribution::gaussian_default();
    let sample = ctx.sample(2500);
    let model = ctx.model;

    // Kairos replans in one shot from the new monitor window.
    let plan = ctx.kairos_plan();
    let kairos_now = oracle_throughput(&ctx.pool, &plan.chosen, model, &ctx.latency, &sample);

    // Competing schemes restart their searches and walk through configurations.
    let space = SearchSpace::new(ctx.pool.clone(), ctx.budget);
    let mut eval = |c: &Config| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample);
    let bo = BayesianOptimization {
        seed: 9,
        ..Default::default()
    }
    .search(&space, &mut eval, 20);
    let mut eval = |c: &Config| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample);
    let sa = SimulatedAnnealing {
        seed: 9,
        ..Default::default()
    }
    .search(&space, &mut eval, 20);
    let plus = kairos_plus_search(
        &plan.ranked,
        |c| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample),
        Some(20),
    );

    println!(
        "KAIROS one-shot configuration {} -> {:.1} QPS under the new mix",
        plan.chosen, kairos_now
    );
    println!(
        "KAIROS+ finished after {} evaluations -> {:.1} QPS",
        plus.evaluations(),
        plus.best_throughput
    );
    println!(
        "\n{:<8}{:>18}{:>18}{:>14}",
        "step", "RIBBON(BO) QPS", "ANNEALING QPS", "KAIROS QPS"
    );
    let steps = bo.history.len().max(sa.history.len()).min(20);
    for i in 0..steps {
        let bo_v = bo.history.get(i).map(|(_, v)| *v).unwrap_or(f64::NAN);
        let sa_v = sa.history.get(i).map(|(_, v)| *v).unwrap_or(f64::NAN);
        println!(
            "{:<8}{:>18.1}{:>18.1}{:>14.1}",
            i + 1,
            bo_v,
            sa_v,
            kairos_now
        );
    }
}

/// One scheme's outcome of the load-shift experiment.
struct LoadShiftRow {
    scheme: &'static str,
    violation_fraction: f64,
    /// Time to restore a <=15 % windowed violation rate after the boundary.
    ttr_us: Option<TimeUs>,
    /// Time-weighted mean of the target cluster cost over the trace
    /// (reconfiguration-target costs; graceful-drain overlap excluded).
    mean_cost_per_hour: f64,
}

/// Integrates a piecewise-constant `(time, cost)` step function over
/// `[0, duration_us]`.
fn mean_cost(mut steps: Vec<(TimeUs, f64)>, duration_us: TimeUs) -> f64 {
    steps.sort_by_key(|(t, _)| *t);
    let mut total = 0.0;
    for (i, &(t, cost)) in steps.iter().enumerate() {
        let end = steps.get(i + 1).map(|&(t, _)| t).unwrap_or(duration_us);
        let end = end.min(duration_us);
        if end > t {
            total += cost * (end - t) as f64;
        }
    }
    total / duration_us as f64
}

/// Fig. 12 (online) — the serving loop reacting to a 40 -> 100 QPS step
/// change: controller-in-the-loop reconfiguration vs a frozen static plan,
/// 2x static overprovisioning, and an HPA-style reactive homogeneous
/// autoscaler.  Records the QoS-violation rate, the time-to-recover across
/// the phase boundary, and the time-weighted cluster cost, and writes them
/// to `BENCH_load_shift.json` at the workspace root.
fn figure12_load_shift() {
    let fast = std::env::var("KAIROS_FIG_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let phase_s = if fast { 3.0 } else { 5.0 };
    let (low_qps, high_qps, budget) = (40.0, 100.0, 2.5);
    section("Figure 12 (online): dynamic reconfiguration across a load shift (RM2)");
    println!(
        "{low_qps} -> {high_qps} QPS step at t={phase_s}s, budget {budget} $/hr, \
         recovery = windowed violations <= 15 %"
    );

    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Rm2;
    let service = ServiceSpec::new(model, latency.clone());
    let workload = PhasedArrival::step_change(
        low_qps,
        high_qps,
        BatchSizeDistribution::production_default(),
        phase_s,
        phase_s,
        4242,
    );
    let trace = workload.generate();
    let boundary_us = workload.boundaries_us()[1];
    let duration_us = workload.total_duration_us();
    let (bucket_us, tol) = (500_000, 0.15);
    let ttr = |report: &SimReport| report.time_to_recover(boundary_us, bucket_us, tol);

    // Controller in the loop, warm monitor, demand-aware replanning.
    let mut system = ServingSystem::new(
        pool.clone(),
        model,
        Some(latency.clone()),
        ServingOptions::default()
            .budget(budget)
            .replan_every(500_000)
            .provisioning_delay(300_000),
    );
    system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let initial = system
        .plan_for_demand(low_qps)
        .expect("priors allow planning");
    let outcome = system.run(&initial, &service, &trace);
    let mut kairos_costs = vec![(0, initial.cost(&pool))];
    kairos_costs.extend(
        outcome
            .reconfigs
            .iter()
            .map(|r| (r.at_us, r.target.cost(&pool))),
    );
    let kairos_row = LoadShiftRow {
        scheme: "KAIROS(loop)",
        violation_fraction: outcome.report.violation_fraction(),
        ttr_us: ttr(&outcome.report),
        mean_cost_per_hour: mean_cost(kairos_costs, duration_us),
    };

    // Frozen static plan: same initial configuration, same scheduler family.
    let static_report = run_trace(
        &pool,
        &initial,
        &service,
        &trace,
        &mut KairosScheduler::with_priors(model, &latency),
        &SimulationOptions::default(),
    );
    let static_row = LoadShiftRow {
        scheme: "STATIC(plan)",
        violation_fraction: static_report.violation_fraction(),
        ttr_us: ttr(&static_report),
        mean_cost_per_hour: initial.cost(&pool),
    };

    // Static overprovisioning: 2x the budget of homogeneous base capacity.
    let over = static_overprovision(&pool, budget, 2.0);
    let over_report = run_trace(
        &pool,
        &over,
        &service,
        &trace,
        &mut KairosScheduler::with_priors(model, &latency),
        &SimulationOptions::default(),
    );
    let over_row = LoadShiftRow {
        scheme: "STATIC(2x)",
        violation_fraction: over_report.violation_fraction(),
        ttr_us: ttr(&over_report),
        mean_cost_per_hour: over.cost(&pool),
    };

    // Reactive homogeneous autoscaler on backlog pressure.
    let scaler = ReactiveAutoscaler::new(AutoscalerOptions {
        cooldown_us: 500_000,
        provisioning_delay_us: 300_000,
        ..Default::default()
    });
    let reactive = scaler.run(&pool, 2, &service, &trace);
    let base_price = pool.price(pool.base_index());
    let mut count = 2i64;
    let mut reactive_costs = vec![(0, count as f64 * base_price)];
    for &(t, delta) in &reactive.actions {
        count += i64::from(delta);
        reactive_costs.push((t, count as f64 * base_price));
    }
    let reactive_row = LoadShiftRow {
        scheme: "REACTIVE(homo)",
        violation_fraction: reactive.report.violation_fraction(),
        ttr_us: ttr(&reactive.report),
        mean_cost_per_hour: mean_cost(reactive_costs, duration_us),
    };

    let rows = [kairos_row, static_row, over_row, reactive_row];
    println!(
        "\n{:<16}{:>14}{:>18}{:>18}",
        "scheme", "violations %", "recover (ms)", "mean cost $/hr"
    );
    for row in &rows {
        let rec = row
            .ttr_us
            .map(|t| format!("{:.0}", t as f64 / 1000.0))
            .unwrap_or_else(|| "never".into());
        println!(
            "{:<16}{:>14.2}{:>18}{:>18.3}",
            row.scheme,
            row.violation_fraction * 100.0,
            rec,
            row.mean_cost_per_hour
        );
    }
    println!(
        "--> KAIROS reconfigured {} time(s); final active cluster {} ({:.3} $/hr)",
        outcome.reconfigs.len(),
        outcome.final_active,
        outcome.final_active.cost(&pool)
    );

    // Record the outcome next to the other BENCH_* baselines.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load_shift.json");
    let json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":\"fig12_load_shift/{}\",\"violation_fraction\":{:.4},\
                 \"ttr_us\":{},\"mean_cost_per_hour\":{:.4}}}",
                row.scheme,
                row.violation_fraction,
                row.ttr_us
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "null".into()),
                row.mean_cost_per_hour
            )
        })
        .collect();
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_load_shift.json"),
        Err(e) => println!("--> could not write BENCH_load_shift.json: {e}"),
    }
}

/// Multi-model serving — a 3-model mix (NCF + RM2 + WND) through the
/// `InferenceService` facade under **one shared budget**, vs three isolated
/// single-model deployments at the same total budget (each frozen at an
/// equal share).  Records per-scheme QoS-violation rate and time-weighted
/// target-cluster cost to `BENCH_multimodel.json`.
fn figure_multimodel() {
    let fast = std::env::var("KAIROS_FIG_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let duration_s = if fast { 4.0 } else { 8.0 };
    let budget = 6.0;
    let total_qps = 180.0;
    section("Multi-model serving: shared budget vs isolated deployments (NCF + RM2 + WND)");
    println!(
        "{total_qps} QPS mixed stream, {duration_s} s, global budget {budget} $/hr \
         (isolated: {:.2} $/hr each)",
        budget / 3.0
    );

    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let models = [ModelKind::Ncf, ModelKind::Rm2, ModelKind::Wnd];
    let shares = [0.45, 0.2, 0.35];
    let mix = MixSpec::from_shares(
        &shares,
        &[
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
        ],
    );
    let trace = MixedTraceSpec {
        arrival: ArrivalProcess::Poisson {
            rate_qps: total_qps,
        },
        mix: mix.clone(),
        duration_s,
        seed: 2024,
    }
    .generate();
    let duration_us = (duration_s * 1e6) as TimeUs;
    let per_model_demand: Vec<f64> = shares.iter().map(|s| s * total_qps).collect();

    // Shared budget through the facade: per-model lanes, demand-weighted
    // water-filling, per-model replanning.
    let mut service = InferenceService::new(
        pool.clone(),
        &models,
        Some(latency.clone()),
        ServingOptions::default()
            .budget(budget)
            .replan_every(500_000)
            .provisioning_delay(300_000),
    );
    service.warm_monitors(&mix, 3_000, 7);
    let initial = service
        .plan_initial(&per_model_demand)
        .expect("priors allow planning");
    let specs = service.service_specs(&latency);
    let outcome = service.run(&initial, &specs, &trace);
    let mut model_costs: Vec<f64> = initial.pools.iter().map(|p| p.config.cost(&pool)).collect();
    let mut shared_steps = vec![(0, model_costs.iter().sum::<f64>())];
    for r in &outcome.reconfigs {
        model_costs[r.model.index()] = r.target.cost(&pool);
        shared_steps.push((r.at_us, model_costs.iter().sum::<f64>()));
    }
    let shared_cost = mean_cost(shared_steps, duration_us);
    let shared_viol = outcome.report.violation_fraction();

    // Isolated deployments: each model gets budget/3 and its own frozen
    // single-model plan over its own sub-stream.
    let mut iso_viol_num = 0usize;
    let mut iso_offered = 0usize;
    let mut iso_cost = 0.0;
    for (m, &kind) in models.iter().enumerate() {
        let sub: Vec<Query> = trace
            .queries
            .iter()
            .filter(|q| q.model.index() == m)
            .map(|q| Query::new(q.id, q.batch_size, q.arrival_us))
            .collect();
        let sub_trace = Trace::from_queries(sub);
        let mut system = ServingSystem::new(
            pool.clone(),
            kind,
            Some(latency.clone()),
            ServingOptions::default().budget(budget / 3.0),
        );
        system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
        let config = system
            .plan_for_demand(per_model_demand[m])
            .expect("priors allow planning");
        let report = run_trace(
            &pool,
            &config,
            &ServiceSpec::new(kind, latency.clone()),
            &sub_trace,
            &mut KairosScheduler::with_priors(kind, &latency),
            &SimulationOptions::default(),
        );
        iso_viol_num += report.violations();
        iso_offered += report.offered;
        iso_cost += config.cost(&pool);
    }
    let iso_viol = iso_viol_num as f64 / iso_offered.max(1) as f64;

    println!(
        "\n{:<22}{:>14}{:>18}",
        "scheme", "violations %", "mean cost $/hr"
    );
    println!(
        "{:<22}{:>14.2}{:>18.3}",
        "SHARED(facade)",
        shared_viol * 100.0,
        shared_cost
    );
    println!(
        "{:<22}{:>14.2}{:>18.3}",
        "ISOLATED(3x1/3)",
        iso_viol * 100.0,
        iso_cost
    );
    println!("\nPer-model breakdown under the shared budget:");
    println!(
        "{:<10}{:>10}{:>12}{:>14}{:>14}{:>16}",
        "model", "offered", "violations", "p99 (ms)", "QoS (ms)", "budget ($/hr)"
    );
    for (row, &kind) in outcome.per_model().iter().zip(models.iter()) {
        println!(
            "{:<10}{:>10}{:>12}{:>14.2}{:>14.1}{:>16.3}",
            kind.to_string(),
            row.offered,
            row.violations,
            row.p99_latency_us as f64 / 1000.0,
            kind.qos_us() as f64 / 1000.0,
            outcome.last_budget_split[row.model.index()]
        );
    }
    println!(
        "--> facade replanned {} time(s), {} reconfiguration(s)",
        outcome.replans,
        outcome.reconfigs.len()
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multimodel.json");
    let mut json = vec![
        format!(
            "{{\"name\":\"fig_multimodel/SHARED(facade)\",\"violation_fraction\":{shared_viol:.4},\
             \"mean_cost_per_hour\":{shared_cost:.4}}}"
        ),
        format!(
            "{{\"name\":\"fig_multimodel/ISOLATED(3x1/3)\",\"violation_fraction\":{iso_viol:.4},\
             \"mean_cost_per_hour\":{iso_cost:.4}}}"
        ),
    ];
    json.extend(
        outcome
            .per_model()
            .iter()
            .zip(models.iter())
            .map(|(row, kind)| {
                format!(
                    "{{\"name\":\"fig_multimodel/shared/{}\",\"violation_fraction\":{:.4},\
             \"p99_us\":{}}}",
                    kind,
                    row.violation_fraction(),
                    row.p99_latency_us
                )
            }),
    );
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_multimodel.json"),
        Err(e) => println!("--> could not write BENCH_multimodel.json: {e}"),
    }
}

/// One scheme's outcome of the spot-market experiment.
struct SpotRow {
    scheme: &'static str,
    violation_fraction: f64,
    /// Time-weighted billed dollars per hour (the engine's price integral).
    billed_per_hour: f64,
    preempted_instances: usize,
    requeued_queries: usize,
}

/// Cloud-market serving — KAIROS planning over purchase options (on-demand
/// plus deeply discounted preemptible spot) through a preemption storm, vs
/// the same loop restricted to on-demand capacity and reactive autoscalers
/// on either purchase option.  Records time-weighted billed $/hr, violation
/// percentage and preemption counts to `BENCH_spot.json`.
fn figure_spot() {
    let fast = std::env::var("KAIROS_FIG_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let duration_s = if fast { 6.0 } else { 12.0 };
    let (rate_qps, budget) = (60.0, 2.5);
    let storms_us: Vec<u64> = vec![
        (duration_s * 0.4 * 1e6) as u64,
        (duration_s * 0.65 * 1e6) as u64,
    ];
    section("Spot market: purchase-option planning under a preemption storm (RM2)");
    println!(
        "{rate_qps} QPS steady, {duration_s} s, budget {budget} $/hr; GPU-spot storms at \
         {:?} s (200 ms notice), spot prices: g4dn 0.17, r5n 0.05 $/hr",
        storms_us
            .iter()
            .map(|&t| t as f64 / 1e6)
            .collect::<Vec<_>>()
    );

    let model = ModelKind::Rm2;
    let latency = paper_calibration();
    let service = ServiceSpec::new(model, latency.clone());
    let catalog = OfferingCatalog::new(vec![
        Offering::on_demand(ec2::g4dn_xlarge()),
        Offering::on_demand(ec2::r5n_large()),
        Offering::spot(
            ec2::g4dn_xlarge(),
            PriceTrace::constant(0.17),
            PreemptionProcess::At {
                notices_us: storms_us.clone(),
            },
        ),
        Offering::spot(
            ec2::r5n_large(),
            PriceTrace::constant(0.05),
            PreemptionProcess::None,
        ),
    ]);
    let market = std::sync::Arc::new(TraceMarket::new(catalog.clone()));
    let effective = catalog.effective_pool();
    let trace = kairos_workload::TraceSpec::production(rate_qps, duration_s, 4242).generate();

    let serving_options = ServingOptions::default()
        .budget(budget)
        .replan_every(500_000)
        .provisioning_delay(300_000)
        .spot_cooldown(2_000_000);
    let row_of = |scheme: &'static str, report: &SimReport| SpotRow {
        scheme,
        violation_fraction: report.violation_fraction(),
        billed_per_hour: report.billed_cost_per_hour(),
        preempted_instances: report.preempted_instances,
        requeued_queries: report.requeued_queries,
    };

    // KAIROS over the full market: plans a spot/on-demand mix, replans on
    // notices (cooldown prices the stormed offering out), re-buys after.
    let mut market_system = ServingSystem::with_market(
        catalog.clone(),
        market.clone(),
        model,
        Some(latency.clone()),
        serving_options,
    );
    market_system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let market_initial = market_system
        .plan_for_demand(rate_qps)
        .expect("priors allow planning");
    let market_outcome = market_system.run(&market_initial, &service, &trace);
    let market_row = row_of("KAIROS(market)", &market_outcome.report);

    // The same loop restricted to on-demand purchase options.
    let od_pool = PoolSpec::new(vec![ec2::g4dn_xlarge(), ec2::r5n_large()]);
    let mut od_system = ServingSystem::new(
        od_pool.clone(),
        model,
        Some(latency.clone()),
        serving_options,
    );
    od_system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let od_initial = od_system
        .plan_for_demand(rate_qps)
        .expect("priors allow planning");
    let od_outcome = od_system.run(&od_initial, &service, &trace);
    let od_row = row_of("KAIROS(od-only)", &od_outcome.report);

    // Reactive autoscaler riding the spot GPU discount: cheap until the
    // storm wipes its fleet, then it rebuys one instance at a time.
    let spot_scaler = ReactiveAutoscaler::new(AutoscalerOptions {
        cooldown_us: 500_000,
        provisioning_delay_us: 300_000,
        scale_type: Some(2),
        ..Default::default()
    });
    let spot_reactive =
        spot_scaler.run_with_market(&effective, 2, &service, &trace, Some(market.as_ref()));
    let spot_reactive_row = row_of("REACTIVE(spot)", &spot_reactive.report);

    // Reactive autoscaler on on-demand base capacity (storm-immune, pricey).
    let od_scaler = ReactiveAutoscaler::new(AutoscalerOptions {
        cooldown_us: 500_000,
        provisioning_delay_us: 300_000,
        ..Default::default()
    });
    let od_reactive =
        od_scaler.run_with_market(&effective, 2, &service, &trace, Some(market.as_ref()));
    let od_reactive_row = row_of("REACTIVE(od)", &od_reactive.report);

    let rows = [market_row, od_row, spot_reactive_row, od_reactive_row];
    println!(
        "\n{:<18}{:>14}{:>16}{:>12}{:>10}",
        "scheme", "violations %", "billed $/hr", "preempted", "requeued"
    );
    for row in &rows {
        println!(
            "{:<18}{:>14.2}{:>16.3}{:>12}{:>10}",
            row.scheme,
            row.violation_fraction * 100.0,
            row.billed_per_hour,
            row.preempted_instances,
            row.requeued_queries
        );
    }
    println!(
        "--> KAIROS(market): {} reconfiguration(s), {} market-triggered, \
         {} preemption notice(s); final active cluster {}",
        market_outcome.reconfigs.len(),
        market_outcome
            .reconfigs
            .iter()
            .filter(|r| r.trigger == kairos_core::ReplanTrigger::Market)
            .count(),
        market_outcome.report.preemption_notices,
        market_outcome.final_active
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spot.json");
    let json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":\"fig_spot/{}\",\"violation_fraction\":{:.4},\
                 \"billed_per_hour\":{:.4},\"preempted_instances\":{},\
                 \"requeued_queries\":{}}}",
                row.scheme,
                row.violation_fraction,
                row.billed_per_hour,
                row.preempted_instances,
                row.requeued_queries
            )
        })
        .collect();
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_spot.json"),
        Err(e) => println!("--> could not write BENCH_spot.json: {e}"),
    }
}

/// Fig. 13 — actual throughput of the top-20 configurations ranked by upper
/// bound; Kairos's pick is near-optimal.
fn figure13() {
    section("Figure 13: actual throughput of the top-20 upper-bound configurations");
    for model in ModelKind::ALL {
        let ctx = ExperimentContext::new(model);
        let sample = ctx.sample(2500);
        let plan = ctx.kairos_plan();
        let top: Vec<(Config, f64)> = plan.top(20).to_vec();
        let best_overall = plan
            .ranked
            .iter()
            .map(|(c, _)| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample))
            .fold(f64::MIN, f64::max);

        println!("\n{model}: Kairos picked {} (marked *)", plan.chosen);
        println!(
            "{:<6}{:>14}{:>14}{:>22}",
            "rank", "UB (QPS)", "actual (QPS)", "% of best achievable"
        );
        for (rank, (config, ub)) in top.iter().enumerate() {
            let actual = oracle_throughput(&ctx.pool, config, model, &ctx.latency, &sample);
            let marker = if *config == plan.chosen { "*" } else { " " };
            println!(
                "{:<6}{:>14.1}{:>14.1}{:>21.1}%{}",
                rank + 1,
                ub,
                actual,
                actual / best_overall * 100.0,
                marker
            );
        }
    }
}

/// Fig. 14 — RM2 top-UB configurations under different distribution schemes,
/// with the upper bound and the oracle reference.
fn figure14() {
    section("Figure 14: co-design of configuration search and query distribution (RM2)");
    let ctx = ExperimentContext::new(ModelKind::Rm2);
    let sample = ctx.sample(2500);
    let plan = ctx.kairos_plan();
    let estimator = ThroughputEstimator::new(
        ctx.pool.clone(),
        ctx.model,
        ctx.latency.clone(),
        sample.clone(),
    );

    println!(
        "{:<6}{:<14}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "rank", "config", "RIBBON", "DRS", "CLKWRK", "KAIROS", "UB", "ORCL"
    );
    // The three uniform-scheduler columns are independent capacity ramps per
    // configuration: sweep each column in parallel.  DRS stays per-config
    // because its tuned threshold depends on the configuration.
    let top: Vec<Config> = plan.top(12).iter().map(|(c, _)| c.clone()).collect();
    let ribbons = ctx.measure_throughput_many(&top, SchedulerKind::Ribbon);
    let clkwrks = ctx.measure_throughput_many(&top, SchedulerKind::Clockwork);
    let kairoses = ctx.measure_throughput_many(&top, SchedulerKind::Kairos);
    for (rank, config) in top.iter().enumerate() {
        let drs = ctx.measure_throughput(config, SchedulerKind::Drs(ctx.drs_threshold(config)));
        let ub = estimator.estimate(config);
        let orcl = oracle_throughput(&ctx.pool, config, ctx.model, &ctx.latency, &sample);
        println!(
            "{:<6}{:<14}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}",
            rank + 1,
            config.to_string(),
            ribbons[rank],
            drs,
            clkwrks[rank],
            kairoses[rank],
            ub,
            orcl
        );
    }
}

/// Fig. 15 — robustness to a 4x budget and a 20 % higher QoS target.
fn figure15() {
    section("Figure 15: robustness to budget scale (4x) and relaxed QoS (+20 %)");
    println!(
        "{:<10}{:>22}{:>22}",
        "model", "4x budget speedup", "+20% QoS speedup"
    );
    for model in ModelKind::ALL {
        // (a) 4x budget.
        let mut ctx = ExperimentContext::new(model);
        ctx.budget = 10.0;
        let plan = ctx.kairos_plan();
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);
        let homo = ctx.best_homogeneous_throughput(SchedulerKind::Fcfs);
        let budget_speedup = kairos / homo.max(1e-9);

        // (b) QoS target 20 % higher (more relaxed).
        let mut ctx = ExperimentContext::new(model);
        let qos_scale = 1.2;
        for ty in ctx.pool.clone().types() {
            // Scale QoS by loosening every latency profile equivalently: the
            // simulator's QoS comes from the model spec, so instead we scale
            // the latency table down by 1/1.2 which is equivalent.
            let p = ctx.latency.expect(model, &ty.name);
            ctx.latency.insert(
                model,
                &ty.name,
                kairos_models::LatencyProfile::new(
                    p.intercept_ms / qos_scale,
                    p.slope_ms / qos_scale,
                ),
            );
        }
        let plan = ctx.kairos_plan();
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);
        let homo = ctx.best_homogeneous_throughput(SchedulerKind::Fcfs);
        let qos_speedup = kairos / homo.max(1e-9);

        println!(
            "{:<10}{:>22.2}{:>22.2}",
            model.to_string(),
            budget_speedup,
            qos_speedup
        );
    }
}

/// Fig. 16 — robustness to Gaussian batch sizes and 5 % latency noise.
fn figure16() {
    section("Figure 16: robustness to Gaussian batch sizes and latency noise");
    println!(
        "{:<10}{:>24}{:>24}",
        "model", "Gaussian-mix speedup", "5% noise speedup"
    );
    for model in ModelKind::ALL {
        // (a) Gaussian batch-size distribution.
        let mut ctx = ExperimentContext::new(model);
        ctx.batch_sizes = BatchSizeDistribution::gaussian_default();
        let plan = ctx.kairos_plan();
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);
        let homo = ctx.best_homogeneous_throughput(SchedulerKind::Fcfs);
        let gaussian_speedup = kairos / homo.max(1e-9);

        // (b) 5 % Gaussian white noise on service latency.
        let ctx = ExperimentContext::new(model);
        let plan = ctx.kairos_plan();
        let noisy = {
            let mut opts = ctx.capacity.clone();
            opts.batch_sizes = ctx.batch_sizes.clone();
            let service = kairos_sim::ServiceSpec::with_noise(
                model,
                ctx.latency.clone(),
                NoiseModel::Gaussian { std_fraction: 0.05 },
            );
            let kairos =
                kairos_sim::allowable_throughput(&ctx.pool, &plan.chosen, &service, &opts, || {
                    kairos_bench::scheduler_factory(SchedulerKind::Kairos, model, &ctx.latency)
                })
                .allowable_qps;
            let homo_cfg = best_homogeneous(&ctx.pool, ctx.budget);
            let homo =
                kairos_sim::allowable_throughput(&ctx.pool, &homo_cfg, &service, &opts, || {
                    kairos_bench::scheduler_factory(SchedulerKind::Fcfs, model, &ctx.latency)
                })
                .allowable_qps
                    * (ctx.budget / homo_cfg.cost(&ctx.pool));
            kairos / homo.max(1e-9)
        };
        println!(
            "{:<10}{:>24.2}{:>24.2}",
            model.to_string(),
            gaussian_speedup,
            noisy
        );
    }
}

fn main() {
    // Figure selection: first CLI argument, or the KAIROS_FIGS environment
    // variable (comma-separated list, e.g. "fig1,fig7,fig8"); default is all.
    let filter: Option<String> = std::env::args()
        .nth(1)
        .filter(|a| a.starts_with("fig") || a == "all")
        .or_else(|| std::env::var("KAIROS_FIGS").ok());
    let run = |name: &str| {
        filter
            .as_deref()
            .map(|f| f == "all" || f.split(',').any(|part| part.trim() == name))
            .unwrap_or(true)
    };

    println!("Kairos figure reproduction harness (simulator substrate)");
    println!("Set KAIROS_FIG_FAST=1 for shorter capacity probes.");

    if run("fig1") {
        figure1();
    }
    if run("fig2") {
        figure2();
    }
    if run("fig3") {
        figure3();
    }
    if run("fig7") {
        figure7();
    }
    if run("fig8") {
        figure8();
    }
    if run("fig9") {
        figure9();
    }
    if run("fig10") || run("fig11") {
        figure10_11();
    }
    if run("fig12") {
        figure12();
    }
    if run("fig12") || run("fig12_shift") {
        figure12_load_shift();
    }
    if run("fig_multimodel") || run("fig_mm") {
        figure_multimodel();
    }
    if run("fig_spot") {
        figure_spot();
    }
    if run("fig13") {
        figure13();
    }
    if run("fig14") {
        figure14();
    }
    if run("fig15") {
        figure15();
    }
    if run("fig16") {
        figure16();
    }
    println!("\nDone.");
}

//! Figure/table reproduction harness (`harness = false`).
//!
//! Running `cargo bench -p kairos-bench --bench figures` regenerates every
//! figure of the paper's evaluation (Sec. 4, 7 and 8) on the simulator
//! substrate and prints paper-style rows.  EXPERIMENTS.md records one run of
//! this output next to the paper's numbers.
//!
//! Pass a figure id as the first CLI argument (e.g. `fig8`) to run a single
//! experiment; with no argument every experiment runs in order.  Set
//! `KAIROS_FIG_FAST=1` to use shorter capacity probes.

use kairos_baselines::{
    best_oracle_throughput, oracle_throughput, BayesianOptimization, ConfigSearch,
    ExhaustiveSearch, GeneticSearch, RandomSearch, SearchSpace, SimulatedAnnealing,
};
use kairos_bench::figures::{
    figure12_load_shift, figure_batching, figure_multimodel, figure_outage, figure_scale,
    figure_serverless, figure_spot, figure_variants, section,
};
use kairos_bench::{ExperimentContext, SchedulerKind};
use kairos_core::{kairos_plus_search, upper_bound_single, SingleAuxInputs, ThroughputEstimator};
use kairos_models::{best_homogeneous, Config, ModelKind, NoiseModel};
use kairos_workload::BatchSizeDistribution;

/// Fig. 1 — heterogeneous vs best homogeneous configurations for RM2 under a
/// fixed budget (three-type pool, Ribbon's FCFS distribution as in Sec. 4).
fn figure1() {
    section("Figure 1: heterogeneous vs homogeneous configurations (RM2, budget 2.5 $/hr)");
    let ctx = ExperimentContext::figure1(ModelKind::Rm2);
    let configs = vec![
        ("(4, 0, 0) homogeneous", Config::new(vec![4, 0, 0])),
        ("(3, 1, 3)", Config::new(vec![3, 1, 3])),
        ("(2, 0, 9)", Config::new(vec![2, 0, 9])),
        ("(1, 4, 2)", Config::new(vec![1, 4, 2])),
    ];
    println!(
        "{:<24}{:>12}{:>18}",
        "configuration", "cost $/hr", "throughput (QPS)"
    );
    // The four ramps are independent: fan them out over the cores.
    let candidates: Vec<Config> = configs.iter().map(|(_, c)| c.clone()).collect();
    let measured = ctx.measure_throughput_many(&candidates, SchedulerKind::Ribbon);
    for ((label, config), mut qps) in configs.into_iter().zip(measured) {
        let cost = config.cost(&ctx.pool);
        if config.is_homogeneous(&ctx.pool) {
            // The paper scales the homogeneous configuration's throughput up
            // proportionally to its unused budget.
            qps *= ctx.budget / cost;
        }
        println!("{label:<24}{cost:>12.3}{qps:>18.1}");
    }
}

/// Fig. 2 — simulated-annealing exploration: most explored configurations are
/// worse than the homogeneous baseline.
fn figure2() {
    section(
        "Figure 2: throughput gain over homogeneous while exploring with simulated annealing (RM2)",
    );
    let ctx = ExperimentContext::figure1(ModelKind::Rm2);
    let sample = ctx.sample(2500);
    let homo = best_homogeneous(&ctx.pool, ctx.budget);
    let homo_qps = oracle_throughput(&ctx.pool, &homo, ctx.model, &ctx.latency, &sample)
        * (ctx.budget / homo.cost(&ctx.pool));

    let space = SearchSpace::new(ctx.pool.clone(), ctx.budget);
    let mut eval = |c: &Config| oracle_throughput(&ctx.pool, c, ctx.model, &ctx.latency, &sample);
    let out = SimulatedAnnealing {
        seed: 4,
        ..Default::default()
    }
    .search(&space, &mut eval, 40);

    let mut worse = 0usize;
    println!(
        "{:<8}{:>16}{:>22}",
        "step", "explored config", "gain over homo (%)"
    );
    for (step, (config, qps)) in out.history.iter().enumerate() {
        let gain = (qps - homo_qps) / homo_qps * 100.0;
        if gain < 0.0 {
            worse += 1;
        }
        println!("{:<8}{:>16}{:>22.1}", step + 1, config.to_string(), gain);
    }
    println!(
        "--> {} of {} explored configurations are worse than homogeneous ({:.0} %)",
        worse,
        out.history.len(),
        worse as f64 / out.history.len() as f64 * 100.0
    );
}

/// Fig. 3 — the same configurations under different query-distribution
/// mechanisms (RIBBON / DRS / CLKWRK / ORCL).
fn figure3() {
    section("Figure 3: query-distribution mechanism matters (RM2)");
    let ctx = ExperimentContext::figure1(ModelKind::Rm2);
    let sample = ctx.sample(2500);
    let configs = vec![
        Config::new(vec![4, 0, 0]),
        Config::new(vec![2, 0, 9]),
        Config::new(vec![3, 1, 3]),
    ];
    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}",
        "config", "RIBBON", "DRS", "CLKWRK", "ORCL"
    );
    // Uniform-scheduler columns sweep in parallel; the DRS column stays
    // per-config because its tuned threshold depends on the configuration.
    let ribbons = ctx.measure_throughput_many(&configs, SchedulerKind::Ribbon);
    let clkwrks = ctx.measure_throughput_many(&configs, SchedulerKind::Clockwork);
    for ((config, ribbon), clkwrk) in configs.iter().zip(ribbons).zip(clkwrks) {
        let drs = ctx.measure_throughput(config, SchedulerKind::Drs(ctx.drs_threshold(config)));
        let orcl = oracle_throughput(&ctx.pool, config, ctx.model, &ctx.latency, &sample);
        println!(
            "{:<14}{:>10.1}{:>10.1}{:>10.1}{:>10.1}",
            config.to_string(),
            ribbon,
            drs,
            clkwrk,
            orcl
        );
    }
}

/// Fig. 7 — the two worked upper-bound scenarios (exact numbers).
fn figure7() {
    section("Figure 7: upper-bound calculation scenarios");
    let s1 = SingleAuxInputs {
        base_nodes: 1,
        aux_nodes: 1,
        q_base: 100.0,
        q_base_splus: 90.0,
        q_aux: 150.0,
        fraction_small: 0.6,
    };
    let s2 = SingleAuxInputs {
        q_aux: 140.0,
        fraction_small: 0.7,
        ..s1
    };
    println!(
        "Scenario 1 (base bottleneck):      QPS_max = {:.0} (paper: 225)",
        upper_bound_single(&s1)
    );
    println!(
        "Scenario 2 (auxiliary bottleneck): QPS_max = {:.0} (paper: 233)",
        upper_bound_single(&s2)
    );
}

/// Fig. 8 — Kairos vs the optimal homogeneous configuration, all five models.
fn figure8() {
    section("Figure 8: Kairos vs optimal homogeneous (normalized throughput)");
    println!(
        "{:<10}{:>16}{:>18}{:>18}{:>12}",
        "model", "Kairos config", "Kairos QPS", "homogeneous QPS", "speedup"
    );
    for model in ModelKind::ALL {
        let ctx = ExperimentContext::new(model);
        let plan = ctx.kairos_plan();
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);
        let homo = ctx.best_homogeneous_throughput(SchedulerKind::Fcfs);
        println!(
            "{:<10}{:>16}{:>18.1}{:>18.1}{:>12.2}",
            model.to_string(),
            plan.chosen.to_string(),
            kairos,
            homo,
            kairos / homo.max(1e-9)
        );
    }
}

/// Fig. 9 — Kairos and Kairos+ vs RIBBON / DRS / CLKWRK / ORCL.
fn figure9() {
    section("Figure 9: throughput vs state-of-the-art (normalized to RIBBON)");
    println!(
        "{:<10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "model", "RIBBON", "DRS", "CLKWRK", "KAIROS", "KAIROS+", "ORCL"
    );
    for model in ModelKind::ALL {
        let ctx = ExperimentContext::new(model);
        let sample = ctx.sample(2500);
        let plan = ctx.kairos_plan();

        // Competing schemes are given the best configuration found by oracle
        // search, as in the paper's conservative setup.
        let configs: Vec<Config> = plan.ranked.iter().map(|(c, _)| c.clone()).collect();
        let (best_cfg, orcl) =
            best_oracle_throughput(&ctx.pool, &configs, model, &ctx.latency, &sample);
        let best_cfg = best_cfg.unwrap_or_else(|| plan.chosen.clone());

        let ribbon = ctx.measure_throughput(&best_cfg, SchedulerKind::Ribbon);
        let drs =
            ctx.measure_throughput(&best_cfg, SchedulerKind::Drs(ctx.drs_threshold(&best_cfg)));
        let clkwrk = ctx.measure_throughput(&best_cfg, SchedulerKind::Clockwork);
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);

        // Kairos+ refines the configuration with a few real evaluations.
        let plus = kairos_plus_search(
            &plan.ranked,
            |c| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample),
            Some(10),
        );
        let plus_cfg = plus.best_config.unwrap_or_else(|| plan.chosen.clone());
        let kairos_plus = ctx
            .measure_throughput(&plus_cfg, SchedulerKind::Kairos)
            .max(kairos);

        let norm = ribbon.max(1e-9);
        println!(
            "{:<10}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
            model.to_string(),
            1.0,
            drs / norm,
            clkwrk / norm,
            kairos / norm,
            kairos_plus / norm,
            orcl / norm
        );
    }
}

/// Fig. 10 / Fig. 11 — number of online evaluations needed to find the
/// optimal configuration, Kairos+ vs competing search algorithms (all with
/// sub-configuration pruning, oracle model as the expensive evaluator).
fn figure10_11() {
    section("Figures 10 & 11: online evaluations to reach the optimum (% of search space)");
    println!(
        "{:<10}{:>8}{:>10}{:>10}{:>10}{:>12}{:>10}",
        "model", "space", "KAIROS+", "RAND", "GENE", "RIBBON(BO)", "ANNEAL"
    );
    for model in ModelKind::ALL {
        let ctx = ExperimentContext::new(model);
        let sample = ctx.sample(2500);
        let plan = ctx.kairos_plan();
        let space = SearchSpace::new(ctx.pool.clone(), ctx.budget);
        let space_size = space.len();

        let oracle_eval =
            |c: &Config| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample);

        // Ground-truth optimum via exhaustive search.
        let mut eval = oracle_eval;
        let exhaustive = ExhaustiveSearch.search(&space, &mut eval, usize::MAX);
        let optimum = exhaustive.best.as_ref().unwrap().1;
        let target = optimum * 0.999;

        let plus = kairos_plus_search(&plan.ranked, oracle_eval, None);
        let plus_evals = plus
            .evaluated
            .iter()
            .position(|(_, v)| *v >= target)
            .map(|p| p + 1)
            .unwrap_or(plus.evaluations());

        let budget = space_size; // allow the baselines to run to exhaustion
        let mut eval = oracle_eval;
        let rand_out = RandomSearch { seed: 5 }.search(&space, &mut eval, budget);
        let mut eval = oracle_eval;
        let gene_out = GeneticSearch {
            seed: 5,
            ..Default::default()
        }
        .search(&space, &mut eval, budget);
        let mut eval = oracle_eval;
        let bo_out = BayesianOptimization {
            seed: 5,
            ..Default::default()
        }
        .search(&space, &mut eval, 60);
        let mut eval = oracle_eval;
        let sa_out = SimulatedAnnealing {
            seed: 5,
            ..Default::default()
        }
        .search(&space, &mut eval, budget);

        let pct = |n: Option<usize>, fallback: usize| {
            let n = n.unwrap_or(fallback);
            n as f64 / space_size as f64 * 100.0
        };
        println!(
            "{:<10}{:>8}{:>9.1}%{:>9.1}%{:>9.1}%{:>11.1}%{:>9.1}%",
            model.to_string(),
            space_size,
            plus_evals as f64 / space_size as f64 * 100.0,
            pct(
                rand_out.evaluations_to_reach(target),
                rand_out.evaluations()
            ),
            pct(
                gene_out.evaluations_to_reach(target),
                gene_out.evaluations()
            ),
            pct(bo_out.evaluations_to_reach(target), bo_out.evaluations()),
            pct(sa_out.evaluations_to_reach(target), sa_out.evaluations()),
        );
    }
}

/// Fig. 12 — transient behaviour when the batch-size distribution shifts from
/// log-normal to Gaussian: throughput of the configurations each scheme
/// evaluates during its search, vs Kairos's one-shot choice.
fn figure12() {
    section("Figure 12: reaction to a load change (RM2, log-normal -> Gaussian)");
    let mut ctx = ExperimentContext::new(ModelKind::Rm2);
    ctx.batch_sizes = BatchSizeDistribution::gaussian_default();
    let sample = ctx.sample(2500);
    let model = ctx.model;

    // Kairos replans in one shot from the new monitor window.
    let plan = ctx.kairos_plan();
    let kairos_now = oracle_throughput(&ctx.pool, &plan.chosen, model, &ctx.latency, &sample);

    // Competing schemes restart their searches and walk through configurations.
    let space = SearchSpace::new(ctx.pool.clone(), ctx.budget);
    let mut eval = |c: &Config| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample);
    let bo = BayesianOptimization {
        seed: 9,
        ..Default::default()
    }
    .search(&space, &mut eval, 20);
    let mut eval = |c: &Config| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample);
    let sa = SimulatedAnnealing {
        seed: 9,
        ..Default::default()
    }
    .search(&space, &mut eval, 20);
    let plus = kairos_plus_search(
        &plan.ranked,
        |c| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample),
        Some(20),
    );

    println!(
        "KAIROS one-shot configuration {} -> {:.1} QPS under the new mix",
        plan.chosen, kairos_now
    );
    println!(
        "KAIROS+ finished after {} evaluations -> {:.1} QPS",
        plus.evaluations(),
        plus.best_throughput
    );
    println!(
        "\n{:<8}{:>18}{:>18}{:>14}",
        "step", "RIBBON(BO) QPS", "ANNEALING QPS", "KAIROS QPS"
    );
    let steps = bo.history.len().max(sa.history.len()).min(20);
    for i in 0..steps {
        let bo_v = bo.history.get(i).map(|(_, v)| *v).unwrap_or(f64::NAN);
        let sa_v = sa.history.get(i).map(|(_, v)| *v).unwrap_or(f64::NAN);
        println!(
            "{:<8}{:>18.1}{:>18.1}{:>14.1}",
            i + 1,
            bo_v,
            sa_v,
            kairos_now
        );
    }
}

/// Fig. 13 — actual throughput of the top-20 configurations ranked by upper
/// bound; Kairos's pick is near-optimal.
fn figure13() {
    section("Figure 13: actual throughput of the top-20 upper-bound configurations");
    for model in ModelKind::ALL {
        let ctx = ExperimentContext::new(model);
        let sample = ctx.sample(2500);
        let plan = ctx.kairos_plan();
        let top: Vec<(Config, f64)> = plan.top(20).to_vec();
        let best_overall = plan
            .ranked
            .iter()
            .map(|(c, _)| oracle_throughput(&ctx.pool, c, model, &ctx.latency, &sample))
            .fold(f64::MIN, f64::max);

        println!("\n{model}: Kairos picked {} (marked *)", plan.chosen);
        println!(
            "{:<6}{:>14}{:>14}{:>22}",
            "rank", "UB (QPS)", "actual (QPS)", "% of best achievable"
        );
        for (rank, (config, ub)) in top.iter().enumerate() {
            let actual = oracle_throughput(&ctx.pool, config, model, &ctx.latency, &sample);
            let marker = if *config == plan.chosen { "*" } else { " " };
            println!(
                "{:<6}{:>14.1}{:>14.1}{:>21.1}%{}",
                rank + 1,
                ub,
                actual,
                actual / best_overall * 100.0,
                marker
            );
        }
    }
}

/// Fig. 14 — RM2 top-UB configurations under different distribution schemes,
/// with the upper bound and the oracle reference.
fn figure14() {
    section("Figure 14: co-design of configuration search and query distribution (RM2)");
    let ctx = ExperimentContext::new(ModelKind::Rm2);
    let sample = ctx.sample(2500);
    let plan = ctx.kairos_plan();
    let estimator = ThroughputEstimator::new(
        ctx.pool.clone(),
        ctx.model,
        ctx.latency.clone(),
        sample.clone(),
    );

    println!(
        "{:<6}{:<14}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "rank", "config", "RIBBON", "DRS", "CLKWRK", "KAIROS", "UB", "ORCL"
    );
    // The three uniform-scheduler columns are independent capacity ramps per
    // configuration: sweep each column in parallel.  DRS stays per-config
    // because its tuned threshold depends on the configuration.
    let top: Vec<Config> = plan.top(12).iter().map(|(c, _)| c.clone()).collect();
    let ribbons = ctx.measure_throughput_many(&top, SchedulerKind::Ribbon);
    let clkwrks = ctx.measure_throughput_many(&top, SchedulerKind::Clockwork);
    let kairoses = ctx.measure_throughput_many(&top, SchedulerKind::Kairos);
    for (rank, config) in top.iter().enumerate() {
        let drs = ctx.measure_throughput(config, SchedulerKind::Drs(ctx.drs_threshold(config)));
        let ub = estimator.estimate(config);
        let orcl = oracle_throughput(&ctx.pool, config, ctx.model, &ctx.latency, &sample);
        println!(
            "{:<6}{:<14}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}",
            rank + 1,
            config.to_string(),
            ribbons[rank],
            drs,
            clkwrks[rank],
            kairoses[rank],
            ub,
            orcl
        );
    }
}

/// Fig. 15 — robustness to a 4x budget and a 20 % higher QoS target.
fn figure15() {
    section("Figure 15: robustness to budget scale (4x) and relaxed QoS (+20 %)");
    println!(
        "{:<10}{:>22}{:>22}",
        "model", "4x budget speedup", "+20% QoS speedup"
    );
    for model in ModelKind::ALL {
        // (a) 4x budget.
        let mut ctx = ExperimentContext::new(model);
        ctx.budget = 10.0;
        let plan = ctx.kairos_plan();
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);
        let homo = ctx.best_homogeneous_throughput(SchedulerKind::Fcfs);
        let budget_speedup = kairos / homo.max(1e-9);

        // (b) QoS target 20 % higher (more relaxed).
        let mut ctx = ExperimentContext::new(model);
        let qos_scale = 1.2;
        for ty in ctx.pool.clone().types() {
            // Scale QoS by loosening every latency profile equivalently: the
            // simulator's QoS comes from the model spec, so instead we scale
            // the latency table down by 1/1.2 which is equivalent.
            let p = ctx.latency.expect(model, &ty.name);
            ctx.latency.insert(
                model,
                &ty.name,
                kairos_models::LatencyProfile::new(
                    p.intercept_ms / qos_scale,
                    p.slope_ms / qos_scale,
                ),
            );
        }
        let plan = ctx.kairos_plan();
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);
        let homo = ctx.best_homogeneous_throughput(SchedulerKind::Fcfs);
        let qos_speedup = kairos / homo.max(1e-9);

        println!(
            "{:<10}{:>22.2}{:>22.2}",
            model.to_string(),
            budget_speedup,
            qos_speedup
        );
    }
}

/// Fig. 16 — robustness to Gaussian batch sizes and 5 % latency noise.
fn figure16() {
    section("Figure 16: robustness to Gaussian batch sizes and latency noise");
    println!(
        "{:<10}{:>24}{:>24}",
        "model", "Gaussian-mix speedup", "5% noise speedup"
    );
    for model in ModelKind::ALL {
        // (a) Gaussian batch-size distribution.
        let mut ctx = ExperimentContext::new(model);
        ctx.batch_sizes = BatchSizeDistribution::gaussian_default();
        let plan = ctx.kairos_plan();
        let kairos = ctx.measure_throughput(&plan.chosen, SchedulerKind::Kairos);
        let homo = ctx.best_homogeneous_throughput(SchedulerKind::Fcfs);
        let gaussian_speedup = kairos / homo.max(1e-9);

        // (b) 5 % Gaussian white noise on service latency.
        let ctx = ExperimentContext::new(model);
        let plan = ctx.kairos_plan();
        let noisy = {
            let mut opts = ctx.capacity.clone();
            opts.batch_sizes = ctx.batch_sizes.clone();
            let service = kairos_sim::ServiceSpec::with_noise(
                model,
                ctx.latency.clone(),
                NoiseModel::Gaussian { std_fraction: 0.05 },
            );
            let kairos =
                kairos_sim::allowable_throughput(&ctx.pool, &plan.chosen, &service, &opts, || {
                    kairos_bench::scheduler_factory(SchedulerKind::Kairos, model, &ctx.latency)
                })
                .allowable_qps;
            let homo_cfg = best_homogeneous(&ctx.pool, ctx.budget);
            let homo =
                kairos_sim::allowable_throughput(&ctx.pool, &homo_cfg, &service, &opts, || {
                    kairos_bench::scheduler_factory(SchedulerKind::Fcfs, model, &ctx.latency)
                })
                .allowable_qps
                    * (ctx.budget / homo_cfg.cost(&ctx.pool));
            kairos / homo.max(1e-9)
        };
        println!(
            "{:<10}{:>24.2}{:>24.2}",
            model.to_string(),
            gaussian_speedup,
            noisy
        );
    }
}

fn main() {
    // Large-scale replays (fig_scale) re-fault the same gigabytes every pass
    // without this; see the harness doc.
    kairos_bench::tune_allocator_for_replay();
    // Figure selection: first CLI argument, or the KAIROS_FIGS environment
    // variable (comma-separated list, e.g. "fig1,fig7,fig8"); default is all.
    let filter: Option<String> = std::env::args()
        .nth(1)
        .filter(|a| a.starts_with("fig") || a == "all")
        .or_else(|| std::env::var("KAIROS_FIGS").ok());
    let run = |name: &str| {
        filter
            .as_deref()
            .map(|f| f == "all" || f.split(',').any(|part| part.trim() == name))
            .unwrap_or(true)
    };

    println!("Kairos figure reproduction harness (simulator substrate)");
    println!("Set KAIROS_FIG_FAST=1 for shorter capacity probes.");

    if run("fig1") {
        figure1();
    }
    if run("fig2") {
        figure2();
    }
    if run("fig3") {
        figure3();
    }
    if run("fig7") {
        figure7();
    }
    if run("fig8") {
        figure8();
    }
    if run("fig9") {
        figure9();
    }
    if run("fig10") || run("fig11") {
        figure10_11();
    }
    if run("fig12") {
        figure12();
    }
    if run("fig12") || run("fig12_shift") {
        figure12_load_shift();
    }
    if run("fig_multimodel") || run("fig_mm") {
        figure_multimodel();
    }
    if run("fig_spot") {
        figure_spot();
    }
    if run("fig_scale") {
        figure_scale();
    }
    if run("fig_batching") {
        figure_batching();
    }
    if run("fig_outage") {
        figure_outage();
    }
    if run("fig_variants") {
        figure_variants();
    }
    if run("fig_serverless") {
        figure_serverless();
    }
    if run("fig13") {
        figure13();
    }
    if run("fig14") {
        figure14();
    }
    if run("fig15") {
        figure15();
    }
    if run("fig16") {
        figure16();
    }
    println!("\nDone.");
}

//! Criterion benchmarks for the discrete-event serving simulator: how fast a
//! trace replay runs under the different scheduling policies.  This bounds the
//! cost of every allowable-throughput probe used by the figure harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kairos_bench::{scheduler_factory, SchedulerKind};
use kairos_models::{calibration::paper_calibration, ec2, Config, ModelKind, PoolSpec};
use kairos_sim::{run_trace, ServiceSpec, SimulationOptions};
use kairos_workload::TraceSpec;
use std::hint::black_box;

fn bench_trace_replay(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Wnd;
    let service = ServiceSpec::new(model, latency.clone());
    let config = Config::new(vec![2, 0, 4, 0]);
    let trace = TraceSpec::production(300.0, 1.0, 5).generate();

    let mut group = c.benchmark_group("trace_replay_300qps_1s");
    group.sample_size(10);
    for kind in [
        SchedulerKind::Kairos,
        SchedulerKind::Ribbon,
        SchedulerKind::Drs(280),
        SchedulerKind::Clockwork,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let mut scheduler = scheduler_factory(kind, model, &latency);
                black_box(run_trace(
                    &pool,
                    &config,
                    &service,
                    &trace,
                    scheduler.as_mut(),
                    &SimulationOptions::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_replay);
criterion_main!(benches);

//! Criterion benchmarks for the discrete-event serving simulator: how fast a
//! trace replay runs under the different scheduling policies.  This bounds the
//! cost of every allowable-throughput probe used by the figure harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kairos_baselines::ClockworkScheduler;
use kairos_bench::{scheduler_factory, SchedulerKind};
use kairos_models::{
    calibration::paper_calibration, ec2, Config, FailureDomain, FaultEvent, FaultProcess,
    ModelKind, PoolSpec,
};
use kairos_sim::{
    allowable_throughput, run_trace, run_trace_naive, BatchingOptions, CapacityOptions,
    CapacityProber, ClusterSpec, FcfsScheduler, Scheduler, ServiceSpec, ShardedEngine, SharingMode,
    SharingOptions, SimulationOptions,
};
use kairos_workload::{BatchSizeDistribution, MixSpec, MixedTraceSpec, TraceSpec};
use std::hint::black_box;

fn bench_trace_replay(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Wnd;
    let service = ServiceSpec::new(model, latency.clone());
    let config = Config::new(vec![2, 0, 4, 0]);
    let trace = TraceSpec::production(300.0, 1.0, 5).generate();

    let mut group = c.benchmark_group("trace_replay_300qps_1s");
    group.sample_size(10);
    for kind in [
        SchedulerKind::Kairos,
        SchedulerKind::Ribbon,
        SchedulerKind::Drs(280),
        SchedulerKind::Clockwork,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut scheduler = scheduler_factory(kind, model, &latency);
                    black_box(run_trace(
                        &pool,
                        &config,
                        &service,
                        &trace,
                        scheduler.as_mut(),
                        &SimulationOptions::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Incremental `SimEngine` vs the preserved per-event-rebuild reference on a
/// 50k-query production trace — the regression gate for the engine refactor:
/// the incremental views must deliver at least a 2x speedup at identical
/// output.
///
/// Clockwork is the showcase scheduler because it queues queries at busy
/// instances, so the naive path recomputes `nominal_latency_ms` over every
/// local queue entry on every event (O(events × instances × queue-depth));
/// the incremental engine keeps per-instance `free_at_us` as a running value.
/// The trace rate (2.5 kQPS on a ~2.2 kQPS configuration) mildly overloads
/// the pool so local queues actually carry depth, as they do during every
/// allowable-throughput probe at the QoS boundary.  An FCFS pair (idle-only
/// dispatch, so queue depth stays 0) isolates the remaining constant-factor
/// win of the persistent views and the gap-closing central-queue sweep.
fn bench_engine_vs_naive_50k(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Wnd;
    let service = ServiceSpec::new(model, latency.clone());
    let config = Config::new(vec![8, 4, 8, 4]);
    let trace = TraceSpec::production(2_500.0, 20.0, 17).generate();
    assert!(
        trace.len() >= 50_000,
        "want a 50k-query trace, got {}",
        trace.len()
    );
    let opts = SimulationOptions::default();

    let mut group = c.benchmark_group("trace_replay_50k");
    group.sample_size(10);
    group.bench_function("clockwork_sim_engine", |b| {
        b.iter(|| {
            let mut scheduler = ClockworkScheduler::new(model, latency.clone());
            black_box(run_trace(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &opts,
            ))
        })
    });
    group.bench_function("clockwork_run_trace_naive", |b| {
        b.iter(|| {
            let mut scheduler = ClockworkScheduler::new(model, latency.clone());
            black_box(run_trace_naive(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &opts,
            ))
        })
    });
    group.bench_function("fcfs_sim_engine", |b| {
        b.iter(|| {
            let mut scheduler = FcfsScheduler::new();
            black_box(run_trace(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &opts,
            ))
        })
    });
    group.bench_function("fcfs_run_trace_naive", |b| {
        b.iter(|| {
            let mut scheduler = FcfsScheduler::new();
            black_box(run_trace_naive(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &opts,
            ))
        })
    });
    // The market-attached replay: same 50k-query trace with a constant
    // market bound to the engine, so per-instance billing integrals and the
    // market event plumbing are on the measured path.  Its budget entry in
    // BENCH_budget.json gates the preemption-era engine against silently
    // regressing the allocation-free hot loop.
    let market = kairos_models::ConstantMarket::from_pool(&pool);
    group.bench_function("fcfs_sim_engine_market", |b| {
        b.iter(|| {
            let mut scheduler = FcfsScheduler::new();
            black_box(
                kairos_sim::SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                    .with_market(&market)
                    .run(),
            )
        })
    });
    // The throughput-sharing hot path: same 50k-query replay with fair
    // sharing enabled (Linear contention, four admission slots per
    // instance), so the processed-volume advance, the O(affected-instance)
    // frontmost-completion recompute and the generation-stamped lazy
    // deletion are all on the measured path.  Budget-gated in
    // BENCH_budget.json.
    group.bench_function("fcfs_sharing", |b| {
        let sharing = SharingMode::Fair(
            SharingOptions::uniform(
                kairos_models::ThroughputDegradation::try_new_linear(0.2).unwrap(),
            )
            .with_max_concurrency(4),
        );
        b.iter(|| {
            let mut scheduler = FcfsScheduler::new();
            black_box(
                kairos_sim::SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                    .with_sharing(sharing.clone())
                    .run(),
            )
        })
    });
    // The fault-calendar hot path: same 50k-query replay with a zone outage
    // (notice -> drain -> kill -> purchase rejection), a capacity shortage
    // and a straggler onset materialized mid-trace, so the TimedKind
    // calendar, the preemption lifecycle and per-domain bookkeeping are all
    // on the measured path.  Budget-gated in BENCH_budget.json.
    let zone_a = FailureDomain::zone("us-east-1", "us-east-1a");
    let zone_b = FailureDomain::zone("us-east-1", "us-east-1b");
    let placements = vec![
        zone_a.clone(),
        zone_a.clone(),
        zone_b.clone(),
        zone_b.clone(),
    ];
    let process = FaultProcess::new(vec![
        FaultEvent::Straggler {
            at_us: 5_000_000,
            offering: 0,
            slowdown: 0.5,
        },
        FaultEvent::ZoneOutage {
            domain: zone_a,
            start_us: 8_000_000,
            duration_us: 4_000_000,
        },
        FaultEvent::CapacityShortage {
            domain: zone_b,
            start_us: 14_000_000,
            end_us: 16_000_000,
        },
    ]);
    group.bench_function("fcfs_fault_injection", |b| {
        b.iter(|| {
            let mut scheduler = FcfsScheduler::new();
            black_box(
                kairos_sim::SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                    .with_faults(&process, &placements)
                    .run(),
            )
        })
    });
    // The dynamic-batcher hot path: queue-and-fire on an 8-query-scale fuse
    // cap or a 2 ms timeout, serial service per instance.  Exercises batch
    // formation, timeout scheduling/cancellation and fused completions.
    group.bench_function("fcfs_batched", |b| {
        let batching = BatchingOptions::new(8 * 128, 2_000);
        b.iter(|| {
            let mut scheduler = FcfsScheduler::new();
            black_box(
                kairos_sim::SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                    .with_batching(batching)
                    .run(),
            )
        })
    });
    group.finish();
}

/// Sharded vs combined multi-model replay on a three-model 2.4 kQPS trace:
/// the regression gate for the sharded engine's per-lane fan-out.  The
/// sharded pass must stay within budget (and the per-run report carries
/// `events_processed` / `events_per_sec` as first-class metrics, asserted
/// non-zero here so the counter itself is gated too).
fn bench_sharded_replay(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let services: Vec<ServiceSpec> = [ModelKind::Ncf, ModelKind::Wnd, ModelKind::MtWnd]
        .iter()
        .map(|&k| ServiceSpec::new(k, latency.clone()))
        .collect();
    let svc_refs: Vec<&ServiceSpec> = services.iter().collect();
    let spec = ClusterSpec::from_configs(vec![
        Config::new(vec![4, 0, 2, 0]),
        Config::new(vec![6, 0, 4, 0]),
        Config::new(vec![6, 0, 4, 0]),
    ]);
    let mix = MixSpec::from_shares(
        &[0.5, 0.3, 0.2],
        &[
            BatchSizeDistribution::Fixed(8),
            BatchSizeDistribution::Fixed(8),
            BatchSizeDistribution::Fixed(8),
        ],
    );
    let trace = MixedTraceSpec::poisson(2_400.0, mix, 20.0, 17).generate();
    let opts = SimulationOptions::default();

    let mut group = c.benchmark_group("sharded_replay_multimodel");
    group.sample_size(10);
    group.bench_function("fcfs_single_engine", |b| {
        b.iter(|| {
            let mut scheduler = FcfsScheduler::new();
            black_box(
                kairos_sim::SimEngine::new_multi(
                    &pool,
                    &spec,
                    &svc_refs,
                    &trace,
                    &mut scheduler,
                    &opts,
                )
                .run(),
            )
        })
    });
    group.bench_function("fcfs_sharded_engine", |b| {
        let sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &opts);
        b.iter(|| {
            let report = sharded.run(&trace, |_| Box::new(FcfsScheduler::new()));
            assert!(report.events_processed > 0);
            assert!(report.events_per_sec(1.0) > 0.0);
            black_box(report)
        })
    });
    group.finish();
}

fn capacity_options(early_exit: bool) -> CapacityOptions {
    CapacityOptions {
        duration_s: 1.0,
        refine_steps: 3,
        max_qps: 4_000.0,
        early_exit,
        ..CapacityOptions::with_seed(97)
    }
}

fn fcfs_factory() -> Box<dyn Scheduler> {
    Box::new(FcfsScheduler::new())
}

/// End-to-end measured configuration ranking, shaped like the serving loop's
/// replanning: seven replan rounds rank the budget's candidate set with
/// capacity ramps — cadence replans re-rank the *same* enumerated candidates
/// (only knowledge drifts), and one drift replan swaps two candidates in.
/// `memoized_early_exit` is the production path: one [`CapacityProber`]
/// shared across rounds (per-config memo keyed by interned type names) with
/// early-exit probes.  `naive_full_replay` re-simulates every probe of every
/// round to completion, which is what the sweep cost before this
/// optimization pass.
fn bench_rank_configs_sweep(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
    let candidates: Vec<Config> = vec![
        Config::new(vec![1, 0, 0, 0]),
        Config::new(vec![1, 0, 1, 0]),
        Config::new(vec![1, 0, 2, 0]),
        Config::new(vec![1, 1, 0, 0]),
        Config::new(vec![2, 0, 0, 0]),
        Config::new(vec![1, 0, 0, 2]),
    ];
    let drifted: Vec<Config> = vec![
        Config::new(vec![1, 0, 1, 0]),
        Config::new(vec![1, 0, 2, 0]),
        Config::new(vec![1, 1, 0, 0]),
        Config::new(vec![2, 0, 0, 0]),
        Config::new(vec![1, 1, 1, 0]),
        Config::new(vec![2, 0, 2, 0]),
    ];
    let rounds: Vec<&[Config]> = vec![
        &candidates,
        &candidates,
        &candidates,
        &candidates,
        &drifted,
        &drifted,
        &drifted,
    ];

    let mut group = c.benchmark_group("rank_configs_sweep");
    group.sample_size(10);
    group.bench_function("memoized_early_exit", |b| {
        b.iter(|| {
            let prober = CapacityProber::new(&pool, &service, capacity_options(true));
            for round in &rounds {
                black_box(prober.rank_measured(round, fcfs_factory));
            }
        })
    });
    group.bench_function("naive_full_replay", |b| {
        b.iter(|| {
            for round in &rounds {
                let prober = CapacityProber::new(&pool, &service, capacity_options(false));
                black_box(prober.rank_measured(round, fcfs_factory));
            }
        })
    });
    group.finish();
}

/// Variant-aware configuration ranking: the merged enumerate-once,
/// rank-per-lane sweep the variant planner runs at every replan (three RM2
/// lanes — fp32, int8, distilled — over the same budget's candidate set).
/// Budgeted at roughly twice the single-lane `rank_configs_sweep` path: the
/// per-lane closed-form rankings dominate and the merge is linear.
fn bench_rank_configs_variants(c: &mut Criterion) {
    use kairos_core::paper_variant_planner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let pool = PoolSpec::new(ec2::paper_pool());
    let planner = paper_variant_planner(&pool, ModelKind::Rm2, &paper_calibration());
    let sample = BatchSizeDistribution::production_default()
        .sample_many(&mut StdRng::seed_from_u64(7), 2_000);

    let mut group = c.benchmark_group("rank_configs_variants");
    group.sample_size(10);
    group.bench_function("three_lane_merge", |b| {
        b.iter(|| black_box(planner.rank_configs_variants(2.5, black_box(&sample), None)))
    });
    group.finish();
}

/// The sparse per-model hot paths a thousands-of-models serverless tail
/// leans on: sampling a 2000-component mix (binary search over the
/// cumulative-share table — the legacy linear subtraction scan is O(n) per
/// draw) and reading per-lane state out of a model-tagged monitor window
/// (active-lane index + per-lane rings instead of full-window scans).
fn bench_sparse_mix(c: &mut Criterion) {
    use kairos_workload::{MixSpec, ModelId, QueryMonitor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let n = 2_000usize;
    let shares: Vec<f64> = (0..n).map(|i| 1.0 + (i % 13) as f64).collect();
    let dists: Vec<BatchSizeDistribution> = vec![BatchSizeDistribution::Fixed(64); n];
    let mix = MixSpec::from_shares(&shares, &dists);

    let mut monitor = QueryMonitor::with_capacity(4_096);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..8_192 {
        let (model, batch) = mix.sample(&mut rng);
        monitor.observe_tagged(model, batch);
    }

    let mut group = c.benchmark_group("sparse_mix_2000");
    group.sample_size(10);
    group.bench_function("sample_10k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += mix.sample(&mut rng).0.index();
            }
            black_box(acc)
        })
    });
    group.bench_function("monitor_mix_and_lane_snapshots", |b| {
        b.iter(|| {
            let mix = monitor.mix();
            let mut len = mix.len();
            for &lane in monitor.active_models() {
                len += monitor.snapshot_for(ModelId::new(lane)).len();
            }
            black_box(len)
        })
    });
    group.finish();
}

/// One allowable-throughput ramp for a single configuration: the unit of
/// work every planner comparison and baseline grid search repeats hundreds
/// of times.  Early exit aborts each probe replay the moment its verdict is
/// provable; the verdicts (and hence the ramp result) are identical.
fn bench_allowable_throughput_probe(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
    let config = Config::new(vec![2, 0, 4, 0]);

    let mut group = c.benchmark_group("allowable_throughput_probe");
    group.sample_size(10);
    for (label, early_exit) in [("early_exit", true), ("full_replay", false)] {
        let opts = capacity_options(early_exit);
        group.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| {
                black_box(allowable_throughput(
                    &pool,
                    &config,
                    &service,
                    opts,
                    fcfs_factory,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_replay,
    bench_engine_vs_naive_50k,
    bench_sharded_replay,
    bench_rank_configs_sweep,
    bench_rank_configs_variants,
    bench_sparse_mix,
    bench_allowable_throughput_probe
);
criterion_main!(benches);

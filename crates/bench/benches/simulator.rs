//! Criterion benchmarks for the discrete-event serving simulator: how fast a
//! trace replay runs under the different scheduling policies.  This bounds the
//! cost of every allowable-throughput probe used by the figure harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kairos_baselines::ClockworkScheduler;
use kairos_bench::{scheduler_factory, SchedulerKind};
use kairos_models::{calibration::paper_calibration, ec2, Config, ModelKind, PoolSpec};
use kairos_sim::{run_trace, run_trace_naive, FcfsScheduler, ServiceSpec, SimulationOptions};
use kairos_workload::TraceSpec;
use std::hint::black_box;

fn bench_trace_replay(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Wnd;
    let service = ServiceSpec::new(model, latency.clone());
    let config = Config::new(vec![2, 0, 4, 0]);
    let trace = TraceSpec::production(300.0, 1.0, 5).generate();

    let mut group = c.benchmark_group("trace_replay_300qps_1s");
    group.sample_size(10);
    for kind in [
        SchedulerKind::Kairos,
        SchedulerKind::Ribbon,
        SchedulerKind::Drs(280),
        SchedulerKind::Clockwork,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut scheduler = scheduler_factory(kind, model, &latency);
                    black_box(run_trace(
                        &pool,
                        &config,
                        &service,
                        &trace,
                        scheduler.as_mut(),
                        &SimulationOptions::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Incremental `SimEngine` vs the preserved per-event-rebuild reference on a
/// 50k-query production trace — the regression gate for the engine refactor:
/// the incremental views must deliver at least a 2x speedup at identical
/// output.
///
/// Clockwork is the showcase scheduler because it queues queries at busy
/// instances, so the naive path recomputes `nominal_latency_ms` over every
/// local queue entry on every event (O(events × instances × queue-depth));
/// the incremental engine keeps per-instance `free_at_us` as a running value.
/// The trace rate (2.5 kQPS on a ~2.2 kQPS configuration) mildly overloads
/// the pool so local queues actually carry depth, as they do during every
/// allowable-throughput probe at the QoS boundary.  An FCFS pair (idle-only
/// dispatch, so queue depth stays 0) isolates the remaining constant-factor
/// win of the persistent views and the gap-closing central-queue sweep.
fn bench_engine_vs_naive_50k(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Wnd;
    let service = ServiceSpec::new(model, latency.clone());
    let config = Config::new(vec![8, 4, 8, 4]);
    let trace = TraceSpec::production(2_500.0, 20.0, 17).generate();
    assert!(
        trace.len() >= 50_000,
        "want a 50k-query trace, got {}",
        trace.len()
    );
    let opts = SimulationOptions::default();

    let mut group = c.benchmark_group("trace_replay_50k");
    group.sample_size(10);
    group.bench_function("clockwork_sim_engine", |b| {
        b.iter(|| {
            let mut scheduler = ClockworkScheduler::new(model, latency.clone());
            black_box(run_trace(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &opts,
            ))
        })
    });
    group.bench_function("clockwork_run_trace_naive", |b| {
        b.iter(|| {
            let mut scheduler = ClockworkScheduler::new(model, latency.clone());
            black_box(run_trace_naive(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &opts,
            ))
        })
    });
    group.bench_function("fcfs_sim_engine", |b| {
        b.iter(|| {
            let mut scheduler = FcfsScheduler::new();
            black_box(run_trace(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &opts,
            ))
        })
    });
    group.bench_function("fcfs_run_trace_naive", |b| {
        b.iter(|| {
            let mut scheduler = FcfsScheduler::new();
            black_box(run_trace_naive(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &opts,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_replay, bench_engine_vs_naive_50k);
criterion_main!(benches);

//! Criterion benchmarks for the throughput upper-bound estimator and planner.
//!
//! Reproduces the paper's Sec. 5.2 overhead claim: for a search space on the
//! order of 1000 configurations, computing and ranking all upper bounds takes
//! well under two seconds (it is in fact sub-second here), which is what lets
//! Kairos re-plan "in one shot" when the load changes.

use criterion::{criterion_group, criterion_main, Criterion};
use kairos_core::{planner::KairosPlanner, ThroughputEstimator};
use kairos_models::{
    calibration::paper_calibration, ec2, enumerate_configs, Config, EnumerationOptions, ModelKind,
    PoolSpec,
};
use kairos_workload::BatchSizeDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sample(n: usize) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(11);
    BatchSizeDistribution::production_default().sample_many(&mut rng, n)
}

fn bench_single_estimate(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let estimator =
        ThroughputEstimator::new(pool, ModelKind::Rm2, paper_calibration(), sample(2000));
    let config = Config::new(vec![3, 1, 3, 0]);
    c.bench_function("upper_bound_single_config", |b| {
        b.iter(|| black_box(estimator.estimate(black_box(&config))))
    });
}

fn bench_rank_full_space(c: &mut Criterion) {
    let pool = PoolSpec::new(ec2::paper_pool());
    let configs = enumerate_configs(&pool, &EnumerationOptions::with_budget(2.5));
    let estimator =
        ThroughputEstimator::new(pool, ModelKind::Rm2, paper_calibration(), sample(2000));
    let mut group = c.benchmark_group("upper_bound_ranking");
    group.sample_size(20);
    group.bench_function(format!("rank_{}_configs", configs.len()), |b| {
        b.iter(|| black_box(estimator.rank_configs(black_box(&configs))))
    });
    group.finish();
}

fn bench_one_shot_plan(c: &mut Criterion) {
    // Full planning pass: enumerate + rank + similarity selection.
    let planner = KairosPlanner::new(
        PoolSpec::new(ec2::paper_pool()),
        ModelKind::Rm2,
        paper_calibration(),
    );
    let s = sample(2000);
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);
    group.bench_function("one_shot_plan_budget_2.5", |b| {
        b.iter(|| black_box(planner.plan(2.5, black_box(&s))))
    });
    group.bench_function("one_shot_plan_budget_10", |b| {
        b.iter(|| black_box(planner.plan(10.0, black_box(&s))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_estimate,
    bench_rank_full_space,
    bench_one_shot_plan
);
criterion_main!(benches);

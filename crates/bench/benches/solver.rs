//! Criterion micro-benchmarks for the assignment solvers.
//!
//! Reproduces the implementation claim of paper Sec. 6: solving a
//! 20-query x 20-instance matching (algorithm runtime alone) takes well under
//! 0.05 ms, so the central controller never becomes the bottleneck.  Also
//! compares the Jonker–Volgenant solver against the Hungarian, auction and
//! greedy ablations across matrix sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kairos_assignment::{
    auction::solve_auction, greedy::solve_greedy, hungarian::solve_hungarian, jv::solve_jv,
    CostMatrix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> CostMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    CostMatrix::from_fn(rows, cols, |_, _| rng.gen_range(0.1..500.0)).unwrap()
}

fn bench_controller_claim(c: &mut Criterion) {
    // The paper's 20x20 controller matching.
    let m = random_matrix(20, 20, 7);
    c.bench_function("jv_20x20_controller_claim", |b| {
        b.iter(|| solve_jv(black_box(&m)).unwrap())
    });
}

fn bench_solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(30);
    for &size in &[10usize, 20, 50, 100] {
        let m = random_matrix(size, size, size as u64);
        group.bench_with_input(BenchmarkId::new("jonker_volgenant", size), &m, |b, m| {
            b.iter(|| solve_jv(black_box(m)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hungarian", size), &m, |b, m| {
            b.iter(|| solve_hungarian(black_box(m)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy", size), &m, |b, m| {
            b.iter(|| solve_greedy(black_box(m)).unwrap())
        });
        if size <= 50 {
            group.bench_with_input(BenchmarkId::new("auction", size), &m, |b, m| {
                b.iter(|| solve_auction(black_box(m), 1e-6, 5.0).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_rectangular(c: &mut Criterion) {
    // Typical serving-time shapes: a handful of queries, tens of instances.
    let mut group = c.benchmark_group("rectangular_matching");
    group.sample_size(50);
    for &(rows, cols) in &[(5usize, 20usize), (50, 20), (200, 16)] {
        let m = random_matrix(rows, cols, (rows * cols) as u64);
        group.bench_with_input(
            BenchmarkId::new("jonker_volgenant", format!("{rows}x{cols}")),
            &m,
            |b, m| b.iter(|| solve_jv(black_box(m)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_controller_claim,
    bench_solver_scaling,
    bench_rectangular
);
criterion_main!(benches);

//! Shared experiment harness: everything the per-figure benchmarks need to
//! measure allowable throughput of (model, configuration, scheduler)
//! combinations under the paper's methodology (Sec. 7).
//!
//! Environment knobs:
//! * `KAIROS_FIG_FAST=1` — shrink probe durations and refinement steps so the
//!   whole figure suite completes quickly (used in CI / constrained machines).

use kairos_baselines::{ClockworkScheduler, DrsScheduler, RibbonScheduler};
use kairos_core::{KairosPlanner, KairosScheduler, Plan};
use kairos_models::{
    best_homogeneous, calibration::paper_calibration, ec2, latency::LatencyTable, mlmodel::spec,
    Config, ModelKind, PoolSpec,
};
use kairos_sim::{
    allowable_throughput, allowable_throughput_many, CapacityOptions, FcfsScheduler, Scheduler,
    ServiceSpec,
};
use kairos_workload::BatchSizeDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tunes the process allocator for multi-gigabyte replay sweeps (the fleet
/// and figure harnesses), so repeated passes reuse heap pages instead of
/// re-faulting them.
///
/// glibc serves large allocations with `mmap` and returns them to the kernel
/// on free; every figure pass then pays the page-fault cost of its trace,
/// record and merge buffers *again*.  On hosts where first-touch faults are
/// slow (lazily backed VMs), that dominates the wall clock of large-scale
/// replays — measured here, re-touching resident pages streams ~40x faster
/// than faulting fresh ones.  Routing large blocks through the `sbrk` heap
/// (`M_MMAP_MAX = 0`) and never trimming it (`M_TRIM_THRESHOLD` maxed)
/// keeps freed pages resident, so each figure pass after the first runs at
/// memory speed.  Worker-thread arenas cannot grow that large; glibc falls
/// back to the main arena for oversized requests, which is exactly the
/// behaviour we want for the few giant buffers involved.
///
/// No-op on non-glibc targets.  Call once at process start, before large
/// allocations.
pub fn tune_allocator_for_replay() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        use std::os::raw::c_int;
        // glibc <malloc.h> mallopt parameter ids.
        const M_TRIM_THRESHOLD: c_int = -1;
        const M_MMAP_THRESHOLD: c_int = -3;
        const M_MMAP_MAX: c_int = -4;
        extern "C" {
            fn mallopt(param: c_int, value: c_int) -> c_int;
        }
        // SAFETY: mallopt only adjusts malloc parameters; it is safe to call
        // from a single thread at startup.
        unsafe {
            mallopt(M_MMAP_THRESHOLD, c_int::MAX);
            // -1 is the documented idiom for "never trim": it sign-extends
            // to SIZE_MAX inside glibc.  A large positive cap (c_int::MAX
            // = ~2 GiB) is NOT enough — our top-of-heap frees exceed it,
            // so every multi-gigabyte buffer would still be returned to
            // the kernel on free and re-faulted on the next pass.
            mallopt(M_TRIM_THRESHOLD, -1);
            mallopt(M_MMAP_MAX, 0);
        }
    }
}

/// Pre-faults `bytes` of heap before a timed large-scale replay.
///
/// [`tune_allocator_for_replay`] keeps freed pages resident, but the *first*
/// pass still pays the first-touch fault for every fresh page, and malloc's
/// layout can shift enough between passes that some multi-gigabyte buffers
/// land on unfaulted memory again.  Touching the working-set size once up
/// front — outside any timed region — and releasing it back to the
/// (never-trimmed) arena means every later allocation is carved from pages
/// the kernel has already backed, making replay timings independent of
/// fault cost and of allocator layout luck.  Sized generously above the
/// replay's peak footprint; the pages stay resident for the process
/// lifetime, so only call this where that working set is actually needed.
pub fn prefault_heap(bytes: usize) {
    tune_allocator_for_replay();
    let mut scratch = vec![0u8; bytes];
    // `vec!` goes through calloc, which skips writing pages that are fresh
    // from the kernel — touch one byte per page to actually fault them.
    for page in scratch.chunks_mut(4096) {
        page[0] = 1;
    }
    std::hint::black_box(&mut scratch);
}

/// Which query-distribution scheme to measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Kairos with latency knowledge already learned (steady-state behaviour;
    /// the paper's long-running system has converged predictors).
    Kairos,
    /// Kairos starting with no latency knowledge (cold-start ablation).
    KairosColdStart,
    /// Ribbon's FCFS-prefer-base distribution.
    Ribbon,
    /// DeepRecSys threshold distribution with the given tuned threshold.
    Drs(u32),
    /// Clockwork-style QoS-aware per-instance-queue controller.
    Clockwork,
    /// Plain FCFS (naive strawman).
    Fcfs,
}

impl SchedulerKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Kairos => "KAIROS",
            SchedulerKind::KairosColdStart => "KAIROS(cold)",
            SchedulerKind::Ribbon => "RIBBON",
            SchedulerKind::Drs(_) => "DRS",
            SchedulerKind::Clockwork => "CLKWRK",
            SchedulerKind::Fcfs => "FCFS",
        }
    }
}

/// Builds a fresh scheduler instance of the requested kind.
pub fn scheduler_factory(
    kind: SchedulerKind,
    model: ModelKind,
    latency: &LatencyTable,
) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::Kairos => Box::new(KairosScheduler::with_priors(model, latency)),
        SchedulerKind::KairosColdStart => Box::new(KairosScheduler::new()),
        SchedulerKind::Ribbon => Box::new(RibbonScheduler::new()),
        SchedulerKind::Drs(threshold) => Box::new(DrsScheduler::new(threshold)),
        SchedulerKind::Clockwork => Box::new(ClockworkScheduler::new(model, latency.clone())),
        SchedulerKind::Fcfs => Box::new(FcfsScheduler::new()),
    }
}

/// Everything one experiment needs: pool, model, latency truth, workload and
/// capacity-search settings.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Instance pool (Table 4 by default).
    pub pool: PoolSpec,
    /// Served model.
    pub model: ModelKind,
    /// Ground-truth latency calibration.
    pub latency: LatencyTable,
    /// Hourly cost budget (2.5 $/hr by default, Sec. 7).
    pub budget: f64,
    /// Batch-size mix of the offered load.
    pub batch_sizes: BatchSizeDistribution,
    /// Capacity-search options.
    pub capacity: CapacityOptions,
    /// Seed for sampling batch sizes for the estimator / oracle.
    pub seed: u64,
}

impl ExperimentContext {
    /// Default context for a model: paper pool, calibration, 2.5 $/hr budget,
    /// production-like log-normal batch mix.
    pub fn new(model: ModelKind) -> Self {
        let fast = std::env::var("KAIROS_FIG_FAST")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut capacity = CapacityOptions::with_seed(97);
        capacity.duration_s = if fast { 1.0 } else { 2.0 };
        capacity.refine_steps = if fast { 3 } else { 4 };
        Self {
            pool: PoolSpec::new(ec2::paper_pool()),
            model,
            latency: paper_calibration(),
            budget: 2.5,
            batch_sizes: BatchSizeDistribution::production_default(),
            capacity,
            seed: 1234,
        }
    }

    /// Context restricted to the three-type pool of Fig. 1.
    pub fn figure1(model: ModelKind) -> Self {
        let mut ctx = Self::new(model);
        ctx.pool = PoolSpec::new(ec2::figure1_pool());
        ctx
    }

    /// The service specification (model + latency truth, no noise).
    pub fn service(&self) -> ServiceSpec {
        ServiceSpec::new(self.model, self.latency.clone())
    }

    /// Samples `n` batch sizes from the offered mix (for the estimator, the
    /// oracle and the DRS threshold tuner).
    pub fn sample(&self, n: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.batch_sizes.sample_many(&mut rng, n)
    }

    /// Capacity options whose workload matches this context.
    fn capacity_options(&self) -> CapacityOptions {
        let mut opts = self.capacity.clone();
        opts.batch_sizes = self.batch_sizes.clone();
        opts
    }

    /// Measures the allowable throughput of a configuration under a scheme.
    pub fn measure_throughput(&self, config: &Config, kind: SchedulerKind) -> f64 {
        let service = self.service();
        let opts = self.capacity_options();
        allowable_throughput(&self.pool, config, &service, &opts, || {
            scheduler_factory(kind, self.model, &self.latency)
        })
        .allowable_qps
    }

    /// Measures the allowable throughput of every candidate configuration
    /// under a scheme, fanning the independent capacity ramps out over the
    /// available cores with rayon.  Results are in candidate order.
    pub fn measure_throughput_many(&self, configs: &[Config], kind: SchedulerKind) -> Vec<f64> {
        let service = self.service();
        let opts = self.capacity_options();
        allowable_throughput_many(&self.pool, configs, &service, &opts, || {
            scheduler_factory(kind, self.model, &self.latency)
        })
        .into_iter()
        .map(|r| r.allowable_qps)
        .collect()
    }

    /// Allowable throughput of the optimal homogeneous configuration, scaled
    /// up for its unused budget as the paper does (Sec. 8.1).
    pub fn best_homogeneous_throughput(&self, kind: SchedulerKind) -> f64 {
        let homo = best_homogeneous(&self.pool, self.budget);
        let measured = self.measure_throughput(&homo, kind);
        let cost = homo.cost(&self.pool);
        if cost <= 0.0 {
            return 0.0;
        }
        measured * (self.budget / cost)
    }

    /// The Kairos plan (upper-bound ranking + similarity selection) for this
    /// context's budget, parameterized by an observed batch sample.
    pub fn kairos_plan(&self) -> Plan {
        let planner = KairosPlanner::new(self.pool.clone(), self.model, self.latency.clone());
        planner.plan(self.budget, &self.sample(4000))
    }

    /// A well-tuned DRS threshold for a configuration: the largest batch size
    /// any auxiliary type present in the configuration can serve within QoS
    /// (the value DeepRecSys's hill-climbing sweep converges to, granted here
    /// without charging its tuning overhead — as the paper does).
    pub fn drs_threshold(&self, config: &Config) -> u32 {
        let qos = spec(self.model).qos_ms;
        let mut best = 0u32;
        for (idx, ty) in self.pool.types().iter().enumerate() {
            if ty.is_base || config.count(idx) == 0 {
                continue;
            }
            if let Some(cutoff) = self
                .latency
                .expect(self.model, &ty.name)
                .max_batch_within(qos)
            {
                best = best.max(cutoff);
            }
        }
        if best == 0 {
            // No usable auxiliary instance: everything goes to the base type.
            0
        } else {
            best
        }
    }
}

/// Measures the allowable throughput of `config` under `kind` for `model`
/// with default context settings (convenience wrapper for the benches).
pub fn measure_throughput(model: ModelKind, config: &Config, kind: SchedulerKind) -> f64 {
    ExperimentContext::new(model).measure_throughput(config, kind)
}

/// The scaled optimal-homogeneous throughput for a model (Fig. 8 baseline).
pub fn best_homogeneous_throughput(model: ModelKind) -> f64 {
    ExperimentContext::new(model).best_homogeneous_throughput(SchedulerKind::Fcfs)
}

/// A reproducible batch-size sample for the oracle and estimator analyses.
pub fn oracle_sample(model: ModelKind, n: usize) -> Vec<u32> {
    ExperimentContext::new(model).sample(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_defaults_follow_the_paper() {
        let ctx = ExperimentContext::new(ModelKind::Rm2);
        assert_eq!(ctx.budget, 2.5);
        assert_eq!(ctx.pool.num_types(), 4);
        assert_eq!(ctx.sample(100).len(), 100);
    }

    #[test]
    fn drs_threshold_matches_the_largest_present_cutoff() {
        let ctx = ExperimentContext::new(ModelKind::Wnd);
        // Config with c5n (cutoff ~287) and r5n (cutoff ~173): threshold is c5n's.
        let t = ctx.drs_threshold(&Config::new(vec![1, 1, 1, 0]));
        let c5n = ctx
            .latency
            .expect(ModelKind::Wnd, "c5n.2xlarge")
            .max_batch_within(25.0)
            .unwrap();
        assert_eq!(t, c5n);
        // Homogeneous configuration: no auxiliary, threshold 0.
        assert_eq!(ctx.drs_threshold(&Config::new(vec![4, 0, 0, 0])), 0);
    }

    #[test]
    fn parallel_measurement_matches_sequential() {
        let mut ctx = ExperimentContext::new(ModelKind::Wnd);
        ctx.capacity.duration_s = 0.5;
        ctx.capacity.refine_steps = 2;
        ctx.capacity.max_qps = 500.0;
        let configs = vec![Config::new(vec![1, 0, 0, 0]), Config::new(vec![1, 0, 2, 0])];
        let many = ctx.measure_throughput_many(&configs, SchedulerKind::Fcfs);
        assert_eq!(many.len(), configs.len());
        for (config, qps) in configs.iter().zip(&many) {
            let one = ctx.measure_throughput(config, SchedulerKind::Fcfs);
            assert_eq!(*qps, one, "config {config}");
        }
    }

    #[test]
    fn scheduler_factory_produces_named_schedulers() {
        let table = paper_calibration();
        for (kind, name) in [
            (SchedulerKind::Kairos, "kairos"),
            (SchedulerKind::Ribbon, "ribbon"),
            (SchedulerKind::Drs(100), "drs"),
            (SchedulerKind::Clockwork, "clockwork"),
            (SchedulerKind::Fcfs, "fcfs"),
        ] {
            assert_eq!(scheduler_factory(kind, ModelKind::Wnd, &table).name(), name);
        }
        assert_eq!(SchedulerKind::Kairos.label(), "KAIROS");
    }
}

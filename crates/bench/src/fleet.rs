//! The experiment fleet: a scenario matrix swept in parallel.
//!
//! A [`Scenario`] is one fully-specified simulator experiment — a trace
//! (model, rate, duration, seed), a planned deployment under a budget, and
//! a query-distribution policy.  A [`ScenarioMatrix`] is the cartesian
//! product of those axes; [`run_matrix`] fans the scenarios out over rayon
//! workers (each scenario is an independent sequential simulation) and
//! writes **one JSON result file per scenario** into a results directory,
//! so a whole evaluation sweep regenerates from a single invocation of the
//! `fleet` binary:
//!
//! ```text
//! cargo run --release -p kairos-bench --bin fleet -- matrix results/
//! cargo run --release -p kairos-bench --bin fleet -- figures   # BENCH_*.json
//! cargo run --release -p kairos-bench --bin fleet -- smoke     # 4-scenario CI sweep
//! ```
//!
//! Figure regeneration goes through [`crate::figures`] — the same code the
//! `figures` bench target runs — so a fleet invocation reproduces the
//! checked-in `BENCH_*.json` files bit-for-bit.

use crate::harness::{scheduler_factory, SchedulerKind};
use kairos_core::{ServingOptions, ServingSystem};
use kairos_models::{calibration::paper_calibration, ec2, ModelKind, PoolSpec};
use kairos_sim::{run_trace, ServiceSpec, SimulationOptions};
use kairos_workload::{BatchSizeDistribution, TraceSpec};
use rayon::prelude::*;
use std::path::Path;

/// One fully-specified experiment of the fleet.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Result-file stem, unique within the matrix.
    pub name: String,
    /// The served model.
    pub model: ModelKind,
    /// Offered Poisson rate of the trace, in QPS.
    pub rate_qps: f64,
    /// Trace duration in virtual seconds.
    pub duration_s: f64,
    /// Trace RNG seed.
    pub seed: u64,
    /// Query-distribution policy replayed against the plan.
    pub scheduler: SchedulerKind,
    /// Hourly budget the deployment is planned under.
    pub budget_per_hour: f64,
}

impl Scenario {
    /// A compact `model-rate-policy-seed` stem for the result file.
    fn stem(model: ModelKind, rate_qps: f64, scheduler: SchedulerKind, seed: u64) -> String {
        let policy = match scheduler {
            SchedulerKind::Kairos => "kairos",
            SchedulerKind::KairosColdStart => "kairos-cold",
            SchedulerKind::Ribbon => "ribbon",
            SchedulerKind::Drs(_) => "drs",
            SchedulerKind::Clockwork => "clockwork",
            SchedulerKind::Fcfs => "fcfs",
        };
        format!("{model}-{rate_qps:.0}qps-{policy}-s{seed}")
    }
}

/// The sweep: every scenario the fleet will run.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Scenarios in declaration order (results keep this order).
    pub scenarios: Vec<Scenario>,
}

impl ScenarioMatrix {
    /// The cartesian product of `(model, rate) x policy x seed` tuples, each
    /// at the given duration and budget.
    pub fn cartesian(
        models: &[ModelKind],
        rates: &[f64],
        policies: &[SchedulerKind],
        seeds: &[u64],
        duration_s: f64,
        budget_per_hour: f64,
    ) -> Self {
        let mut scenarios = Vec::new();
        for &model in models {
            for &rate_qps in rates {
                for &scheduler in policies {
                    for &seed in seeds {
                        scenarios.push(Scenario {
                            name: Scenario::stem(model, rate_qps, scheduler, seed),
                            model,
                            rate_qps,
                            duration_s,
                            seed,
                            scheduler,
                            budget_per_hour,
                        });
                    }
                }
            }
        }
        Self { scenarios }
    }

    /// The default evaluation sweep: three models x two load levels x two
    /// policies x two seeds (24 scenarios).
    pub fn default_sweep() -> Self {
        Self::cartesian(
            &[ModelKind::Ncf, ModelKind::Wnd, ModelKind::Rm2],
            &[60.0, 120.0],
            &[SchedulerKind::Kairos, SchedulerKind::Fcfs],
            &[7, 8],
            4.0,
            2.5,
        )
    }

    /// The CI smoke sweep: 2 models x 2 policies, one rate, one seed — four
    /// scenarios, each about a second of virtual time.
    pub fn smoke() -> Self {
        Self::cartesian(
            &[ModelKind::Ncf, ModelKind::Rm2],
            &[60.0],
            &[SchedulerKind::Kairos, SchedulerKind::Fcfs],
            &[7],
            1.0,
            2.5,
        )
    }
}

/// The measured outcome of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario's result-file stem.
    pub name: String,
    /// Name of the scheduler that actually ran.
    pub scheduler: String,
    /// Queries offered / completed before the horizon.
    pub offered: usize,
    /// Queries completed before the horizon.
    pub completed: usize,
    /// Fraction of offered queries violating the model's QoS.
    pub violation_fraction: f64,
    /// 99th-percentile completion latency, microseconds.
    pub p99_us: u64,
    /// Engine events processed by the run.
    pub events: u64,
    /// Engine events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// Dollars billed over the run.
    pub billed_dollars: f64,
}

impl ScenarioResult {
    /// The flat-JSON line written to the scenario's result file (the same
    /// hand-formatted idiom as the BENCH_*.json figures).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"fleet/{}\",\"scheduler\":\"{}\",\"offered\":{},\
             \"completed\":{},\"violation_fraction\":{:.4},\"p99_us\":{},\
             \"events\":{},\"events_per_sec\":{:.0},\"wall_s\":{:.3},\
             \"billed_dollars\":{:.4}}}",
            self.name,
            self.scheduler,
            self.offered,
            self.completed,
            self.violation_fraction,
            self.p99_us,
            self.events,
            self.events_per_sec,
            self.wall_s,
            self.billed_dollars
        )
    }
}

/// Runs one scenario: plan a deployment for the offered rate under the
/// budget (priors-seeded planner, warm monitor), then replay the trace
/// against it under the scenario's policy.
pub fn run_scenario(scenario: &Scenario) -> ScenarioResult {
    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let mut system = ServingSystem::new(
        pool.clone(),
        scenario.model,
        Some(latency.clone()),
        ServingOptions::default().budget(scenario.budget_per_hour),
    );
    system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let config = system
        .plan_for_demand(scenario.rate_qps)
        .expect("priors allow planning");
    let trace =
        TraceSpec::production(scenario.rate_qps, scenario.duration_s, scenario.seed).generate();
    let service = ServiceSpec::new(scenario.model, latency.clone());
    let mut scheduler = scheduler_factory(scenario.scheduler, scenario.model, &latency);
    let started = std::time::Instant::now();
    let report = run_trace(
        &pool,
        &config,
        &service,
        &trace,
        scheduler.as_mut(),
        &SimulationOptions::default(),
    );
    let wall_s = started.elapsed().as_secs_f64();
    ScenarioResult {
        name: scenario.name.clone(),
        scheduler: report.scheduler.clone(),
        offered: report.offered,
        completed: report.completed(),
        violation_fraction: report.violation_fraction(),
        p99_us: report.p99_latency_us(),
        events: report.events_processed,
        events_per_sec: report.events_per_sec(wall_s),
        wall_s,
        billed_dollars: report.billed_dollars,
    }
}

/// Sweeps the matrix over rayon workers and writes `<out_dir>/<name>.json`
/// per scenario.  Results come back in matrix order regardless of which
/// worker finished first.
///
/// # Panics
/// Panics if the results directory cannot be created or a result file
/// cannot be written.
pub fn run_matrix(matrix: &ScenarioMatrix, out_dir: &Path) -> Vec<ScenarioResult> {
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));
    let results: Vec<ScenarioResult> = matrix.scenarios.par_iter().map(run_scenario).collect();
    for result in &results {
        let path = out_dir.join(format!("{}.json", result.name));
        std::fs::write(&path, result.to_json() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_matrix_covers_every_tuple_with_unique_names() {
        let matrix = ScenarioMatrix::cartesian(
            &[ModelKind::Ncf, ModelKind::Wnd],
            &[50.0, 100.0],
            &[SchedulerKind::Fcfs, SchedulerKind::Kairos],
            &[1, 2, 3],
            2.0,
            2.5,
        );
        assert_eq!(matrix.scenarios.len(), 2 * 2 * 2 * 3);
        let mut names: Vec<&str> = matrix.scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), matrix.scenarios.len(), "names must be unique");
    }

    #[test]
    fn smoke_matrix_is_four_small_scenarios() {
        let matrix = ScenarioMatrix::smoke();
        assert_eq!(matrix.scenarios.len(), 4);
        assert!(matrix.scenarios.iter().all(|s| s.duration_s <= 1.0));
    }

    #[test]
    fn a_scenario_runs_and_serializes_to_flat_json() {
        let scenario = &ScenarioMatrix::smoke().scenarios[0];
        let result = run_scenario(scenario);
        assert!(result.offered > 0);
        assert_eq!(result.name, scenario.name);
        assert!(result.events > 0);
        let json = result.to_json();
        assert!(json.starts_with("{\"name\":\"fleet/"));
        assert!(json.contains("\"events_per_sec\":"));
    }

    #[test]
    fn run_matrix_writes_one_result_file_per_scenario() {
        let dir = std::env::temp_dir().join("kairos-fleet-test");
        let _ = std::fs::remove_dir_all(&dir);
        let matrix = ScenarioMatrix::cartesian(
            &[ModelKind::Ncf],
            &[60.0],
            &[SchedulerKind::Fcfs],
            &[7, 8],
            1.0,
            2.5,
        );
        let results = run_matrix(&matrix, &dir);
        assert_eq!(results.len(), 2);
        for result in &results {
            let path = dir.join(format!("{}.json", result.name));
            let text = std::fs::read_to_string(&path).expect("result file written");
            assert_eq!(text, result.to_json() + "\n");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
